//! Disk service-time model.
//!
//! The paper motivates SRM by the I/O bottleneck: each parallel operation
//! costs roughly one random access on every participating disk.  This module
//! converts counted operations into estimated wall time with the standard
//! seek + rotational-latency + transfer decomposition (Ruemmler & Wilkes,
//! "An introduction to disk drive modeling", IEEE Computer 1994 — the
//! paper's reference \[RW94\]).
//!
//! Because all disks of one parallel operation work concurrently, one
//! operation costs one per-disk access time, not `D` of them.

use crate::stats::IoStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-disk service-time parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Average seek time, milliseconds.
    pub avg_seek_ms: f64,
    /// Average rotational latency, milliseconds (half a revolution).
    pub avg_rotational_ms: f64,
    /// Sustained media transfer rate, megabytes per second.
    pub transfer_mb_per_s: f64,
}

impl DiskModel {
    /// A mid-1990s SCSI drive of the kind the paper contemplates
    /// (≈ 5400 RPM, ≈ 9 ms seek, ≈ 6 MB/s media rate).
    pub fn hdd_1996() -> Self {
        DiskModel {
            avg_seek_ms: 9.0,
            avg_rotational_ms: 5.6,
            transfer_mb_per_s: 6.0,
        }
    }

    /// A contemporary 7200 RPM SATA drive.
    pub fn hdd_modern() -> Self {
        DiskModel {
            avg_seek_ms: 8.0,
            avg_rotational_ms: 4.2,
            transfer_mb_per_s: 180.0,
        }
    }

    /// A solid-state device: no mechanical latency to speak of, but a
    /// non-zero per-operation overhead.
    pub fn ssd() -> Self {
        DiskModel {
            avg_seek_ms: 0.03,
            avg_rotational_ms: 0.0,
            transfer_mb_per_s: 2500.0,
        }
    }

    /// Time for one parallel I/O operation transferring one block of
    /// `block_bytes` bytes per participating disk.
    pub fn op_time(&self, block_bytes: usize) -> Duration {
        let access_ms = self.avg_seek_ms + self.avg_rotational_ms;
        let transfer_ms = block_bytes as f64 / (self.transfer_mb_per_s * 1e6) * 1e3;
        Duration::from_secs_f64((access_ms + transfer_ms) / 1e3)
    }

    /// Estimated wall time for a whole I/O trace, assuming every operation
    /// is a random access (the pessimistic end of the paper's model).
    pub fn estimate(&self, stats: &IoStats, block_bytes: usize) -> Duration {
        let ops = stats.total_ops() as u32;
        self.op_time(block_bytes) * ops
    }

    /// Estimated wall time including fault-recovery work: every retried
    /// operation costs one extra random access on top of the logical
    /// trace priced by [`DiskModel::estimate`].  Backoff waits added by
    /// a retry policy are *not* included here; see
    /// [`crate::retry::RetryPolicy::total_backoff`].
    pub fn estimate_with_retries(&self, stats: &IoStats, block_bytes: usize) -> Duration {
        let ops = (stats.total_ops() + stats.total_retries()) as u32;
        self.op_time(block_bytes) * ops
    }

    /// Makespan when internal computation overlaps I/O — the pipelined
    /// execution both SRM and DSM are built for (§5's two concurrent
    /// control flows).  In steady state the slower resource dominates.
    pub fn overlapped_estimate(
        &self,
        stats: &IoStats,
        block_bytes: usize,
        cpu: Duration,
    ) -> Duration {
        self.estimate(stats, block_bytes).max(cpu)
    }

    /// Makespan when computation and I/O serialize (no prefetching, no
    /// write-behind): the sum of both resources.
    pub fn serial_estimate(&self, stats: &IoStats, block_bytes: usize, cpu: Duration) -> Duration {
        self.estimate(stats, block_bytes) + cpu
    }

    /// Estimated aggregate bandwidth achieved by a trace that moved
    /// `blocks` total blocks of `block_bytes` bytes in `ops` parallel
    /// operations, in MB/s.
    pub fn achieved_bandwidth(&self, stats: &IoStats, block_bytes: usize) -> f64 {
        let t = self.estimate(stats, block_bytes).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let bytes = (stats.blocks_read + stats.blocks_written) as f64 * block_bytes as f64;
        bytes / t / 1e6
    }
}

/// Service timing for a whole array: one shared [`DiskModel`] plus a
/// per-disk slowdown factor.
///
/// A parallel operation completes when its **slowest** participant does,
/// so a single degraded drive (vibration, remapped sectors, a busy bus)
/// stretches every operation that touches it — the classic *straggler*.
/// [`ArrayTiming::is_straggler`] is the trigger for hedged reads: once a
/// disk is more than `hedge_after ×` slower than the fastest disk, the
/// redundancy layer stops waiting for it and reconstructs its block from
/// the other disks' parity instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayTiming {
    model: DiskModel,
    /// Multiplier on every service time of disk `i`; `1.0` = nominal.
    slowdown: Vec<f64>,
}

impl ArrayTiming {
    /// All `d` disks at the model's nominal speed.
    pub fn uniform(model: DiskModel, d: usize) -> Self {
        ArrayTiming {
            model,
            slowdown: vec![1.0; d],
        }
    }

    /// Make disk `disk` `factor ×` slower than nominal (builder style).
    pub fn with_slowdown(mut self, disk: crate::addr::DiskId, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        let i = disk.0 as usize;
        assert!(i < self.slowdown.len(), "disk {i} out of range");
        self.slowdown[i] = factor;
        self
    }

    /// The shared per-disk service model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Current slowdown factor of `disk`.
    pub fn factor(&self, disk: crate::addr::DiskId) -> f64 {
        self.slowdown
            .get(disk.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Service time of one block-sized operation on `disk`, including
    /// its slowdown.
    pub fn op_time_on(&self, disk: crate::addr::DiskId, block_bytes: usize) -> Duration {
        self.model.op_time(block_bytes).mul_f64(self.factor(disk))
    }

    /// Estimated wall time for a trace, priced at the **slowest** disk's
    /// rate: every parallel operation is assumed to touch the straggler
    /// (the pessimistic end, consistent with [`DiskModel::estimate`]).
    pub fn estimate(&self, stats: &IoStats, block_bytes: usize) -> Duration {
        let worst = self
            .slowdown
            .iter()
            .copied()
            .fold(1.0f64, f64::max);
        self.model.estimate(stats, block_bytes).mul_f64(worst)
    }

    /// Whether `disk` is a straggler worth hedging: at least `after ×`
    /// slower than the fastest disk in the array.  `after <= 1` hedges
    /// any disk slower than the fastest; the CLI default is 4.
    pub fn is_straggler(&self, disk: crate::addr::DiskId, after: f64) -> bool {
        let fastest = self
            .slowdown
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if !fastest.is_finite() {
            return false;
        }
        self.factor(disk) >= after * fastest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DiskId;

    fn stats(reads: u64, writes: u64, blocks_each: u64) -> IoStats {
        IoStats {
            read_ops: reads,
            write_ops: writes,
            blocks_read: reads * blocks_each,
            blocks_written: writes * blocks_each,
            ..IoStats::default()
        }
    }

    #[test]
    fn op_time_scales_with_block_size() {
        let m = DiskModel::hdd_1996();
        let small = m.op_time(1 << 10);
        let large = m.op_time(1 << 24);
        assert!(large > small);
        // Access time dominates tiny blocks: ~14.6 ms.
        assert!((small.as_secs_f64() - 0.0146).abs() < 1e-3);
    }

    #[test]
    fn estimate_is_linear_in_ops() {
        let m = DiskModel::hdd_modern();
        let one = m.estimate(&stats(1, 0, 4), 1 << 16);
        let ten = m.estimate(&stats(6, 4, 4), 1 << 16);
        assert!((ten.as_secs_f64() / one.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wider_ops_increase_bandwidth() {
        let m = DiskModel::hdd_1996();
        // Same blocks moved, fewer ops (higher parallelism) -> more MB/s.
        let narrow = IoStats {
            read_ops: 100,
            write_ops: 0,
            blocks_read: 100,
            blocks_written: 0,
            ..IoStats::default()
        };
        let wide = IoStats {
            read_ops: 25,
            write_ops: 0,
            blocks_read: 100,
            blocks_written: 0,
            ..IoStats::default()
        };
        assert!(m.achieved_bandwidth(&wide, 1 << 16) > m.achieved_bandwidth(&narrow, 1 << 16));
    }

    #[test]
    fn zero_trace_has_zero_bandwidth() {
        let m = DiskModel::ssd();
        assert_eq!(m.achieved_bandwidth(&IoStats::default(), 4096), 0.0);
    }

    #[test]
    fn overlap_is_max_serial_is_sum() {
        let m = DiskModel::hdd_1996();
        let s = stats(100, 100, 4);
        let io = m.estimate(&s, 1 << 16);
        let short_cpu = io / 3;
        let long_cpu = io * 3;
        assert_eq!(m.overlapped_estimate(&s, 1 << 16, short_cpu), io);
        assert_eq!(m.overlapped_estimate(&s, 1 << 16, long_cpu), long_cpu);
        assert_eq!(m.serial_estimate(&s, 1 << 16, short_cpu), io + short_cpu);
        // Overlap never loses.
        assert!(m.overlapped_estimate(&s, 1 << 16, long_cpu) <= m.serial_estimate(&s, 1 << 16, long_cpu));
    }

    #[test]
    fn array_timing_prices_the_straggler() {
        let t = ArrayTiming::uniform(DiskModel::hdd_1996(), 4).with_slowdown(DiskId(2), 3.0);
        assert_eq!(t.factor(DiskId(0)), 1.0);
        assert_eq!(t.factor(DiskId(2)), 3.0);
        let b = 1 << 16;
        assert_eq!(t.op_time_on(DiskId(2), b), t.model().op_time(b).mul_f64(3.0));
        // Whole-trace estimate is pessimistic: priced at the straggler.
        let s = stats(10, 10, 4);
        assert_eq!(t.estimate(&s, b), t.model().estimate(&s, b).mul_f64(3.0));
    }

    #[test]
    fn straggler_detection_is_relative_to_fastest() {
        let t = ArrayTiming::uniform(DiskModel::ssd(), 3).with_slowdown(DiskId(1), 5.0);
        assert!(t.is_straggler(DiskId(1), 4.0), "5x >= 4x threshold");
        assert!(!t.is_straggler(DiskId(0), 4.0), "nominal disk never hedged");
        assert!(!t.is_straggler(DiskId(1), 8.0), "5x < 8x threshold");
        // Uniformly slow arrays have no straggler: relative, not absolute.
        let all_slow = ArrayTiming::uniform(DiskModel::hdd_1996(), 2)
            .with_slowdown(DiskId(0), 5.0)
            .with_slowdown(DiskId(1), 5.0);
        assert!(!all_slow.is_straggler(DiskId(0), 4.0));
    }
}
