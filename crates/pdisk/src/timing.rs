//! Disk service-time model.
//!
//! The paper motivates SRM by the I/O bottleneck: each parallel operation
//! costs roughly one random access on every participating disk.  This module
//! converts counted operations into estimated wall time with the standard
//! seek + rotational-latency + transfer decomposition (Ruemmler & Wilkes,
//! "An introduction to disk drive modeling", IEEE Computer 1994 — the
//! paper's reference \[RW94\]).
//!
//! Because all disks of one parallel operation work concurrently, one
//! operation costs one per-disk access time, not `D` of them.

use crate::stats::IoStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-disk service-time parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Average seek time, milliseconds.
    pub avg_seek_ms: f64,
    /// Average rotational latency, milliseconds (half a revolution).
    pub avg_rotational_ms: f64,
    /// Sustained media transfer rate, megabytes per second.
    pub transfer_mb_per_s: f64,
}

impl DiskModel {
    /// A mid-1990s SCSI drive of the kind the paper contemplates
    /// (≈ 5400 RPM, ≈ 9 ms seek, ≈ 6 MB/s media rate).
    pub fn hdd_1996() -> Self {
        DiskModel {
            avg_seek_ms: 9.0,
            avg_rotational_ms: 5.6,
            transfer_mb_per_s: 6.0,
        }
    }

    /// A contemporary 7200 RPM SATA drive.
    pub fn hdd_modern() -> Self {
        DiskModel {
            avg_seek_ms: 8.0,
            avg_rotational_ms: 4.2,
            transfer_mb_per_s: 180.0,
        }
    }

    /// A solid-state device: no mechanical latency to speak of, but a
    /// non-zero per-operation overhead.
    pub fn ssd() -> Self {
        DiskModel {
            avg_seek_ms: 0.03,
            avg_rotational_ms: 0.0,
            transfer_mb_per_s: 2500.0,
        }
    }

    /// Time for one parallel I/O operation transferring one block of
    /// `block_bytes` bytes per participating disk.
    pub fn op_time(&self, block_bytes: usize) -> Duration {
        let access_ms = self.avg_seek_ms + self.avg_rotational_ms;
        let transfer_ms = block_bytes as f64 / (self.transfer_mb_per_s * 1e6) * 1e3;
        Duration::from_secs_f64((access_ms + transfer_ms) / 1e3)
    }

    /// Estimated wall time for a whole I/O trace, assuming every operation
    /// is a random access (the pessimistic end of the paper's model).
    pub fn estimate(&self, stats: &IoStats, block_bytes: usize) -> Duration {
        let ops = stats.total_ops() as u32;
        self.op_time(block_bytes) * ops
    }

    /// Estimated wall time including fault-recovery work: every retried
    /// operation costs one extra random access on top of the logical
    /// trace priced by [`DiskModel::estimate`].  Backoff waits added by
    /// a retry policy are *not* included here; see
    /// [`crate::retry::RetryPolicy::total_backoff`].
    pub fn estimate_with_retries(&self, stats: &IoStats, block_bytes: usize) -> Duration {
        let ops = (stats.total_ops() + stats.total_retries()) as u32;
        self.op_time(block_bytes) * ops
    }

    /// Makespan when internal computation overlaps I/O — the pipelined
    /// execution both SRM and DSM are built for (§5's two concurrent
    /// control flows).  In steady state the slower resource dominates.
    pub fn overlapped_estimate(
        &self,
        stats: &IoStats,
        block_bytes: usize,
        cpu: Duration,
    ) -> Duration {
        self.estimate(stats, block_bytes).max(cpu)
    }

    /// Makespan when computation and I/O serialize (no prefetching, no
    /// write-behind): the sum of both resources.
    pub fn serial_estimate(&self, stats: &IoStats, block_bytes: usize, cpu: Duration) -> Duration {
        self.estimate(stats, block_bytes) + cpu
    }

    /// Estimated aggregate bandwidth achieved by a trace that moved
    /// `blocks` total blocks of `block_bytes` bytes in `ops` parallel
    /// operations, in MB/s.
    pub fn achieved_bandwidth(&self, stats: &IoStats, block_bytes: usize) -> f64 {
        let t = self.estimate(stats, block_bytes).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let bytes = (stats.blocks_read + stats.blocks_written) as f64 * block_bytes as f64;
        bytes / t / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64, blocks_each: u64) -> IoStats {
        IoStats {
            read_ops: reads,
            write_ops: writes,
            blocks_read: reads * blocks_each,
            blocks_written: writes * blocks_each,
            ..IoStats::default()
        }
    }

    #[test]
    fn op_time_scales_with_block_size() {
        let m = DiskModel::hdd_1996();
        let small = m.op_time(1 << 10);
        let large = m.op_time(1 << 24);
        assert!(large > small);
        // Access time dominates tiny blocks: ~14.6 ms.
        assert!((small.as_secs_f64() - 0.0146).abs() < 1e-3);
    }

    #[test]
    fn estimate_is_linear_in_ops() {
        let m = DiskModel::hdd_modern();
        let one = m.estimate(&stats(1, 0, 4), 1 << 16);
        let ten = m.estimate(&stats(6, 4, 4), 1 << 16);
        assert!((ten.as_secs_f64() / one.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wider_ops_increase_bandwidth() {
        let m = DiskModel::hdd_1996();
        // Same blocks moved, fewer ops (higher parallelism) -> more MB/s.
        let narrow = IoStats {
            read_ops: 100,
            write_ops: 0,
            blocks_read: 100,
            blocks_written: 0,
            ..IoStats::default()
        };
        let wide = IoStats {
            read_ops: 25,
            write_ops: 0,
            blocks_read: 100,
            blocks_written: 0,
            ..IoStats::default()
        };
        assert!(m.achieved_bandwidth(&wide, 1 << 16) > m.achieved_bandwidth(&narrow, 1 << 16));
    }

    #[test]
    fn zero_trace_has_zero_bandwidth() {
        let m = DiskModel::ssd();
        assert_eq!(m.achieved_bandwidth(&IoStats::default(), 4096), 0.0);
    }

    #[test]
    fn overlap_is_max_serial_is_sum() {
        let m = DiskModel::hdd_1996();
        let s = stats(100, 100, 4);
        let io = m.estimate(&s, 1 << 16);
        let short_cpu = io / 3;
        let long_cpu = io * 3;
        assert_eq!(m.overlapped_estimate(&s, 1 << 16, short_cpu), io);
        assert_eq!(m.overlapped_estimate(&s, 1 << 16, long_cpu), long_cpu);
        assert_eq!(m.serial_estimate(&s, 1 << 16, short_cpu), io + short_cpu);
        // Overlap never loses.
        assert!(m.overlapped_estimate(&s, 1 << 16, long_cpu) <= m.serial_estimate(&s, 1 << 16, long_cpu));
    }
}
