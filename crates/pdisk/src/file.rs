//! Real-file disk array.
//!
//! Each simulated disk is one file; the per-disk transfers of a parallel
//! I/O operation execute concurrently on dedicated worker threads (one per
//! disk, owning that disk's file handle), so a `D`-wide operation issues `D`
//! positioned reads/writes in parallel exactly as the model intends.
//!
//! On-disk format: fixed-size block slots.  Each slot is
//!
//! ```text
//! [u64 FNV-1a checksum of the rest of the slot]
//! [u32 record-count][u32 forecast-kind][8 * max(D,1) bytes forecast keys]
//! [B * ENCODED_LEN bytes records]
//! ```
//!
//! `forecast-kind` is 0 for [`Forecast::Next`] (one key used) and 1 for
//! [`Forecast::Initial`] (`D` keys used).  Unused key slots hold
//! [`crate::block::NO_BLOCK`].
//!
//! The leading checksum covers every payload byte, so a torn write, a
//! flipped bit, or a stale sector surfaces as [`PdiskError::Corrupt`] at
//! read time — corruption can abort a sort but can never silently
//! mis-sort.  [`FileDiskArray::open`] reopens an existing array without
//! truncating, which is what checkpoint/resume builds on.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Sender};

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket, WriteTicket};
use crate::block::{Block, Forecast, NO_BLOCK};
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::trace::{TraceEvent, TraceSink};

/// Bytes of the leading per-slot checksum.
const CHECKSUM_BYTES: usize = 8;

/// Deepest write-behind pipeline the engines run: a queue of at most
/// this many un-completed [`WriteTicket`]s per run writer.  Deeper
/// write-behind hides more device latency, but every un-completed
/// ticket is a write a crash can tear — so the reopen recovery window
/// below is sized from this same constant and the two move in lockstep.
pub const WRITE_BEHIND_LIMIT: usize = 3;

/// How many whole trailing slots per disk a crash can tear.  The engines
/// keep at most [`WRITE_BEHIND_LIMIT`] write-behind tickets in flight
/// when the process dies (the newest of them being the write just
/// issued), and each parallel write places at most one slot per disk —
/// so with one slot of margin, at most `WRITE_BEHIND_LIMIT + 1`
/// un-fsynced trailing slots per disk can be partially applied.
/// Checksum failures deeper than this window are structural corruption
/// and refuse the reopen.
const MAX_TORN_SLOTS: u64 = WRITE_BEHIND_LIMIT as u64 + 1;

/// Name of the advisory lock file guarding an array directory.
const LOCK_FILE: &str = "pdisk.lock";

/// First 8 bytes of `bytes` as a little-endian `u64`.  Callers pass
/// buffers sized by this module, so the length is guaranteed.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// First 4 bytes of `bytes` as a little-endian `u32`.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(b)
}

/// Canonicalized array directories currently open in this process.
fn open_dirs() -> &'static Mutex<BTreeSet<PathBuf>> {
    static DIRS: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    DIRS.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Whether a process with `pid` is alive, per procfs.  On platforms
/// without `/proc` this reports `false`, treating foreign locks as
/// stale — same-process double-opens are still caught by the registry.
fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

/// Exclusive claim on one array directory, held for the lifetime of a
/// [`FileDiskArray`].  Two live handles on the same directory would
/// share allocator state by accident and silently interleave writes, so
/// the second open fails with [`PdiskError::ArrayLocked`] instead.
///
/// Within a process the claim is a registry of canonicalized paths; a
/// cross-process claim is an advisory `pdisk.lock` file recording the
/// holder's PID.  A lock whose holder is no longer alive (a crash) is
/// stale and silently reclaimed, so recovery never needs a manual
/// unlock step.
#[derive(Debug)]
struct DirLock {
    canonical: PathBuf,
    lock_path: PathBuf,
}

impl DirLock {
    fn registry() -> crate::lockwitness::Witnessed<std::sync::MutexGuard<'static, BTreeSet<PathBuf>>>
    {
        crate::lockwitness::guard(
            "pdisk::file::open_dirs",
            open_dirs().lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    fn acquire(dir: &Path) -> Result<Self> {
        let canonical = dir.canonicalize()?;
        let lock_path = dir.join(LOCK_FILE);
        let me = std::process::id();
        let mut dirs = Self::registry();
        if dirs.contains(&canonical) {
            return Err(PdiskError::ArrayLocked {
                dir: canonical,
                holder: me,
            });
        }
        if let Ok(text) = std::fs::read_to_string(&lock_path) {
            if let Ok(pid) = text.trim().parse::<u32>() {
                if pid != me && pid_alive(pid) {
                    return Err(PdiskError::ArrayLocked {
                        dir: canonical,
                        holder: pid,
                    });
                }
            }
        }
        std::fs::write(&lock_path, format!("{me}\n"))?;
        dirs.insert(canonical.clone());
        Ok(DirLock {
            canonical,
            lock_path,
        })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        Self::registry().remove(&self.canonical);
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty to catch torn or
/// bit-flipped slots (this guards against accidents, not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Whether the slot at `index` passes its leading checksum.
fn slot_checksum_ok(file: &File, slot_bytes: usize, index: u64) -> io::Result<bool> {
    let mut buf = vec![0u8; slot_bytes];
    file.read_exact_at(&mut buf, index * slot_bytes as u64)?;
    let stored = le_u64(&buf[..CHECKSUM_BYTES]);
    Ok(stored == fnv1a64(&buf[CHECKSUM_BYTES..]))
}

/// The channel to a per-disk worker broke: the thread is gone.
fn worker_gone() -> PdiskError {
    PdiskError::Io(io::Error::other("disk worker thread terminated"))
}

enum Job {
    Read {
        offset: u64,
        /// Pool-drawn buffer, pre-sized to the slot length; the worker
        /// fills it in place and sends it back, so steady-state reads
        /// allocate nothing.
        buf: Vec<u8>,
        reply: Sender<io::Result<Vec<u8>>>,
    },
    Write {
        offset: u64,
        bytes: Vec<u8>,
        /// Workers reply with the consumed slot bytes on success so the
        /// caller can recycle them into the buffer pool.
        reply: Sender<io::Result<Vec<u8>>>,
    },
    /// Durability barrier: `fsync` the disk file.  Because each worker
    /// processes its queue in order, the barrier also *drains* every
    /// write queued before it — a sync reply means those writes are on
    /// stable storage, not merely in flight.
    Sync {
        reply: Sender<io::Result<()>>,
    },
}

struct Worker {
    tx: Sender<Job>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Counters for the speculative read-ahead cache of
/// [`FileDiskArray::prefetch`].  Hints are free in the model (no
/// [`IoStats`] charge), so these are the only visibility into whether
/// read-ahead is actually landing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Speculative per-disk reads started.
    pub issued: u64,
    /// Demand reads served from an in-flight (or landed) prefetch.
    pub hits: u64,
    /// Prefetches thrown away because the slot was written over before
    /// the demand read arrived (the cache never serves stale bytes).
    pub invalidated: u64,
}

/// A disk array backed by one file per disk, with per-disk I/O threads.
pub struct FileDiskArray<R: Record> {
    geom: Geometry,
    dir: PathBuf,
    workers: Vec<Worker>,
    next_free: Vec<u64>,
    stats: IoStats,
    slot_bytes: usize,
    forecast_keys: usize,
    trace: Option<TraceSink>,
    pool: BufferPool<R>,
    /// Artificial per-job service time in microseconds, shared with the
    /// worker threads (0 = none).  Used by benchmarks to emulate a
    /// device whose transfers take real time, making I/O–compute
    /// overlap measurable even on a fast local filesystem.
    io_delay_us: Arc<AtomicU64>,
    /// Per-disk count of torn trailing frames (whole slots plus a
    /// partial tail) dropped by the reopen recovery; all zero for a
    /// freshly created array or a clean reopen.
    torn_dropped: Vec<u64>,
    /// Speculative read-ahead cache: slots whose per-disk read was
    /// started on a [`DiskArray::prefetch`] hint and not yet claimed by
    /// a demand read.  Holds only the reply channel — the bytes stay on
    /// the worker side until claimed, so a hit simply adopts the
    /// receiver and the demand path proceeds as if it had dispatched
    /// the job itself.
    prefetched: HashMap<BlockAddr, crate::backend::SlotReply>,
    prefetch_stats: PrefetchStats,
    /// Opt-in checksum elision (see [`FileDiskArray::set_trusted_reads`]).
    trust_reads: bool,
    /// Slots whose on-disk bytes this process produced or has already
    /// checksum-verified; only populated while `trust_reads` is on.
    verified: HashSet<BlockAddr>,
    _lock: DirLock,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> FileDiskArray<R> {
    /// Create (or truncate) `D` disk files under `dir` and start the worker
    /// threads.
    pub fn create(geom: Geometry, dir: impl AsRef<Path>) -> Result<Self> {
        Self::build(geom, dir, true)
    }

    /// Reopen an existing array without truncating: every block written
    /// before the reopen stays readable, and allocation resumes after
    /// the highest slot present in each disk file.  This is the
    /// substrate for checkpoint/resume — a resumed sort reopens the
    /// array and continues from its manifest.
    ///
    /// A crash mid-write can leave one *torn* slot at a file's tail
    /// (partial, or full-length with a failing checksum).  The reopen
    /// detects it via the slot checksum and truncates back to the last
    /// whole slot — but only after verifying the preceding slot, so a
    /// reopen under the wrong geometry still fails with
    /// [`PdiskError::Corrupt`] instead of shearing real data.
    pub fn open(geom: Geometry, dir: impl AsRef<Path>) -> Result<Self> {
        Self::build(geom, dir, false)
    }

    fn build(geom: Geometry, dir: impl AsRef<Path>, truncate: bool) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;
        let forecast_keys = geom.d.max(1);
        let slot_bytes = CHECKSUM_BYTES + 8 + 8 * forecast_keys + geom.b * R::ENCODED_LEN;
        let io_delay_us = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::with_capacity(geom.d);
        let mut next_free = vec![0u64; geom.d];
        let mut torn_dropped = vec![0u64; geom.d];
        for (d, free) in next_free.iter_mut().enumerate() {
            let path = dir.join(format!("disk_{d:04}.bin"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(truncate)
                .open(&path)?;
            if !truncate {
                // Recover the allocator from the file, tolerating a torn
                // *parallel-write group* at the tail.  A crash can leave
                // un-fsynced trailing slots partially applied on every
                // disk of the group at once, and with up to
                // WRITE_BEHIND_LIMIT write-behind tickets in flight, up
                // to MAX_TORN_SLOTS whole slots per disk may be affected
                // — not just the single last slot.  Verify *before*
                // truncating: after dropping the torn tail, the surviving
                // trailing slot must pass its checksum, so a reopen under
                // the wrong geometry — where every slot boundary is
                // misaligned — is refused rather than having real data
                // sheared off.
                let len = file.metadata()?.len();
                let sb = slot_bytes as u64;
                let (whole, rem) = (len / sb, len % sb);
                let refuse = |what: &str| {
                    Err(PdiskError::Corrupt(format!(
                        "disk file {} is {len} bytes with {what} and no \
                         checksum-valid {slot_bytes}-byte slot before it \
                         (wrong geometry or record type?)",
                        path.display()
                    )))
                };
                // Drop whole trailing slots that fail their checksum, up
                // to the torn-write window.
                let mut keep = whole;
                let mut dropped = 0u64;
                while keep > 0
                    && dropped < MAX_TORN_SLOTS
                    && !slot_checksum_ok(&file, slot_bytes, keep - 1)?
                {
                    keep -= 1;
                    dropped += 1;
                }
                if keep > 0 && !slot_checksum_ok(&file, slot_bytes, keep - 1)? {
                    // Corruption deeper than any torn write can reach.
                    return refuse("a corrupt trailing region");
                }
                if keep == 0 && len > 0 {
                    // A torn tail with no verified slot anywhere before
                    // it: nothing anchors the slot size, so refuse
                    // rather than guess.
                    return refuse(if rem != 0 {
                        "a partial trailing slot"
                    } else {
                        "a corrupt trailing slot"
                    });
                }
                if keep * sb != len {
                    file.set_len(keep * sb)?;
                }
                torn_dropped[d] = dropped + u64::from(rem != 0);
                *free = keep;
            }
            workers.push(Self::spawn_worker(d, file, Arc::clone(&io_delay_us))?);
        }
        Ok(FileDiskArray {
            geom,
            dir,
            workers,
            next_free,
            stats: IoStats::default(),
            slot_bytes,
            forecast_keys,
            trace: None,
            pool: BufferPool::new(),
            io_delay_us,
            torn_dropped,
            prefetched: HashMap::new(),
            prefetch_stats: PrefetchStats::default(),
            trust_reads: false,
            verified: HashSet::new(),
            _lock: lock,
            _marker: std::marker::PhantomData,
        })
    }

    // The disk worker thread: ALL of its blocking I/O (positioned
    // reads/writes, fsync, channel recv) lives in this one blessed fn;
    // srmlint's blocking pass rejects any other blocking call that
    // becomes reachable from it.
    #[srmlint::worker_entry]
    #[srmlint::blessed_seam]
    fn spawn_worker(idx: usize, file: File, delay_us: Arc<AtomicU64>) -> Result<Worker> {
        let (tx, rx) = unbounded::<Job>();
        let handle = std::thread::Builder::new()
            .name(format!("pdisk-io-{idx}"))
            .spawn(move || {
                // Virtual device clock for the simulated service time:
                // a disk that has been continuously busy completes one
                // block every `delay` of *modeled* time, so the worker
                // tracks `busy_until` and sleeps toward that deadline
                // rather than sleeping a fixed amount per job.  A bare
                // per-job `thread::sleep` overshoots sub-millisecond
                // requests by ~2x (kernel timer slack), which would
                // silently halve the simulated device bandwidth; with a
                // deadline, overshoot on one job shortens the next sleep,
                // so a backlogged queue drains at exactly one block per
                // `delay` while an idle disk still charges full latency.
                let mut busy_until = std::time::Instant::now();
                loop {
                    let (job, backlogged) = match rx.try_recv() {
                        Ok(job) => (job, true),
                        Err(crossbeam::channel::TryRecvError::Empty) => match rx.recv() {
                            Ok(job) => (job, false),
                            Err(_) => break,
                        },
                        Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                    };
                    let d = delay_us.load(Ordering::Relaxed);
                    if d > 0 {
                        let now = std::time::Instant::now();
                        if !backlogged && busy_until < now {
                            // The device sat idle until this job arrived.
                            busy_until = now;
                        }
                        busy_until += Duration::from_micros(d);
                        if busy_until > now {
                            std::thread::sleep(busy_until - now);
                        }
                    }
                    match job {
                        Job::Read { offset, mut buf, reply } => {
                            let res = file.read_exact_at(&mut buf, offset).map(|()| buf);
                            let _ = reply.send(res);
                        }
                        Job::Write { offset, bytes, reply } => {
                            let res = file.write_all_at(&bytes, offset).map(|()| bytes);
                            let _ = reply.send(res);
                        }
                        Job::Sync { reply } => {
                            let _ = reply.send(file.sync_all());
                        }
                    }
                }
            })?;
        Ok(Worker {
            tx,
            handle: Some(handle),
        })
    }

    /// Directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Per-disk count of torn trailing frames dropped by the last
    /// reopen's recovery — how much of an interrupted parallel-write
    /// group was detected and discarded on each disk.  All zero for a
    /// fresh array or a clean reopen.
    pub fn torn_frames_dropped(&self) -> &[u64] {
        &self.torn_dropped
    }

    /// Bytes a block slot occupies on disk.
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Add an artificial service time to every per-disk transfer,
    /// emulating a device where one block takes `delay` to move.
    /// Benchmarks use this to make I/O–compute overlap measurable on a
    /// fast local filesystem; sub-microsecond values round to zero.
    pub fn set_io_delay(&self, delay: Duration) {
        self.io_delay_us
            .store(delay.as_micros() as u64, Ordering::Relaxed);
    }

    /// Snapshot of the speculative read-ahead counters.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// Skip the FNV checksum compare on reads of slots this process
    /// already verified (or wrote itself) during this run.  Default
    /// off: every read verifies.  With it on, the *first* read of any
    /// slot still verifies — only re-reads of bytes whose checksum this
    /// process computed or checked are elided, so external corruption
    /// is still caught at first contact.  Meant for benchmarking and
    /// for single-pass workloads where the OS page cache makes a
    /// re-hash pure CPU overhead; leave off when the storage below can
    /// mutate between reads.
    pub fn set_trusted_reads(&mut self, on: bool) {
        self.trust_reads = on;
        if !on {
            self.verified.clear();
        }
    }

    fn encode_block(&self, block: &Block<R>) -> Result<Vec<u8>> {
        if block.len() > self.geom.b {
            return Err(PdiskError::BadBlockSize {
                expected: self.geom.b,
                got: block.len(),
            });
        }
        // Pool-drawn buffers come back cleared (len 0), so the resize
        // zero-fills the whole slot: short final blocks leave no stale
        // payload behind the record count.
        let mut out = self.pool.take_bytes(self.slot_bytes);
        out.resize(self.slot_bytes, 0);
        let payload_at = CHECKSUM_BYTES;
        out[payload_at..payload_at + 4].copy_from_slice(&(block.len() as u32).to_le_bytes());
        let (kind, keys): (u32, &[u64]) = match &block.forecast {
            Forecast::Next(k) => (0, std::slice::from_ref(k)),
            Forecast::Initial(ks) => (1, ks.as_slice()),
        };
        if keys.len() > self.forecast_keys {
            return Err(PdiskError::Corrupt(format!(
                "forecast table of {} keys exceeds reserved {}",
                keys.len(),
                self.forecast_keys
            )));
        }
        out[payload_at + 4..payload_at + 8].copy_from_slice(&kind.to_le_bytes());
        let mut off = payload_at + 8;
        for i in 0..self.forecast_keys {
            let k = keys.get(i).copied().unwrap_or(NO_BLOCK);
            out[off..off + 8].copy_from_slice(&k.to_le_bytes());
            off += 8;
        }
        for rec in &block.records {
            rec.encode(&mut out[off..off + R::ENCODED_LEN]);
            off += R::ENCODED_LEN;
        }
        let checksum = fnv1a64(&out[CHECKSUM_BYTES..]);
        out[..CHECKSUM_BYTES].copy_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Decode the slot read back from `addr`.  With trusted reads on,
    /// the checksum compare is skipped for slots this process already
    /// verified or wrote; the first read of a slot always verifies.
    fn decode_block_at(&mut self, addr: BlockAddr, bytes: &[u8]) -> Result<Block<R>> {
        let skip = self.trust_reads && self.verified.contains(&addr);
        let block = self.decode_block(bytes, !skip)?;
        if self.trust_reads && !skip {
            self.verified.insert(addr);
        }
        Ok(block)
    }

    fn decode_block(&self, bytes: &[u8], verify: bool) -> Result<Block<R>> {
        if bytes.len() != self.slot_bytes {
            return Err(PdiskError::Corrupt(format!(
                "slot of {} bytes, expected {}",
                bytes.len(),
                self.slot_bytes
            )));
        }
        if verify {
            let stored = le_u64(&bytes[..CHECKSUM_BYTES]);
            let actual = fnv1a64(&bytes[CHECKSUM_BYTES..]);
            if stored != actual {
                return Err(PdiskError::Corrupt(format!(
                    "block checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
                )));
            }
        }
        let bytes = &bytes[CHECKSUM_BYTES..];
        let n = le_u32(&bytes[..4]) as usize;
        if n > self.geom.b {
            return Err(PdiskError::Corrupt(format!(
                "record count {n} exceeds block size {}",
                self.geom.b
            )));
        }
        let kind = le_u32(&bytes[4..8]);
        let mut off = 8;
        let forecast = match kind {
            // `Next` carries one live key; skipping the reserved tail
            // avoids a per-block Vec on the hot path.
            0 => Forecast::Next(le_u64(&bytes[off..off + 8])),
            1 => {
                let mut keys = Vec::with_capacity(self.forecast_keys);
                for i in 0..self.forecast_keys {
                    keys.push(le_u64(&bytes[off + 8 * i..off + 8 * i + 8]));
                }
                Forecast::Initial(keys)
            }
            k => return Err(PdiskError::Corrupt(format!("unknown forecast kind {k}"))),
        };
        off += 8 * self.forecast_keys;
        let mut records = self.pool.take_records(n);
        for _ in 0..n {
            records.push(R::decode(&bytes[off..off + R::ENCODED_LEN]));
            off += R::ENCODED_LEN;
        }
        Ok(Block { records, forecast })
    }

    /// Validate and fan out one parallel read to the per-disk workers,
    /// returning the reply channels in request order.  Shared by the
    /// serial [`DiskArray::read`] and split-phase
    /// [`DiskArray::submit_read`] paths so both enforce identical
    /// model rules.
    fn dispatch_reads(
        &mut self,
        addrs: &[BlockAddr],
    ) -> Result<Vec<crossbeam::channel::Receiver<io::Result<Vec<u8>>>>> {
        self.geom.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        let mut replies = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            if addr.offset >= self.next_free[addr.disk.index()] {
                return Err(PdiskError::UnmappedBlock(addr));
            }
            // A prefetch already started (or finished) this exact slot
            // read: adopt its reply channel instead of queueing the job
            // again.  The demand path downstream is unchanged — it just
            // receives sooner.
            if let Some(rx) = self.prefetched.remove(&addr) {
                self.prefetch_stats.hits += 1;
                replies.push(rx);
                continue;
            }
            let mut buf = self.pool.take_bytes(self.slot_bytes);
            buf.resize(self.slot_bytes, 0);
            let (tx, rx) = bounded(1);
            self.workers[addr.disk.index()]
                .tx
                .send(Job::Read {
                    offset: addr.offset * self.slot_bytes as u64,
                    buf,
                    reply: tx,
                })
                .map_err(|_| worker_gone())?;
            replies.push(rx);
        }
        Ok(replies)
    }

    /// Validate, encode, and fan out one parallel write; the consumed
    /// record buffers are recycled into the pool immediately (the
    /// workers own the encoded bytes until completion).
    fn dispatch_writes(
        &mut self,
        writes: Vec<(BlockAddr, Block<R>)>,
    ) -> Result<Vec<crossbeam::channel::Receiver<io::Result<Vec<u8>>>>> {
        self.geom
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let mut replies = Vec::with_capacity(writes.len());
        for (addr, block) in writes {
            if addr.offset >= self.next_free[addr.disk.index()] {
                return Err(PdiskError::UnmappedBlock(addr));
            }
            // Never serve stale bytes: a prefetch of this slot raced the
            // overwrite, so drop its receiver (the worker's send to a
            // dropped channel is harmless).
            if self.prefetched.remove(&addr).is_some() {
                self.prefetch_stats.invalidated += 1;
            }
            let bytes = self.encode_block(&block)?;
            if self.trust_reads {
                // We computed this slot's checksum ourselves just now.
                self.verified.insert(addr);
            }
            self.pool.put_records(block.records);
            let (tx, rx) = bounded(1);
            self.workers[addr.disk.index()]
                .tx
                .send(Job::Write {
                    offset: addr.offset * self.slot_bytes as u64,
                    bytes,
                    reply: tx,
                })
                .map_err(|_| worker_gone())?;
            replies.push(rx);
        }
        Ok(replies)
    }
}

impl<R: Record> Drop for FileDiskArray<R> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Dropping the sender closes the channel; recv errors end the loop.
            let (dummy_tx, _) = unbounded();
            let tx = std::mem::replace(&mut w.tx, dummy_tx);
            drop(tx);
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl<R: Record> DiskArray<R> for FileDiskArray<R> {
    fn geometry(&self) -> Geometry {
        self.geom
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        self.geom.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        // Fan out: one positioned read per disk, executed concurrently by
        // the per-disk workers.
        let replies = self.dispatch_reads(addrs)?;
        let mut out = Vec::with_capacity(addrs.len());
        for (rx, &addr) in replies.into_iter().zip(addrs.iter()) {
            let bytes = rx.recv().map_err(|_| worker_gone())??;
            let block = self.decode_block_at(addr, &bytes)?;
            self.pool.put_bytes(bytes);
            out.push(block);
        }
        self.stats.record_read(addrs.len());
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::PhysRead {
                addrs: addrs.to_vec(),
            });
        }
        Ok(out)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        self.geom
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let n = writes.len();
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        let replies = self.dispatch_writes(writes)?;
        for rx in replies {
            let bytes = rx.recv().map_err(|_| worker_gone())??;
            self.pool.put_bytes(bytes);
        }
        self.stats.record_write(n);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::PhysWrite { addrs });
        }
        Ok(())
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let slot = self
            .next_free
            .get_mut(disk.index())
            .ok_or(PdiskError::NoSuchDisk(disk))?;
        let start = *slot;
        *slot += count;
        Ok(start)
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        if addrs.is_empty() {
            return Ok(ReadTicket::ready(Vec::new(), Vec::new()));
        }
        let replies = self.dispatch_reads(addrs)?;
        // The operation is charged (and physically traced) at submit:
        // the split-phase pair is one parallel I/O, and counting it
        // where it is issued keeps the op sequence identical to the
        // serial engine's.
        self.stats.record_read(addrs.len());
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::PhysRead {
                addrs: addrs.to_vec(),
            });
        }
        Ok(ReadTicket::pending(addrs.to_vec(), replies))
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        match ticket.state {
            crate::backend::ReadState::Ready(blocks) => Ok(blocks),
            crate::backend::ReadState::Pending(replies) => {
                let mut out = Vec::with_capacity(replies.len());
                for (rx, &addr) in replies.into_iter().zip(ticket.addrs.iter()) {
                    let bytes = rx.recv().map_err(|_| worker_gone())??;
                    let block = self.decode_block_at(addr, &bytes)?;
                    self.pool.put_bytes(bytes);
                    out.push(block);
                }
                Ok(out)
            }
        }
    }

    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<WriteTicket> {
        if writes.is_empty() {
            return Ok(WriteTicket::ready(Vec::new()));
        }
        let n = writes.len();
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        let replies = self.dispatch_writes(writes)?;
        self.stats.record_write(n);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::PhysWrite {
                addrs: addrs.clone(),
            });
        }
        Ok(WriteTicket::pending(addrs, replies))
    }

    fn complete_write(&mut self, ticket: WriteTicket) -> Result<()> {
        match ticket.state {
            crate::backend::WriteState::Ready => Ok(()),
            crate::backend::WriteState::Pending(replies) => {
                for rx in replies {
                    let bytes = rx.recv().map_err(|_| worker_gone())??;
                    self.pool.put_bytes(bytes);
                }
                Ok(())
            }
        }
    }

    /// Speculative read-ahead: start the per-disk reads for `addrs` now
    /// and park the reply channels in a cache keyed by address.  A later
    /// demand read of the same slot adopts the channel and skips the
    /// device wait.  Hints are *not* parallel I/O operations: nothing is
    /// charged to [`IoStats`], no trace events are emitted, and bad or
    /// already-cached addresses are silently skipped — but each
    /// speculative read does occupy its disk's worker (including any
    /// simulated service delay), so the device time is physically
    /// honest; prefetching only ever moves it earlier.
    fn prefetch(&mut self, addrs: &[BlockAddr]) {
        for &addr in addrs {
            if self.prefetched.contains_key(&addr)
                || addr.disk.index() >= self.geom.d
                || addr.offset >= self.next_free[addr.disk.index()]
            {
                continue;
            }
            let mut buf = self.pool.take_bytes(self.slot_bytes);
            buf.resize(self.slot_bytes, 0);
            let (tx, rx) = bounded(1);
            let sent = self.workers[addr.disk.index()].tx.send(Job::Read {
                offset: addr.offset * self.slot_bytes as u64,
                buf,
                reply: tx,
            });
            if sent.is_ok() {
                self.prefetched.insert(addr, rx);
                self.prefetch_stats.issued += 1;
            }
        }
    }

    /// Durability barrier: drain every queued write and `fsync` all `D`
    /// disk files before returning.  Worker queues are processed in
    /// order, so a completed sync means every write submitted before it
    /// — including abandoned write-behind tickets — is on stable
    /// storage.  Checkpoint writers call this before publishing a
    /// manifest.
    fn sync(&mut self) -> Result<()> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            let (tx, rx) = bounded(1);
            w.tx.send(Job::Sync { reply: tx }).map_err(|_| worker_gone())?;
            replies.push(rx);
        }
        for rx in replies {
            rx.recv().map_err(|_| worker_gone())??;
        }
        Ok(())
    }

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.pool = pool;
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        Some(&self.pool)
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }
}

// The file backend's tests live on the real filesystem, which miri's
// isolation does not provide — the CI miri job covers every other pdisk
// module and skips these.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::record::{KeyPayloadRecord, U64Record};

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("pdisk-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn blk(keys: &[u64], forecast: Forecast) -> Block<U64Record> {
        Block::new(keys.iter().map(|&k| U64Record(k)).collect(), forecast)
    }

    #[test]
    fn roundtrip_including_forecast_variants() {
        let g = Geometry::new(3, 4, 1000).unwrap();
        let dir = tmpdir("roundtrip");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o0 = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let initial = blk(&[1, 5, 9], Forecast::Initial(vec![1, 20, NO_BLOCK]));
        let next = blk(&[20, 21, 22, 23], Forecast::Next(40));
        a.write(vec![
            (BlockAddr::new(DiskId(0), o0), initial.clone()),
            (BlockAddr::new(DiskId(1), o1), next.clone()),
        ])
        .unwrap();
        let got = a
            .read(&[BlockAddr::new(DiskId(0), o0), BlockAddr::new(DiskId(1), o1)])
            .unwrap();
        assert_eq!(got[0], initial);
        assert_eq!(got[1], next);
        assert_eq!(a.stats().read_ops, 1);
        assert_eq!(a.stats().blocks_read, 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_records_survive_disk() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("payload");
        let mut a: FileDiskArray<KeyPayloadRecord<24>> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let recs: Vec<_> = (0..3)
            .map(|k| KeyPayloadRecord::<24>::with_derived_payload(k * 7))
            .collect();
        let block = Block::new(recs.clone(), Forecast::Next(99));
        a.write(vec![(BlockAddr::new(DiskId(1), o), block)]).unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(1), o)]).unwrap();
        assert_eq!(got[0].records, recs);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_block_preserves_record_count() {
        let g = Geometry::new(2, 8, 1000).unwrap();
        let dir = tmpdir("partial");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[3, 4], Forecast::Next(NO_BLOCK)))])
            .unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        assert_eq!(got[0].len(), 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unallocated_read_and_write_fail() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("unalloc");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        assert!(matches!(
            a.read(&[BlockAddr::new(DiskId(0), 0)]),
            Err(PdiskError::UnmappedBlock(_))
        ));
        assert!(matches!(
            a.write(vec![(BlockAddr::new(DiskId(0), 0), blk(&[1], Forecast::Next(0)))]),
            Err(PdiskError::UnmappedBlock(_))
        ));
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_disk_rejected_before_any_io() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("dup");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let err = a
            .read(&[BlockAddr::new(DiskId(0), o), BlockAddr::new(DiskId(0), o + 1)])
            .unwrap_err();
        assert!(matches!(err, PdiskError::DuplicateDisk(_)));
        assert_eq!(a.stats().read_ops, 0);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_any_byte_yields_corrupt_error() {
        let g = Geometry::new(2, 4, 1000).unwrap();
        let dir = tmpdir("corrupt");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let addr = BlockAddr::new(DiskId(0), o);
        a.write(vec![(addr, blk(&[10, 20, 30, 40], Forecast::Next(77)))])
            .unwrap();
        let slot = a.slot_bytes();
        let path = dir.join("disk_0000.bin");
        // Flip one byte at several positions across the slot: checksum
        // field, header, forecast keys, record payload.
        for &pos in &[0usize, 9, 17, slot - 1] {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let err = a.read(&[addr]).unwrap_err();
            assert!(
                matches!(err, PdiskError::Corrupt(_)),
                "byte {pos}: expected Corrupt, got {err:?}"
            );
            // Restore and confirm the block reads clean again.
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[pos] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            assert!(a.read(&[addr]).is_ok(), "byte {pos}: restore failed");
        }
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_resumes_without_truncating() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("reopen");
        let block = blk(&[1, 2, 3], Forecast::Next(9));
        let (o0, o1);
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            o0 = a.alloc_contiguous(DiskId(0), 2).unwrap();
            o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
            a.write(vec![
                (BlockAddr::new(DiskId(0), o0), block.clone()),
                (BlockAddr::new(DiskId(1), o1), block.clone()),
            ])
            .unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o0 + 1), block.clone())])
                .unwrap();
        } // drop: joins workers, flushes
        let mut a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        let got = a
            .read(&[BlockAddr::new(DiskId(0), o0), BlockAddr::new(DiskId(1), o1)])
            .unwrap();
        assert_eq!(got[0], block);
        assert_eq!(got[1], block);
        // Fresh allocations land after the recovered high-water mark.
        let next = a.alloc_contiguous(DiskId(0), 1).unwrap();
        assert!(next >= o0 + 2, "reopen must not reuse written slots");
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_a_torn_trailing_slot() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("torn");
        let block = blk(&[1, 2, 3], Forecast::Next(9));
        let slot;
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            slot = a.slot_bytes() as u64;
            let o = a.alloc_contiguous(DiskId(0), 2).unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o), block.clone())])
                .unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o + 1), block.clone())])
                .unwrap();
        }
        // Simulate a crash mid-write of slot 2: append half a slot.
        let path = dir.join("disk_0000.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, 2 * slot);
        bytes.extend(vec![0xAAu8; slot as usize / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let mut a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        // The torn tail is gone; the two whole slots survive.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 2 * slot);
        let got = a
            .read(&[BlockAddr::new(DiskId(0), 0)])
            .unwrap();
        assert_eq!(got[0], block);
        // Allocation resumes at the recovered high-water mark: the torn
        // slot's space is reused, not silently accepted as data.
        assert_eq!(a.alloc_contiguous(DiskId(0), 1).unwrap(), 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_a_full_length_garbage_tail_slot() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("torn-full");
        let block = blk(&[4, 5, 6], Forecast::Next(9));
        let slot;
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            slot = a.slot_bytes() as u64;
            let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o), block.clone())])
                .unwrap();
        }
        // A torn write that reached the slot boundary: full length, bad
        // checksum.  Before the fix this was silently accepted and the
        // allocator handed out slot 2.
        let path = dir.join("disk_0000.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend(vec![0x55u8; slot as usize]);
        std::fs::write(&path, &bytes).unwrap();
        let mut a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), slot);
        assert_eq!(a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap()[0], block);
        assert_eq!(a.alloc_contiguous(DiskId(0), 1).unwrap(), 1);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_recovers_a_torn_parallel_write_group() {
        // A crash mid-group can leave torn trailing frames on SEVERAL
        // disks at once — a full-length garbage slot on one, a partial
        // slot on another — while a third disk's frame landed cleanly.
        // Recovery must trim each member of the group independently and
        // report what it dropped.
        let g = Geometry::new(3, 3, 1000).unwrap();
        let dir = tmpdir("torn-group");
        let block = blk(&[1, 2, 3], Forecast::Next(9));
        let slot;
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            slot = a.slot_bytes() as u64;
            // One clean full-width stripe everywhere.
            let writes: Vec<_> = (0..3u32)
                .map(|d| {
                    let o = a.alloc_contiguous(DiskId(d), 1).unwrap();
                    (BlockAddr::new(DiskId(d), o), block.clone())
                })
                .collect();
            a.write(writes).unwrap();
        }
        // Torn group on top: disk 0 = full-length garbage slot, disk 1 =
        // half a slot, disk 2 = untouched (its frame never made it out
        // of the dead process).
        let p0 = dir.join("disk_0000.bin");
        let p1 = dir.join("disk_0001.bin");
        let mut b0 = std::fs::read(&p0).unwrap();
        b0.extend(vec![0x55u8; slot as usize]);
        std::fs::write(&p0, &b0).unwrap();
        let mut b1 = std::fs::read(&p1).unwrap();
        b1.extend(vec![0xAAu8; slot as usize / 2]);
        std::fs::write(&p1, &b1).unwrap();

        let mut a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        assert_eq!(a.torn_frames_dropped(), &[1, 1, 0]);
        // Every disk is trimmed back to the last durable group.
        for d in 0..3u32 {
            assert_eq!(a.read(&[BlockAddr::new(DiskId(d), 0)]).unwrap()[0], block);
            assert_eq!(a.alloc_contiguous(DiskId(d), 1).unwrap(), 1);
        }
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_recovers_full_torn_window_but_refuses_deeper_corruption() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("torn-window");
        let block = blk(&[7, 8, 9], Forecast::Next(9));
        let slot;
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            slot = a.slot_bytes() as u64;
            let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o), block.clone())])
                .unwrap();
        }
        let path = dir.join("disk_0000.bin");
        // MAX_TORN_SLOTS garbage whole slots — the deepest a torn
        // write-behind pipeline can reach — recover fine...
        let window = MAX_TORN_SLOTS as usize;
        let clean = std::fs::read(&path).unwrap();
        let mut bytes = clean.clone();
        bytes.extend(vec![0x66u8; window * slot as usize]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
            assert_eq!(a.torn_frames_dropped()[0], MAX_TORN_SLOTS);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), slot);
        }
        // ...but one more garbage slot exceeds the window: that is not
        // a torn write, and recovery must refuse instead of shearing.
        let mut bytes = clean;
        bytes.extend(vec![0x66u8; (window + 1) * slot as usize]);
        std::fs::write(&path, &bytes).unwrap();
        let err = match FileDiskArray::<U64Record>::open(g, &dir) {
            Ok(_) => panic!("corruption beyond the torn window must refuse"),
            Err(e) => e,
        };
        assert!(matches!(err, PdiskError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_drains_and_flushes_all_disks() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("syncbar");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let block = blk(&[1, 2, 3], Forecast::Next(9));
        // Queue split-phase writes, then sync WITHOUT completing the
        // tickets: the barrier must drain the worker queues, so the
        // data is fully on disk afterwards.
        let o0 = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let t = a
            .submit_write(vec![
                (BlockAddr::new(DiskId(0), o0), block.clone()),
                (BlockAddr::new(DiskId(1), o1), block.clone()),
            ])
            .unwrap();
        a.sync().unwrap();
        let len = std::fs::metadata(dir.join("disk_0000.bin")).unwrap().len();
        assert_eq!(len, a.slot_bytes() as u64, "write drained by the barrier");
        a.complete_write(t).unwrap();
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_refuses_torn_tail_without_a_verified_anchor() {
        // A lone partial slot has no preceding whole slot to verify
        // against; recovery must refuse rather than guess.
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("torn-anchor");
        {
            let _a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        }
        std::fs::write(dir.join("disk_0000.bin"), vec![0xAA; 10]).unwrap();
        let err = match FileDiskArray::<U64Record>::open(g, &dir) {
            Ok(_) => panic!("unanchored torn tail must be refused"),
            Err(e) => e,
        };
        assert!(matches!(err, PdiskError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_mismatched_geometry() {
        let g = Geometry::new(2, 4, 1000).unwrap();
        let dir = tmpdir("badgeom");
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[1], Forecast::Next(0)))])
                .unwrap();
        }
        // A different B changes the slot size; the file length no longer
        // divides evenly and the reopen is refused.
        let wrong = Geometry::new(2, 5, 1000).unwrap();
        let err = match FileDiskArray::<U64Record>::open(wrong, &dir) {
            Ok(_) => panic!("reopen with wrong geometry must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, PdiskError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_open_same_dir_is_refused() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("doubleopen");
        let a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        // A second handle on the same directory — via create *or* open —
        // must fail while the first is alive: two handles would hand out
        // overlapping slots and silently interleave writes.
        let err = match FileDiskArray::<U64Record>::create(g, &dir) {
            Ok(_) => panic!("second create on a held directory must fail"),
            Err(e) => e,
        };
        assert!(
            matches!(err, PdiskError::ArrayLocked { holder, .. } if holder == std::process::id()),
            "got {err:?}"
        );
        let err = match FileDiskArray::<U64Record>::open(g, &dir) {
            Ok(_) => panic!("second open on a held directory must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, PdiskError::ArrayLocked { .. }), "got {err:?}");
        // Dropping the first handle releases the claim.
        drop(a);
        let b: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        drop(b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("stalelock");
        {
            let _a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        }
        // Fake a crash: a lock file naming a PID that cannot be alive.
        std::fs::write(dir.join(super::LOCK_FILE), "4294967294\n").unwrap();
        let a = FileDiskArray::<U64Record>::open(g, &dir);
        assert!(a.is_ok(), "stale lock must be reclaimed: {:?}", a.err());
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_ops_emit_physical_events() {
        use crate::trace::TracingDiskArray;
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("trace");
        let inner: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let mut a = TracingDiskArray::new(inner);
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[1], Forecast::Next(0)))])
            .unwrap();
        a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        let t = a.take_trace();
        assert!(t.iter().any(|e| matches!(e.event, TraceEvent::PhysWrite { .. })));
        assert!(t.iter().any(|e| matches!(e.event, TraceEvent::PhysRead { .. })));
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetch_serves_demand_reads_without_charging_ops() {
        let g = Geometry::new(2, 4, 1000).unwrap();
        let dir = tmpdir("prefetch");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o0 = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let b0 = blk(&[1, 2], Forecast::Next(9));
        let b1 = blk(&[3, 4], Forecast::Next(9));
        a.write(vec![(BlockAddr::new(DiskId(0), o0), b0.clone())]).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o0 + 1), b1.clone())]).unwrap();
        let ops_before = a.stats().read_ops;
        // Hints charge nothing; unmapped and duplicate hints are skipped.
        a.prefetch(&[
            BlockAddr::new(DiskId(0), o0),
            BlockAddr::new(DiskId(0), o0),
            BlockAddr::new(DiskId(0), 999),
            BlockAddr::new(DiskId(1), 0),
        ]);
        assert_eq!(a.stats().read_ops, ops_before);
        assert_eq!(a.prefetch_stats().issued, 1);
        // The demand read is served from the prefetch, data intact, and
        // the op is charged exactly as an uncached read would be.
        let got = a.read(&[BlockAddr::new(DiskId(0), o0)]).unwrap();
        assert_eq!(got[0], b0);
        assert_eq!(a.stats().read_ops, ops_before + 1);
        assert_eq!(a.prefetch_stats().hits, 1);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefetch_is_invalidated_by_an_overwrite() {
        let g = Geometry::new(2, 4, 1000).unwrap();
        let dir = tmpdir("prefetch-inval");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let addr = BlockAddr::new(DiskId(0), o);
        a.write(vec![(addr, blk(&[1], Forecast::Next(0)))]).unwrap();
        a.prefetch(&[addr]);
        // Overwrite the slot while the prefetch is (logically) in
        // flight: the cached receiver must be discarded, and the demand
        // read must observe the new content.
        let newer = blk(&[42], Forecast::Next(0));
        a.write(vec![(addr, newer.clone())]).unwrap();
        assert_eq!(a.prefetch_stats().invalidated, 1);
        assert_eq!(a.read(&[addr]).unwrap()[0], newer);
        assert_eq!(a.prefetch_stats().hits, 0);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trusted_reads_skip_rehash_but_first_contact_still_verifies() {
        let g = Geometry::new(2, 4, 1000).unwrap();
        let dir = tmpdir("trusted");
        let block = blk(&[10, 20], Forecast::Next(0));
        let (addr, corrupt_addr);
        {
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
            let o = a.alloc_contiguous(DiskId(0), 3).unwrap();
            addr = BlockAddr::new(DiskId(0), o);
            corrupt_addr = BlockAddr::new(DiskId(0), o + 1);
            a.write(vec![(addr, block.clone())]).unwrap();
            a.write(vec![(corrupt_addr, block.clone())]).unwrap();
            // A clean trailing slot so the corrupt one is not mistaken
            // for a torn tail and truncated by the reopen recovery.
            a.write(vec![(BlockAddr::new(DiskId(0), o + 2), block.clone())]).unwrap();
        }
        // Corrupt the middle slot on disk, then reopen with trust on:
        // this process has verified nothing yet, so the first read of
        // the corrupt slot must still fail.
        let path = dir.join("disk_0000.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let slot = bytes.len() / 3;
        bytes[slot + CHECKSUM_BYTES + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut a: FileDiskArray<U64Record> = FileDiskArray::open(g, &dir).unwrap();
        a.set_trusted_reads(true);
        assert!(matches!(a.read(&[corrupt_addr]), Err(PdiskError::Corrupt(_))));
        // The clean slot verifies once, then re-reads elide the hash and
        // still return identical bytes.
        assert_eq!(a.read(&[addr]).unwrap()[0], block);
        assert_eq!(a.read(&[addr]).unwrap()[0], block);
        // Toggling trust off restores full verification.
        a.set_trusted_reads(false);
        assert_eq!(a.read(&[addr]).unwrap()[0], block);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_blocks_across_disks_stress() {
        let g = Geometry::new(4, 16, 10_000).unwrap();
        let dir = tmpdir("stress");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let mut addrs = Vec::new();
        for d in 0..4u32 {
            let o = a.alloc_contiguous(DiskId(d), 8).unwrap();
            for i in 0..8 {
                addrs.push(BlockAddr::new(DiskId(d), o + i));
            }
        }
        // Write stripes of 4 (one block per disk per op).
        for stripe in 0..8u64 {
            let writes: Vec<_> = (0..4u32)
                .map(|d| {
                    let keys: Vec<u64> = (0..16).map(|j| stripe * 1000 + d as u64 * 100 + j).collect();
                    (
                        BlockAddr::new(DiskId(d), stripe),
                        blk(&keys, Forecast::Next(NO_BLOCK)),
                    )
                })
                .collect();
            a.write(writes).unwrap();
        }
        assert_eq!(a.stats().write_ops, 8);
        assert_eq!(a.stats().blocks_written, 32);
        // Read back a full stripe and check contents.
        let got = a
            .read(&[
                BlockAddr::new(DiskId(0), 5),
                BlockAddr::new(DiskId(1), 5),
                BlockAddr::new(DiskId(2), 5),
                BlockAddr::new(DiskId(3), 5),
            ])
            .unwrap();
        for (d, b) in got.iter().enumerate() {
            assert_eq!(b.min_key(), 5000 + d as u64 * 100);
        }
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
