//! Real-file disk array.
//!
//! Each simulated disk is one file; the per-disk transfers of a parallel
//! I/O operation execute concurrently on dedicated worker threads (one per
//! disk, owning that disk's file handle), so a `D`-wide operation issues `D`
//! positioned reads/writes in parallel exactly as the model intends.
//!
//! On-disk format: fixed-size block slots.  Each slot is
//!
//! ```text
//! [u32 record-count][u32 forecast-kind][8 * max(D,1) bytes forecast keys]
//! [B * ENCODED_LEN bytes records]
//! ```
//!
//! `forecast-kind` is 0 for [`Forecast::Next`] (one key used) and 1 for
//! [`Forecast::Initial`] (`D` keys used).  Unused key slots hold
//! [`crate::block::NO_BLOCK`].

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crossbeam::channel::{bounded, unbounded, Sender};

use crate::addr::{BlockAddr, DiskId};
use crate::backend::DiskArray;
use crate::block::{Block, Forecast, NO_BLOCK};
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;

enum Job {
    Read {
        offset: u64,
        len: usize,
        reply: Sender<io::Result<Vec<u8>>>,
    },
    Write {
        offset: u64,
        bytes: Vec<u8>,
        reply: Sender<io::Result<()>>,
    },
}

struct Worker {
    tx: Sender<Job>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A disk array backed by one file per disk, with per-disk I/O threads.
pub struct FileDiskArray<R: Record> {
    geom: Geometry,
    dir: PathBuf,
    workers: Vec<Worker>,
    next_free: Vec<u64>,
    stats: IoStats,
    slot_bytes: usize,
    forecast_keys: usize,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> FileDiskArray<R> {
    /// Create (or truncate) `D` disk files under `dir` and start the worker
    /// threads.
    pub fn create(geom: Geometry, dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let forecast_keys = geom.d.max(1);
        let slot_bytes = 8 + 8 * forecast_keys + geom.b * R::ENCODED_LEN;
        let mut workers = Vec::with_capacity(geom.d);
        for d in 0..geom.d {
            let path = dir.join(format!("disk_{d:04}.bin"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            workers.push(Self::spawn_worker(d, file));
        }
        Ok(FileDiskArray {
            geom,
            dir,
            workers,
            next_free: vec![0; geom.d],
            stats: IoStats::default(),
            slot_bytes,
            forecast_keys,
            _marker: std::marker::PhantomData,
        })
    }

    fn spawn_worker(idx: usize, file: File) -> Worker {
        let (tx, rx) = unbounded::<Job>();
        let handle = std::thread::Builder::new()
            .name(format!("pdisk-io-{idx}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Read { offset, len, reply } => {
                            let mut buf = vec![0u8; len];
                            let res = file.read_exact_at(&mut buf, offset).map(|()| buf);
                            let _ = reply.send(res);
                        }
                        Job::Write { offset, bytes, reply } => {
                            let res = file.write_all_at(&bytes, offset);
                            let _ = reply.send(res);
                        }
                    }
                }
            })
            .expect("spawn disk worker");
        Worker {
            tx,
            handle: Some(handle),
        }
    }

    /// Directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes a block slot occupies on disk.
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    fn encode_block(&self, block: &Block<R>) -> Result<Vec<u8>> {
        if block.len() > self.geom.b {
            return Err(PdiskError::BadBlockSize {
                expected: self.geom.b,
                got: block.len(),
            });
        }
        let mut out = vec![0u8; self.slot_bytes];
        out[..4].copy_from_slice(&(block.len() as u32).to_le_bytes());
        let (kind, keys): (u32, &[u64]) = match &block.forecast {
            Forecast::Next(k) => (0, std::slice::from_ref(k)),
            Forecast::Initial(ks) => (1, ks.as_slice()),
        };
        if keys.len() > self.forecast_keys {
            return Err(PdiskError::Corrupt(format!(
                "forecast table of {} keys exceeds reserved {}",
                keys.len(),
                self.forecast_keys
            )));
        }
        out[4..8].copy_from_slice(&kind.to_le_bytes());
        let mut off = 8;
        for i in 0..self.forecast_keys {
            let k = keys.get(i).copied().unwrap_or(NO_BLOCK);
            out[off..off + 8].copy_from_slice(&k.to_le_bytes());
            off += 8;
        }
        for rec in &block.records {
            rec.encode(&mut out[off..off + R::ENCODED_LEN]);
            off += R::ENCODED_LEN;
        }
        Ok(out)
    }

    fn decode_block(&self, bytes: &[u8]) -> Result<Block<R>> {
        if bytes.len() != self.slot_bytes {
            return Err(PdiskError::Corrupt(format!(
                "slot of {} bytes, expected {}",
                bytes.len(),
                self.slot_bytes
            )));
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        if n > self.geom.b {
            return Err(PdiskError::Corrupt(format!(
                "record count {n} exceeds block size {}",
                self.geom.b
            )));
        }
        let kind = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let mut off = 8;
        let mut keys = Vec::with_capacity(self.forecast_keys);
        for _ in 0..self.forecast_keys {
            keys.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        let forecast = match kind {
            0 => Forecast::Next(keys[0]),
            1 => Forecast::Initial(keys),
            k => return Err(PdiskError::Corrupt(format!("unknown forecast kind {k}"))),
        };
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(R::decode(&bytes[off..off + R::ENCODED_LEN]));
            off += R::ENCODED_LEN;
        }
        Ok(Block { records, forecast })
    }
}

impl<R: Record> Drop for FileDiskArray<R> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Dropping the sender closes the channel; recv errors end the loop.
            let (dummy_tx, _) = unbounded();
            let tx = std::mem::replace(&mut w.tx, dummy_tx);
            drop(tx);
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl<R: Record> DiskArray<R> for FileDiskArray<R> {
    fn geometry(&self) -> Geometry {
        self.geom
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        self.geom.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        // Fan out: one positioned read per disk, executed concurrently by
        // the per-disk workers.
        let mut replies = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            if addr.offset >= self.next_free[addr.disk.index()] {
                return Err(PdiskError::UnmappedBlock(addr));
            }
            let (tx, rx) = bounded(1);
            self.workers[addr.disk.index()]
                .tx
                .send(Job::Read {
                    offset: addr.offset * self.slot_bytes as u64,
                    len: self.slot_bytes,
                    reply: tx,
                })
                .expect("disk worker alive");
            replies.push(rx);
        }
        let mut out = Vec::with_capacity(addrs.len());
        for rx in replies {
            let bytes = rx.recv().expect("disk worker reply")?;
            out.push(self.decode_block(&bytes)?);
        }
        self.stats.record_read(addrs.len());
        Ok(out)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        self.geom
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let n = writes.len();
        let mut replies = Vec::with_capacity(n);
        for (addr, block) in &writes {
            if addr.offset >= self.next_free[addr.disk.index()] {
                return Err(PdiskError::UnmappedBlock(*addr));
            }
            let bytes = self.encode_block(block)?;
            let (tx, rx) = bounded(1);
            self.workers[addr.disk.index()]
                .tx
                .send(Job::Write {
                    offset: addr.offset * self.slot_bytes as u64,
                    bytes,
                    reply: tx,
                })
                .expect("disk worker alive");
            replies.push(rx);
        }
        for rx in replies {
            rx.recv().expect("disk worker reply")?;
        }
        self.stats.record_write(n);
        Ok(())
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let slot = self
            .next_free
            .get_mut(disk.index())
            .ok_or(PdiskError::NoSuchDisk(disk))?;
        let start = *slot;
        *slot += count;
        Ok(start)
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{KeyPayloadRecord, U64Record};

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("pdisk-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn blk(keys: &[u64], forecast: Forecast) -> Block<U64Record> {
        Block::new(keys.iter().map(|&k| U64Record(k)).collect(), forecast)
    }

    #[test]
    fn roundtrip_including_forecast_variants() {
        let g = Geometry::new(3, 4, 1000).unwrap();
        let dir = tmpdir("roundtrip");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o0 = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let initial = blk(&[1, 5, 9], Forecast::Initial(vec![1, 20, NO_BLOCK]));
        let next = blk(&[20, 21, 22, 23], Forecast::Next(40));
        a.write(vec![
            (BlockAddr::new(DiskId(0), o0), initial.clone()),
            (BlockAddr::new(DiskId(1), o1), next.clone()),
        ])
        .unwrap();
        let got = a
            .read(&[BlockAddr::new(DiskId(0), o0), BlockAddr::new(DiskId(1), o1)])
            .unwrap();
        assert_eq!(got[0], initial);
        assert_eq!(got[1], next);
        assert_eq!(a.stats().read_ops, 1);
        assert_eq!(a.stats().blocks_read, 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_records_survive_disk() {
        let g = Geometry::new(2, 3, 1000).unwrap();
        let dir = tmpdir("payload");
        let mut a: FileDiskArray<KeyPayloadRecord<24>> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let recs: Vec<_> = (0..3)
            .map(|k| KeyPayloadRecord::<24>::with_derived_payload(k * 7))
            .collect();
        let block = Block::new(recs.clone(), Forecast::Next(99));
        a.write(vec![(BlockAddr::new(DiskId(1), o), block)]).unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(1), o)]).unwrap();
        assert_eq!(got[0].records, recs);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_block_preserves_record_count() {
        let g = Geometry::new(2, 8, 1000).unwrap();
        let dir = tmpdir("partial");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[3, 4], Forecast::Next(NO_BLOCK)))])
            .unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        assert_eq!(got[0].len(), 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unallocated_read_and_write_fail() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("unalloc");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        assert!(matches!(
            a.read(&[BlockAddr::new(DiskId(0), 0)]),
            Err(PdiskError::UnmappedBlock(_))
        ));
        assert!(matches!(
            a.write(vec![(BlockAddr::new(DiskId(0), 0), blk(&[1], Forecast::Next(0)))]),
            Err(PdiskError::UnmappedBlock(_))
        ));
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_disk_rejected_before_any_io() {
        let g = Geometry::new(2, 2, 1000).unwrap();
        let dir = tmpdir("dup");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let o = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let err = a
            .read(&[BlockAddr::new(DiskId(0), o), BlockAddr::new(DiskId(0), o + 1)])
            .unwrap_err();
        assert!(matches!(err, PdiskError::DuplicateDisk(_)));
        assert_eq!(a.stats().read_ops, 0);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_blocks_across_disks_stress() {
        let g = Geometry::new(4, 16, 10_000).unwrap();
        let dir = tmpdir("stress");
        let mut a: FileDiskArray<U64Record> = FileDiskArray::create(g, &dir).unwrap();
        let mut addrs = Vec::new();
        for d in 0..4u32 {
            let o = a.alloc_contiguous(DiskId(d), 8).unwrap();
            for i in 0..8 {
                addrs.push(BlockAddr::new(DiskId(d), o + i));
            }
        }
        // Write stripes of 4 (one block per disk per op).
        for stripe in 0..8u64 {
            let writes: Vec<_> = (0..4u32)
                .map(|d| {
                    let keys: Vec<u64> = (0..16).map(|j| stripe * 1000 + d as u64 * 100 + j).collect();
                    (
                        BlockAddr::new(DiskId(d), stripe),
                        blk(&keys, Forecast::Next(NO_BLOCK)),
                    )
                })
                .collect();
            a.write(writes).unwrap();
        }
        assert_eq!(a.stats().write_ops, 8);
        assert_eq!(a.stats().blocks_written, 32);
        // Read back a full stripe and check contents.
        let got = a
            .read(&[
                BlockAddr::new(DiskId(0), 5),
                BlockAddr::new(DiskId(1), 5),
                BlockAddr::new(DiskId(2), 5),
                BlockAddr::new(DiskId(3), 5),
            ])
            .unwrap();
        for (d, b) in got.iter().enumerate() {
            assert_eq!(b.min_key(), 5000 + d as u64 * 100);
        }
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
