//! Runtime lock-order witness: the dynamic half of `srmlint`'s lock
//! pass.
//!
//! Every direct `Mutex`/`RwLock` acquisition in the concurrent crates
//! wraps its guard in [`guard`] with the **node id** the static
//! analyzer computes for that lock (e.g. `"pdisk::pool::BufferPool.inner"`);
//! `srmlint`'s `witness` rule rejects any acquisition site that does
//! not.  The wrapper is always compiled and is a zero-cost
//! `Deref`/`DerefMut` shell unless the `lock-witness` cargo feature is
//! enabled.
//!
//! With the feature on, each thread keeps a held-label stack and
//! appends two kinds of records to the file named by the
//! `SRM_LOCK_WITNESS` environment variable (one line per record,
//! deduplicated per thread):
//!
//! ```text
//! lock\t<label>                 a lock that was acquired at least once
//! order\t<held>\t<acquired>     <acquired> taken while <held> was held
//! ```
//!
//! `srmlint --verify-witness <log>` then cross-checks: every observed
//! label must be a known static node and every observed order must be
//! a static may-hold edge, so the analyzer's graph provably explains
//! the orders the test suites actually executed.
//!
//! The module deliberately takes **no lock of its own**: the held
//! stack and dedup set are thread-local, and records are written with
//! a per-record `O_APPEND` open (appends of short lines are atomic on
//! every platform we run on; the reader deduplicates anyway).

use std::ops::{Deref, DerefMut};

/// A lock guard tagged with its static node id.  Transparent via
/// `Deref`/`DerefMut`; releases the witness stack entry on drop.
#[derive(Debug)]
pub struct Witnessed<G> {
    guard: G,
    #[cfg(feature = "lock-witness")]
    label: &'static str,
}

/// Wrap a freshly-acquired guard, recording the acquisition (and its
/// order against every lock this thread already holds) when the
/// `lock-witness` feature is enabled.
///
/// `label` must be the node id `srmlint` assigns the lock — the
/// `witness` lint rule checks the literal at the acquisition site.
pub fn guard<G>(label: &'static str, guard: G) -> Witnessed<G> {
    #[cfg(feature = "lock-witness")]
    rec::acquire(label);
    #[cfg(not(feature = "lock-witness"))]
    let _ = label;
    Witnessed {
        guard,
        #[cfg(feature = "lock-witness")]
        label,
    }
}

impl<G> Deref for Witnessed<G> {
    type Target = G;
    fn deref(&self) -> &G {
        &self.guard
    }
}

impl<G> DerefMut for Witnessed<G> {
    fn deref_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

impl<G> Drop for Witnessed<G> {
    fn drop(&mut self) {
        #[cfg(feature = "lock-witness")]
        rec::release(self.label);
    }
}

#[cfg(feature = "lock-witness")]
mod rec {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::io::Write;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    /// Log path, read from `SRM_LOCK_WITNESS` once per process.
    static PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

    fn path() -> Option<&'static PathBuf> {
        PATH.get_or_init(|| std::env::var_os("SRM_LOCK_WITNESS").map(PathBuf::from))
            .as_ref()
    }

    thread_local! {
        /// Labels of locks this thread currently holds, in order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        /// Records already written by this thread: `("", l)` for a
        /// `lock` record, `(held, l)` for an `order` record.
        static SEEN: RefCell<BTreeSet<(&'static str, &'static str)>> =
            const { RefCell::new(BTreeSet::new()) };
    }

    /// One record = one `write_all` of one line to an `O_APPEND` fd, so
    /// concurrent writers cannot interleave mid-line.
    fn append(line: &str) {
        let Some(p) = path() else { return };
        let opened = std::fs::OpenOptions::new().append(true).create(true).open(p);
        if let Ok(mut f) = opened {
            let mut rec = String::with_capacity(line.len() + 1);
            rec.push_str(line);
            rec.push('\n');
            let _ = f.write_all(rec.as_bytes());
        }
    }

    pub(super) fn acquire(label: &'static str) {
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        SEEN.with(|s| {
            let mut s = s.borrow_mut();
            if s.insert(("", label)) {
                append(&format!("lock\t{label}"));
            }
            for prev in held {
                if s.insert((prev, label)) {
                    append(&format!("order\t{prev}\t{label}"));
                }
            }
        });
        HELD.with(|h| h.borrow_mut().push(label));
    }

    /// Remove the **last** occurrence of `label` (reentrant wrappers of
    /// distinct locks unwind in LIFO order; same-label nesting cannot
    /// happen with std's non-reentrant `Mutex`).
    pub(super) fn release(label: &'static str) {
        HELD.with(|h| {
            let mut v = h.borrow_mut();
            if let Some(pos) = v.iter().rposition(|l| *l == label) {
                v.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witnessed_is_transparent() {
        let m = std::sync::Mutex::new(vec![1, 2, 3]);
        let mut g = guard("test::node", m.lock().unwrap_or_else(|p| p.into_inner()));
        g.push(4);
        assert_eq!(g.len(), 4);
        drop(g);
        assert_eq!(m.lock().unwrap_or_else(|p| p.into_inner()).len(), 4);
    }

    #[cfg(feature = "lock-witness")]
    #[test]
    fn release_pops_last_occurrence() {
        let a = std::sync::Mutex::new(0u8);
        let b = std::sync::Mutex::new(0u8);
        // Nested acquisition: drop in reverse order must leave a clean
        // stack (no panic, no stale entries affecting later orders).
        let ga = guard("test::a", a.lock().unwrap_or_else(|p| p.into_inner()));
        let gb = guard("test::b", b.lock().unwrap_or_else(|p| p.into_inner()));
        drop(gb);
        drop(ga);
    }
}
