//! RAID-5-style rotating parity over any [`DiskArray`].
//!
//! [`ParityDiskArray`] groups the blocks at one physical offset across
//! all `D` disks into a *stripe*.  Each stripe reserves the slot on disk
//! `s mod D` for parity (the XOR of the stripe's data frames), rotating
//! the parity disk per stripe index so no disk becomes a write
//! bottleneck.  Callers keep addressing a plain `D`-disk array: the
//! wrapper remaps each disk's logical slots past that disk's reserved
//! parity slots, so the *operation structure* — which disks a parallel
//! op touches, and how many ops a sort issues — is identical to the
//! unprotected array.  The price is capacity, `D/(D-1)`, not extra
//! parallel I/Os on the healthy path.
//!
//! When a disk suffers a [`FaultKind::Permanent`] fault (or is killed
//! administratively via [`ParityDiskArray::fail_disk`]), the wrapper
//! enters *degraded mode*: reads addressed to the dead disk are served
//! by XOR-reconstructing the block from the stripe's surviving members
//! (one extra parallel read), and writes destined for it exist only
//! through the parity update.  Both are counted separately in
//! [`IoStats`] (`reconstructed_reads` / `parity_writes`) so the logical
//! schedule stays comparable to a failure-free run.  A second
//! simultaneous death is [`PdiskError::Unrecoverable`].
//!
//! [`ParityDiskArray::rebuild`] re-materializes a dead disk onto an
//! attached spare while the array stays usable, and
//! [`ParityDiskArray::set_hedging`] lets a *straggler* disk (per
//! [`ArrayTiming`]) be bypassed: once it is a configured latency
//! multiple slower than the fastest disk, its reads use the
//! reconstruction path instead of waiting (`hedged_reads`).
//!
//! Parity frames live in the wrapper (write-back, at the reserved slot's
//! identity), optionally persisted write-through to a sidecar file via
//! [`ParityDiskArray::with_store`] so a checkpointed sort can resume
//! against a degraded array.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, RedundancyInfo, ScrubOutcome};
use crate::block::{Block, Forecast, NO_BLOCK};
use crate::crash::CrashClock;
use crate::error::{FaultKind, PdiskError, Result};
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;
use crate::timing::ArrayTiming;
use crate::trace::{TraceEvent, TraceSink};

/// Physical offset of logical slot `lo` on disk `d` in a `dd`-disk
/// array: every group of `dd` physical slots donates the one at
/// `offset ≡ d (mod dd)` to parity, so data slots skip it.
fn phys_of(d: usize, lo: u64, dd: u64) -> u64 {
    let k = lo / (dd - 1);
    let r = lo % (dd - 1);
    k * dd + r + u64::from(r >= d as u64)
}

/// Logical slot stored at physical offset `po` on disk `d`, or `None`
/// if `po` is the disk's reserved parity slot for stripe `po`.
fn logical_of(d: usize, po: u64, dd: u64) -> Option<u64> {
    let k = po / dd;
    let r_phys = po % dd;
    if r_phys == d as u64 {
        return None;
    }
    let r = if r_phys > d as u64 { r_phys - 1 } else { r_phys };
    Some(k * (dd - 1) + r)
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (a, b) in dst.iter_mut().zip(src) {
        *a ^= b;
    }
}

/// First 8 bytes of `bytes` as a little-endian `u64`.  All callers pass
/// buffers sized by this module, so the length is guaranteed.
fn le_u64(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// First 4 bytes of `bytes` as a little-endian `u32`.
fn le_u32(bytes: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(b)
}

/// FNV-1a, 64-bit, for the sidecar store's slot checksums.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mask bit marking a stripe whose parity died with its disk.
const PARITY_LOST_BIT: u64 = 1 << 63;

/// One stripe's redundancy state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Stripe {
    /// XOR of every written data frame in the stripe.
    parity: Vec<u8>,
    /// Bit `d` set ⇒ disk `d`'s data slot in this stripe holds a block.
    written: u64,
    /// The stripe's parity disk died; the stripe is unprotected until a
    /// rebuild recomputes it.
    parity_lost: bool,
}

impl Stripe {
    fn empty(frame_len: usize, parity_lost: bool) -> Self {
        Stripe {
            parity: vec![0u8; frame_len],
            written: 0,
            parity_lost,
        }
    }
}

/// Write-through persistence for stripe state: one fixed slot per
/// stripe index, `[u64 checksum][u64 mask][parity frame]`.  All-zero
/// slots are holes (stripe never touched).
struct ParityStore {
    file: File,
    slot_len: usize,
}

impl std::fmt::Debug for ParityStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParityStore").field("slot_len", &self.slot_len).finish()
    }
}

impl ParityStore {
    fn open(path: &Path, frame_len: usize) -> Result<(Self, BTreeMap<u64, Stripe>)> {
        let slot_len = 8 + 8 + frame_len;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % slot_len as u64 != 0 {
            return Err(PdiskError::Corrupt(format!(
                "parity store {} is {len} bytes, not a multiple of the \
                 {slot_len}-byte stripe slot (wrong geometry or record type?)",
                path.display()
            )));
        }
        let mut stripes = BTreeMap::new();
        let mut buf = vec![0u8; slot_len];
        for s in 0..len / slot_len as u64 {
            file.read_exact_at(&mut buf, s * slot_len as u64)?;
            if buf.iter().all(|&b| b == 0) {
                continue; // hole: stripe never touched
            }
            let stored = le_u64(&buf[..8]);
            if stored != fnv1a64(&buf[8..]) {
                return Err(PdiskError::Corrupt(format!(
                    "parity store slot {s} fails its checksum"
                )));
            }
            let mask = le_u64(&buf[8..16]);
            stripes.insert(
                s,
                Stripe {
                    parity: buf[16..].to_vec(),
                    written: mask & !PARITY_LOST_BIT,
                    parity_lost: mask & PARITY_LOST_BIT != 0,
                },
            );
        }
        Ok((ParityStore { file, slot_len }, stripes))
    }

    fn save(&self, s: u64, stripe: &Stripe) -> Result<()> {
        let mut buf = vec![0u8; self.slot_len];
        let mask = stripe.written | if stripe.parity_lost { PARITY_LOST_BIT } else { 0 };
        buf[8..16].copy_from_slice(&mask.to_le_bytes());
        buf[16..].copy_from_slice(&stripe.parity);
        let checksum = fnv1a64(&buf[8..]);
        buf[..8].copy_from_slice(&checksum.to_le_bytes());
        self.file.write_all_at(&buf, s * self.slot_len as u64)?;
        Ok(())
    }
}

/// A [`DiskArray`] with single-disk-failure tolerance via rotating
/// parity.  See the module docs for the layout and degraded-mode
/// semantics.  Stack order matters: place this *above* the fault
/// injection layer (so it observes permanent faults) and *below*
/// [`crate::RetryingDiskArray`] (so transient faults still retry).
#[derive(Debug)]
pub struct ParityDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    geom: Geometry,
    forecast_keys: usize,
    frame_len: usize,
    /// Per-disk logical allocation watermark (what callers see).
    logical_free: Vec<u64>,
    /// Per-disk physical extent the logical watermark maps into.
    phys_free: Vec<u64>,
    /// Per-disk physical extent actually allocated from `inner` (lags
    /// `phys_free` while a disk is dead; re-synced by rebuild).
    inner_free: Vec<u64>,
    stripes: BTreeMap<u64, Stripe>,
    dead: BTreeSet<DiskId>,
    hedge: Option<(ArrayTiming, f64)>,
    reconstructed_reads: u64,
    parity_writes: u64,
    hedged_reads: u64,
    store: Option<ParityStore>,
    crash: Option<CrashClock>,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> ParityDiskArray<R, A> {
    /// Wrap `inner`.  Rotating parity needs at least two disks (with
    /// one, losing it loses everything and no parity can help).
    pub fn new(inner: A) -> Result<Self> {
        let geom = inner.geometry();
        if geom.d < 2 {
            return Err(PdiskError::BadGeometry(
                "rotating parity needs at least 2 disks".into(),
            ));
        }
        let forecast_keys = geom.d.max(1);
        let frame_len = 8 + 8 * forecast_keys + geom.b * R::ENCODED_LEN;
        Ok(ParityDiskArray {
            inner,
            geom,
            forecast_keys,
            frame_len,
            logical_free: vec![0; geom.d],
            phys_free: vec![0; geom.d],
            inner_free: vec![0; geom.d],
            stripes: BTreeMap::new(),
            dead: BTreeSet::new(),
            hedge: None,
            reconstructed_reads: 0,
            parity_writes: 0,
            hedged_reads: 0,
            store: None,
            crash: None,
            _marker: std::marker::PhantomData,
        })
    }

    /// Attach (or reopen) a sidecar parity store at `path`.  Existing
    /// stripe state is loaded and the allocator watermarks recovered
    /// from the written-block masks, which is what lets a checkpointed
    /// sort resume against a reopened, possibly degraded array.
    pub fn with_store(mut self, path: impl AsRef<Path>) -> Result<Self> {
        let (store, stripes) = ParityStore::open(path.as_ref(), self.frame_len)?;
        for (s, stripe) in &stripes {
            if stripe.parity.len() != self.frame_len {
                return Err(PdiskError::Corrupt(format!(
                    "parity store stripe {s} has a {}-byte frame, expected {}",
                    stripe.parity.len(),
                    self.frame_len
                )));
            }
            let dd = self.geom.d as u64;
            for d in 0..self.geom.d {
                if stripe.written & (1 << d) != 0 {
                    let lo = logical_of(d, *s, dd).ok_or_else(|| {
                        PdiskError::Corrupt(format!(
                            "parity store stripe {s} claims data on its parity disk {d}"
                        ))
                    })?;
                    self.logical_free[d] = self.logical_free[d].max(lo + 1);
                    self.inner_free[d] = self.inner_free[d].max(s + 1);
                }
            }
        }
        for d in 0..self.geom.d {
            if self.logical_free[d] > 0 {
                self.phys_free[d] = phys_of(d, self.logical_free[d] - 1, self.geom.d as u64) + 1;
            }
        }
        self.stripes = stripes;
        self.store = Some(store);
        Ok(self)
    }

    /// Share `clock` with a [`crate::CrashingDiskArray`] sitting above
    /// this stack: the parity-commit section of every write then gets
    /// its own numbered crash boundaries (`parity-update` /
    /// `parity-updated`), so a crash-matrix sweep covers the window
    /// where data frames are durable but the parity sidecar is not.
    pub fn set_crash_clock(&mut self, clock: CrashClock) {
        self.crash = Some(clock);
    }

    fn crash_tick(&self, label: &'static str) -> Result<()> {
        match &self.crash {
            Some(c) => c.tick(label),
            None => Ok(()),
        }
    }

    /// Enable straggler hedging: a read addressed to a disk that
    /// `timing` reports at least `after ×` slower than the array's
    /// fastest disk is served by parity reconstruction instead of
    /// waiting on the slow disk, whenever the stripe permits it.
    pub fn set_hedging(&mut self, timing: ArrayTiming, after: f64) {
        assert!(after > 0.0, "hedge threshold must be positive");
        self.hedge = Some((timing, after));
    }

    /// The wrapped array.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped array (e.g. the fault layer, to
    /// attach a spare before [`Self::rebuild`]).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The physical slot (on the wrapped array) backing a logical
    /// address, after the rotating-parity layout shift.  For tooling
    /// and tests that need to reach below the parity layer — e.g. to
    /// inject latent corruption a scrub should then heal.
    pub fn physical_addr(&self, addr: BlockAddr) -> BlockAddr {
        BlockAddr::new(
            addr.disk,
            phys_of(addr.disk.index(), addr.offset, self.geom.d as u64),
        )
    }

    /// Disks currently served by reconstruction.
    pub fn dead_disks(&self) -> impl Iterator<Item = DiskId> + '_ {
        self.dead.iter().copied()
    }

    /// Administratively kill `disk` (models a head crash discovered out
    /// of band; the CLI's `--kill-disk` lands here).  Idempotent for an
    /// already-dead disk; a *second* distinct death is
    /// [`PdiskError::Unrecoverable`].
    pub fn fail_disk(&mut self, disk: DiskId) -> Result<()> {
        if disk.index() >= self.geom.d {
            return Err(PdiskError::NoSuchDisk(disk));
        }
        self.mark_dead(disk)
    }

    fn mark_dead(&mut self, disk: DiskId) -> Result<()> {
        if self.dead.contains(&disk) {
            return Ok(());
        }
        if let Some(&other) = self.dead.iter().next() {
            return Err(PdiskError::Unrecoverable(format!(
                "disk {} died while disk {} is already dead; rotating parity \
                 tolerates one failure at a time",
                disk.0, other.0
            )));
        }
        self.dead.insert(disk);
        if let Some(sink) = self.inner.trace_sink() {
            sink.emit(TraceEvent::DiskDeath { disk });
        }
        // Parity stored on the dead disk is gone with it.
        let dd = self.geom.d as u64;
        let lost: Vec<u64> = self
            .stripes
            .iter()
            .filter(|(s, st)| **s % dd == disk.0 as u64 && !st.parity_lost)
            .map(|(s, _)| *s)
            .collect();
        for s in lost {
            if let Some(st) = self.stripes.get_mut(&s) {
                st.parity_lost = true;
            }
            self.save_stripe(s)?;
        }
        Ok(())
    }

    fn save_stripe(&self, s: u64) -> Result<()> {
        if let Some(store) = &self.store {
            if let Some(st) = self.stripes.get(&s) {
                store.save(s, st)?;
            }
        }
        Ok(())
    }

    /// Frame encoding mirrors [`crate::FileDiskArray`]'s slot payload
    /// (record count, forecast kind + keys, record bytes) so parity XOR
    /// is defined over a fixed-length, total representation.
    fn encode_frame(&self, block: &Block<R>) -> Result<Vec<u8>> {
        if block.len() > self.geom.b {
            return Err(PdiskError::BadBlockSize {
                expected: self.geom.b,
                got: block.len(),
            });
        }
        let mut out = vec![0u8; self.frame_len];
        out[..4].copy_from_slice(&(block.len() as u32).to_le_bytes());
        let (kind, keys): (u32, &[u64]) = match &block.forecast {
            Forecast::Next(k) => (0, std::slice::from_ref(k)),
            Forecast::Initial(ks) => (1, ks.as_slice()),
        };
        if keys.len() > self.forecast_keys {
            return Err(PdiskError::Corrupt(format!(
                "forecast table of {} keys exceeds reserved {}",
                keys.len(),
                self.forecast_keys
            )));
        }
        out[4..8].copy_from_slice(&kind.to_le_bytes());
        let mut off = 8;
        for i in 0..self.forecast_keys {
            let k = keys.get(i).copied().unwrap_or(NO_BLOCK);
            out[off..off + 8].copy_from_slice(&k.to_le_bytes());
            off += 8;
        }
        for rec in &block.records {
            rec.encode(&mut out[off..off + R::ENCODED_LEN]);
            off += R::ENCODED_LEN;
        }
        Ok(out)
    }

    fn decode_frame(&self, bytes: &[u8]) -> Result<Block<R>> {
        let n = le_u32(&bytes[..4]) as usize;
        if n > self.geom.b {
            return Err(PdiskError::Corrupt(format!(
                "reconstructed record count {n} exceeds block size {}",
                self.geom.b
            )));
        }
        let kind = le_u32(&bytes[4..8]);
        let mut off = 8;
        let mut keys = Vec::with_capacity(self.forecast_keys);
        for _ in 0..self.forecast_keys {
            keys.push(le_u64(&bytes[off..off + 8]));
            off += 8;
        }
        let forecast = match kind {
            0 => Forecast::Next(keys[0]),
            1 => Forecast::Initial(keys),
            k => {
                return Err(PdiskError::Corrupt(format!(
                    "reconstructed forecast kind {k} is unknown"
                )))
            }
        };
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(R::decode(&bytes[off..off + R::ENCODED_LEN]));
            off += R::ENCODED_LEN;
        }
        Ok(Block { records, forecast })
    }

    /// Raw frame of stripe `s`'s block on `target`, reconstructed as
    /// parity XOR the stripe's other written data frames (one extra
    /// parallel read when any survive; for `D = 2` the parity alone is
    /// the mirror).
    fn reconstruct_frame(&mut self, s: u64, target: DiskId) -> Result<Vec<u8>> {
        let stripe = self.stripes.get(&s).cloned().ok_or_else(|| {
            PdiskError::Unrecoverable(format!("stripe {s} has no parity state"))
        })?;
        if stripe.parity_lost {
            return Err(PdiskError::Unrecoverable(format!(
                "stripe {s}: block on disk {} needs parity, but the stripe's \
                 parity died with disk {}",
                target.0,
                s % self.geom.d as u64
            )));
        }
        let dd = self.geom.d as u64;
        let mut sibs = Vec::new();
        for d in 0..self.geom.d {
            let did = DiskId::from_index(d);
            if did == target || d as u64 == s % dd || stripe.written & (1 << d) == 0 {
                continue;
            }
            if self.dead.contains(&did) {
                return Err(PdiskError::Unrecoverable(format!(
                    "stripe {s}: sibling disk {d} is also dead"
                )));
            }
            sibs.push(BlockAddr::new(did, s));
        }
        let mut frame = stripe.parity;
        if !sibs.is_empty() {
            let blocks = match self.inner.read(&sibs) {
                Ok(b) => b,
                Err(PdiskError::Fault {
                    kind: FaultKind::Permanent,
                    disk: Some(dd2),
                    ..
                }) => {
                    self.mark_dead(dd2)?;
                    return Err(PdiskError::Unrecoverable(format!(
                        "stripe {s}: sibling disk {} died during reconstruction",
                        dd2.0
                    )));
                }
                Err(e) => return Err(e),
            };
            for b in blocks {
                let sib_frame = self.encode_frame(&b)?;
                xor_into(&mut frame, &sib_frame);
            }
        }
        if let Some(sink) = self.inner.trace_sink() {
            sink.emit(TraceEvent::Reconstruct {
                disk: target,
                stripe: s,
                siblings: sibs,
            });
        }
        Ok(frame)
    }

    /// Whether a read of physical slot `pa` on a *live* disk should be
    /// hedged through reconstruction instead.
    fn should_hedge(&self, pa: &BlockAddr) -> bool {
        let Some((timing, after)) = &self.hedge else {
            return false;
        };
        if !timing.is_straggler(pa.disk, *after) {
            return false;
        }
        let Some(st) = self.stripes.get(&pa.offset) else {
            return false;
        };
        if st.parity_lost || st.written & (1 << pa.disk.index()) == 0 {
            return false;
        }
        // Every written sibling must be live, else the hedge would fail.
        let dd = self.geom.d as u64;
        (0..self.geom.d).all(|d| {
            let did = DiskId::from_index(d);
            did == pa.disk
                || d as u64 == pa.offset % dd
                || st.written & (1 << d) == 0
                || !self.dead.contains(&did)
        })
    }

    /// Re-materialize dead `disk` onto an attached spare while the
    /// array stays online: re-sync the spare's allocation, rewrite
    /// every lost data block from parity, recompute parity stripes that
    /// died with the disk, then return the disk to service.  The layer
    /// below must already serve the disk again (e.g.
    /// [`crate::FaultModel::attach_spare`]); otherwise this fails with
    /// the underlying fault and the array stays degraded.
    pub fn rebuild(&mut self, disk: DiskId) -> Result<()> {
        let i = disk.index();
        if i >= self.geom.d {
            return Err(PdiskError::NoSuchDisk(disk));
        }
        if !self.dead.contains(&disk) {
            return Ok(());
        }
        // Allocation skipped while dead is granted now, so the spare's
        // watermark covers every slot the logical space maps into.
        if self.phys_free[i] > self.inner_free[i] {
            let count = self.phys_free[i] - self.inner_free[i];
            self.inner.alloc_contiguous(disk, count)?;
            self.inner_free[i] = self.phys_free[i];
        }
        let dd = self.geom.d as u64;
        // Rewrite the disk's data blocks from the surviving stripes.
        let data_stripes: Vec<u64> = self
            .stripes
            .iter()
            .filter(|(_, st)| st.written & (1 << i) != 0)
            .map(|(s, _)| *s)
            .collect();
        for s in data_stripes {
            let frame = self.reconstruct_frame(s, disk)?;
            let block = self.decode_frame(&frame)?;
            self.reconstructed_reads += 1;
            self.inner.write(vec![(BlockAddr::new(disk, s), block)])?;
        }
        // Recompute parity that died with the disk (stripes s ≡ i mod D).
        let lost: Vec<u64> = self
            .stripes
            .iter()
            .filter(|(_, st)| st.parity_lost)
            .map(|(s, _)| *s)
            .collect();
        for s in lost {
            debug_assert_eq!(s % dd, i as u64, "only the dead disk's parity is lost");
            let written = self.stripes[&s].written;
            let mut members = Vec::new();
            for d in 0..self.geom.d {
                if d != i && written & (1 << d) != 0 {
                    members.push(BlockAddr::new(DiskId::from_index(d), s));
                }
            }
            let mut parity = vec![0u8; self.frame_len];
            if !members.is_empty() {
                for b in self.inner.read(&members)? {
                    let f = self.encode_frame(&b)?;
                    xor_into(&mut parity, &f);
                }
            }
            if let Some(st) = self.stripes.get_mut(&s) {
                st.parity = parity;
                st.parity_lost = false;
            }
            self.parity_writes += 1;
            self.save_stripe(s)?;
        }
        self.dead.remove(&disk);
        if let Some(sink) = self.inner.trace_sink() {
            sink.emit(TraceEvent::DiskRebuilt { disk });
        }
        Ok(())
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for ParityDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.geom
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return self.inner.read(addrs);
        }
        self.geom.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        let dd = self.geom.d as u64;
        let mut direct: Vec<(usize, BlockAddr)> = Vec::new();
        let mut recon: Vec<(usize, BlockAddr, bool)> = Vec::new();
        for (i, a) in addrs.iter().enumerate() {
            if a.disk.index() >= self.geom.d {
                return Err(PdiskError::NoSuchDisk(a.disk));
            }
            if a.offset >= self.logical_free[a.disk.index()] {
                return Err(PdiskError::UnmappedBlock(*a));
            }
            let pa = BlockAddr::new(a.disk, phys_of(a.disk.index(), a.offset, dd));
            if self.dead.contains(&a.disk) {
                recon.push((i, pa, false));
            } else if self.should_hedge(&pa) {
                recon.push((i, pa, true));
            } else {
                direct.push((i, pa));
            }
        }
        let mut out: Vec<Option<Block<R>>> = Vec::new();
        out.resize_with(addrs.len(), || None);
        // Direct reads, absorbing a mid-read permanent fault by moving
        // the newly dead disk's block onto the reconstruction path.
        loop {
            let req: Vec<BlockAddr> = direct.iter().map(|(_, a)| *a).collect();
            match self.inner.read(&req) {
                Ok(blocks) => {
                    for ((i, _), b) in direct.iter().zip(blocks) {
                        out[*i] = Some(b);
                    }
                    break;
                }
                Err(PdiskError::Fault {
                    kind: FaultKind::Permanent,
                    disk: Some(dead),
                    ..
                }) => {
                    self.mark_dead(dead)?;
                    let (lost, live): (Vec<_>, Vec<_>) =
                        direct.into_iter().partition(|(_, a)| a.disk == dead);
                    direct = live;
                    for (i, a) in lost {
                        recon.push((i, a, false));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        for (i, pa, hedged) in recon {
            let logical = addrs[i];
            if self
                .stripes
                .get(&pa.offset)
                .is_none_or(|st| st.written & (1 << pa.disk.index()) == 0)
            {
                if hedged {
                    // Should not happen (hedging checks the bit), but a
                    // direct read is always a safe fallback.
                    out[i] = Some(self.inner.read(&[pa])?.remove(0));
                    continue;
                }
                return Err(PdiskError::UnmappedBlock(logical));
            }
            let frame = self.reconstruct_frame(pa.offset, pa.disk)?;
            let block = self.decode_frame(&frame).map_err(|e| {
                PdiskError::Unrecoverable(format!(
                    "reconstruction of block {logical:?} decoded to garbage: {e}"
                ))
            })?;
            self.reconstructed_reads += 1;
            if hedged {
                self.hedged_reads += 1;
            }
            out[i] = Some(block);
        }
        out.into_iter()
            .enumerate()
            .map(|(i, b)| {
                b.ok_or_else(|| {
                    PdiskError::Unrecoverable(format!(
                        "parity read left request slot {i} unserved (internal invariant)"
                    ))
                })
            })
            .collect()
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return self.inner.write(writes);
        }
        self.geom
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let dd = self.geom.d as u64;
        // Map, encode, and fetch old frames (overwrites only) *before*
        // touching the inner array, so a transient failure anywhere
        // leaves no partial parity state and the op replays cleanly
        // under a retry policy.
        let mut pas = Vec::with_capacity(writes.len());
        let mut new_frames = Vec::with_capacity(writes.len());
        for (a, b) in &writes {
            if a.disk.index() >= self.geom.d {
                return Err(PdiskError::NoSuchDisk(a.disk));
            }
            if a.offset >= self.logical_free[a.disk.index()] {
                return Err(PdiskError::UnmappedBlock(*a));
            }
            pas.push(BlockAddr::new(a.disk, phys_of(a.disk.index(), a.offset, dd)));
            new_frames.push(self.encode_frame(b)?);
        }
        let written_bit = |this: &Self, pa: &BlockAddr| {
            this.stripes
                .get(&pa.offset)
                .is_some_and(|st| st.written & (1 << pa.disk.index()) != 0)
        };
        let mut old_frames: Vec<Option<Vec<u8>>> = vec![None; writes.len()];
        let overwrites: Vec<(usize, BlockAddr)> = pas
            .iter()
            .enumerate()
            .filter(|(_, pa)| written_bit(self, pa) && !self.dead.contains(&pa.disk))
            .map(|(i, pa)| (i, *pa))
            .collect();
        if !overwrites.is_empty() {
            let req: Vec<BlockAddr> = overwrites.iter().map(|(_, a)| *a).collect();
            let blocks = self.inner.read(&req)?;
            for ((i, _), b) in overwrites.iter().zip(blocks) {
                old_frames[*i] = Some(self.encode_frame(&b)?);
            }
        }
        for (i, pa) in pas.iter().enumerate() {
            if self.dead.contains(&pa.disk) && written_bit(self, pa) {
                let f = self.reconstruct_frame(pa.offset, pa.disk)?;
                self.reconstructed_reads += 1;
                old_frames[i] = Some(f);
            }
        }
        // Inner write of the live targets, absorbing a mid-write
        // permanent fault: the newly dead disk's block then survives
        // only through parity, like any degraded write.
        let mut live: Vec<usize> = (0..writes.len())
            .filter(|&i| !self.dead.contains(&pas[i].disk))
            .collect();
        loop {
            let req: Vec<(BlockAddr, Block<R>)> = live
                .iter()
                .map(|&i| (pas[i], writes[i].1.clone()))
                .collect();
            match self.inner.write(req) {
                Ok(()) => break,
                Err(PdiskError::Fault {
                    kind: FaultKind::Permanent,
                    disk: Some(dead),
                    ..
                }) => {
                    self.mark_dead(dead)?;
                    live.retain(|&i| pas[i].disk != dead);
                }
                Err(e) => return Err(e),
            }
        }
        // All durable effects succeeded; commit parity exactly once.  A
        // crash landing between the inner write and this commit leaves
        // the stripes' `written` bits unset, so the frames read back as
        // unwritten and the sorter re-issues them after recovery —
        // never a half-updated parity that would reconstruct garbage.
        self.crash_tick("parity-update")?;
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        for (i, pa) in pas.iter().enumerate() {
            let parity_disk_dead = self.dead.contains(&DiskId::from_mod(pa.offset, self.geom.d));
            if self.dead.contains(&pa.disk) && parity_disk_dead {
                return Err(PdiskError::Unrecoverable(format!(
                    "write to dead disk {} in stripe {} whose parity is also lost",
                    pa.disk.0, pa.offset
                )));
            }
            let frame_len = self.frame_len;
            let st = self
                .stripes
                .entry(pa.offset)
                .or_insert_with(|| Stripe::empty(frame_len, parity_disk_dead));
            if !st.parity_lost {
                if let Some(old) = &old_frames[i] {
                    xor_into(&mut st.parity, old);
                }
                xor_into(&mut st.parity, &new_frames[i]);
                touched.insert(pa.offset);
            }
            st.written |= 1 << pa.disk.index();
            self.save_stripe(pa.offset)?;
        }
        self.parity_writes += touched.len() as u64;
        if let Some(sink) = self.inner.trace_sink() {
            for &s in &touched {
                let data_disks: Vec<DiskId> = pas
                    .iter()
                    .filter(|pa| pa.offset == s)
                    .map(|pa| pa.disk)
                    .collect();
                sink.emit(TraceEvent::ParityCommit {
                    stripe: s,
                    parity_disk: DiskId::from_mod(s, self.geom.d),
                    data_disks,
                });
            }
        }
        self.crash_tick("parity-updated")?;
        Ok(())
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let i = disk.index();
        if i >= self.geom.d {
            return Err(PdiskError::NoSuchDisk(disk));
        }
        let dd = self.geom.d as u64;
        let start = self.logical_free[i];
        let new_logical = start + count;
        let phys_needed = if new_logical == 0 {
            0
        } else {
            phys_of(i, new_logical - 1, dd) + 1
        };
        // Grow the inner allocation first: a failure here (e.g. an
        // injected alloc fault) must leave the logical watermark
        // untouched so a retried alloc returns the same offset.
        if !self.dead.contains(&disk) && phys_needed > self.inner_free[i] {
            let req = phys_needed - self.inner_free[i];
            let got = self.inner.alloc_contiguous(disk, req)?;
            // After a resume the inner watermark may already be ahead of
            // ours; all that matters is that it now covers phys_needed.
            self.inner_free[i] = (got + req).max(phys_needed);
        }
        self.logical_free[i] = new_logical;
        self.phys_free[i] = self.phys_free[i].max(phys_needed);
        Ok(start)
    }

    /// Inner stats plus this layer's degraded-mode counters.  Sibling
    /// reads issued for reconstruction are charged on the inner array
    /// as ordinary parallel reads (they are real I/O); the blocks they
    /// *serve* are visible here as `reconstructed_reads`.
    fn stats(&self) -> IoStats {
        let mut s = self.inner.stats();
        s.reconstructed_reads += self.reconstructed_reads;
        s.parity_writes += self.parity_writes;
        s.hedged_reads += self.hedged_reads;
        s
    }

    fn reset_stats(&mut self) {
        self.reconstructed_reads = 0;
        self.parity_writes = 0;
        self.hedged_reads = 0;
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<RedundancyInfo> {
        Some(RedundancyInfo {
            stripe_disks: self.geom.d,
            dead: self.dead.iter().copied().collect(),
        })
    }

    /// Durability barrier: flush the inner array first (data frames),
    /// then the parity sidecar, so a crash between the two leaves
    /// parity *behind* the data — the safe direction, since a stale
    /// `written` mask merely re-exposes frames as unwritten.
    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?;
        if let Some(store) = &self.store {
            store.file.sync_all()?;
        }
        Ok(())
    }

    /// Verify the block at `addr`; on a checksum failure in the inner
    /// backend, reconstruct the frame from the stripe's parity and
    /// rewrite it in place.  The rewrite goes straight to the inner
    /// array: parity already reflects the *correct* frame (the
    /// corruption is latent media damage below us), so updating it
    /// again would wreck it.
    fn scrub_block(&mut self, addr: BlockAddr) -> Result<ScrubOutcome> {
        if addr.disk.index() >= self.geom.d {
            return Err(PdiskError::NoSuchDisk(addr.disk));
        }
        if addr.offset >= self.logical_free[addr.disk.index()] {
            return Err(PdiskError::UnmappedBlock(addr));
        }
        let dd = self.geom.d as u64;
        let pa = BlockAddr::new(addr.disk, phys_of(addr.disk.index(), addr.offset, dd));
        if !self.dead.contains(&addr.disk) {
            match self.inner.read(&[pa]) {
                Ok(_) => return Ok(ScrubOutcome::Clean),
                Err(PdiskError::Corrupt(_)) => {}
                Err(PdiskError::Fault {
                    kind: FaultKind::Permanent,
                    disk: Some(dead),
                    ..
                }) => {
                    // The disk died under the scrubber; fall through to
                    // the degraded verification path.
                    self.mark_dead(dead)?;
                }
                Err(e) => return Err(e),
            }
        }
        if self
            .stripes
            .get(&pa.offset)
            .is_none_or(|st| st.written & (1 << pa.disk.index()) == 0)
        {
            return Ok(ScrubOutcome::Unrepairable(format!(
                "block {addr:?} fails verification and its stripe holds no \
                 parity state to rebuild it from"
            )));
        }
        let frame = match self.reconstruct_frame(pa.offset, pa.disk) {
            Ok(f) => f,
            Err(PdiskError::Unrecoverable(why)) => {
                return Ok(ScrubOutcome::Unrepairable(why));
            }
            // A corrupt sibling is a double failure in this stripe —
            // that makes the block unrepairable, but it must not abort
            // the scrub of every block behind it.
            Err(PdiskError::Corrupt(why)) => {
                return Ok(ScrubOutcome::Unrepairable(format!(
                    "block {addr:?}: a stripe sibling is corrupt too: {why}"
                )));
            }
            Err(e) => return Err(e),
        };
        let block = match self.decode_frame(&frame) {
            Ok(b) => b,
            Err(e) => {
                return Ok(ScrubOutcome::Unrepairable(format!(
                    "block {addr:?} reconstructed to garbage: {e}"
                )));
            }
        };
        self.reconstructed_reads += 1;
        if self.dead.contains(&addr.disk) {
            // Nothing to rewrite: the disk is gone, but the degraded
            // read path serves the block, which is all a scrub can
            // promise here.
            return Ok(ScrubOutcome::Clean);
        }
        self.inner.write(vec![(pa, block)])?;
        if let Some(sink) = self.inner.trace_sink() {
            sink.emit(TraceEvent::ScrubRepair {
                addr: pa,
                stripe: pa.offset,
            });
        }
        Ok(ScrubOutcome::Repaired)
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    // submit_read / submit_write use the trait defaults: they execute
    // eagerly through this wrapper's read/write, so reconstruction,
    // parity maintenance, and hedging all apply to split-phase traffic
    // unchanged (the split degenerates to serial at this layer).

    fn install_pool(&mut self, pool: crate::pool::BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&crate::pool::BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{FaultModel, FaultyDiskArray};
    use crate::file::FileDiskArray;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;
    use crate::timing::DiskModel;
    use std::path::PathBuf;

    type Mem = MemDiskArray<U64Record>;
    type Faulty = FaultyDiskArray<U64Record, Mem>;
    type Parity = ParityDiskArray<U64Record, Faulty>;

    fn tmpdir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("pdisk-parity-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn blk(keys: &[u64]) -> Block<U64Record> {
        Block::new(keys.iter().map(|&k| U64Record(k)).collect(), Forecast::Next(NO_BLOCK))
    }

    /// A parity array over `d` disks with `slots` logical blocks written
    /// per disk; block (d, o) holds keys d*1000+o*10 .. +B.
    fn seeded(d: usize, slots: u64) -> Parity {
        let geom = Geometry::new(d, 4, 1000).unwrap();
        let inner = FaultyDiskArray::new(MemDiskArray::new(geom), FaultModel::none());
        let mut a = ParityDiskArray::new(inner).unwrap();
        for disk in 0..d {
            let o = a.alloc_contiguous(DiskId(disk as u32), slots).unwrap();
            assert_eq!(o, 0);
        }
        for slot in 0..slots {
            let writes: Vec<_> = (0..d)
                .map(|disk| {
                    let base = disk as u64 * 1000 + slot * 10;
                    (
                        BlockAddr::new(DiskId(disk as u32), slot),
                        blk(&[base, base + 1, base + 2, base + 3]),
                    )
                })
                .collect();
            a.write(writes).unwrap();
        }
        a
    }

    fn expected(disk: usize, slot: u64) -> Block<U64Record> {
        let base = disk as u64 * 1000 + slot * 10;
        blk(&[base, base + 1, base + 2, base + 3])
    }

    #[test]
    fn mapping_is_a_bijection_that_avoids_parity_slots() {
        for d_total in 2..6usize {
            let dd = d_total as u64;
            for disk in 0..d_total {
                let mut seen = std::collections::BTreeSet::new();
                for lo in 0..60u64 {
                    let po = phys_of(disk, lo, dd);
                    assert_ne!(po % dd, disk as u64, "data slot on its parity stripe");
                    assert_eq!(logical_of(disk, po, dd), Some(lo), "inverse mismatch");
                    assert!(seen.insert(po), "physical slot reused");
                }
                // The reserved slots are exactly those the inverse rejects.
                for po in 0..60u64 {
                    if po % dd == disk as u64 {
                        assert_eq!(logical_of(disk, po, dd), None);
                    }
                }
            }
        }
    }

    #[test]
    fn parity_needs_two_disks() {
        let geom = Geometry::new(1, 4, 1000).unwrap();
        let inner: Mem = MemDiskArray::new(geom);
        assert!(matches!(
            ParityDiskArray::new(inner),
            Err(PdiskError::BadGeometry(_))
        ));
    }

    #[test]
    fn healthy_path_preserves_op_structure() {
        let d = 3;
        let a = seeded(d, 4);
        // Reference: the same workload on a bare array.
        let geom = Geometry::new(d, 4, 1000).unwrap();
        let mut bare: Mem = MemDiskArray::new(geom);
        for disk in 0..d {
            bare.alloc_contiguous(DiskId(disk as u32), 4).unwrap();
        }
        for slot in 0..4u64 {
            let writes: Vec<_> = (0..d)
                .map(|disk| (BlockAddr::new(DiskId(disk as u32), slot), expected(disk, slot)))
                .collect();
            bare.write(writes).unwrap();
        }
        let (ps, bs) = (a.stats(), bare.stats());
        assert_eq!(ps.write_ops, bs.write_ops, "same parallel write count");
        assert_eq!(ps.blocks_written, bs.blocks_written, "same blocks moved");
        assert_eq!(ps.read_ops, bs.read_ops);
        // The remap shifts each disk's slots differently, so one
        // parallel op's blocks straddle two adjacent stripes: 2 parity
        // updates per op here, never more than stripes touched.
        assert_eq!(ps.parity_writes, 8, "one parity update per stripe per op");
        assert_eq!(ps.reconstructed_reads, 0);
    }

    #[test]
    fn healthy_reads_round_trip() {
        let mut a = seeded(3, 4);
        for slot in 0..4u64 {
            let addrs: Vec<_> = (0..3)
                .map(|disk| BlockAddr::new(DiskId(disk as u32), slot))
                .collect();
            let got = a.read(&addrs).unwrap();
            for (disk, b) in got.iter().enumerate() {
                assert_eq!(*b, expected(disk, slot));
            }
        }
    }

    #[test]
    fn administrative_kill_reconstructs_every_block() {
        let mut a = seeded(4, 5);
        a.fail_disk(DiskId(2)).unwrap();
        for slot in 0..5u64 {
            let got = a.read(&[BlockAddr::new(DiskId(2), slot)]).unwrap();
            assert_eq!(got[0], expected(2, slot), "slot {slot}");
        }
        let s = a.stats();
        assert_eq!(s.reconstructed_reads, 5);
        assert_eq!(s.hedged_reads, 0);
        assert_eq!(
            a.redundancy(),
            Some(RedundancyInfo {
                stripe_disks: 4,
                dead: vec![DiskId(2)],
            })
        );
    }

    #[test]
    fn mid_read_death_is_absorbed_within_the_op() {
        let mut a = seeded(3, 4);
        // The fault layer below kills disk 1; the parity layer must
        // catch the permanent fault mid-op and still return all blocks.
        a.inner_mut().model_mut().kill_disk(DiskId(1));
        let addrs: Vec<_> = (0..3).map(|d| BlockAddr::new(DiskId(d), 2)).collect();
        let got = a.read(&addrs).unwrap();
        for (disk, b) in got.iter().enumerate() {
            assert_eq!(*b, expected(disk, 2));
        }
        assert!(a.stats().reconstructed_reads >= 1);
        assert_eq!(a.dead_disks().collect::<Vec<_>>(), vec![DiskId(1)]);
    }

    #[test]
    fn degraded_writes_survive_via_parity() {
        let mut a = seeded(3, 2);
        a.fail_disk(DiskId(0)).unwrap();
        // Extend disk 0's run while it is dead: the block exists only
        // through parity, and reads it back reconstructed.
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        assert_eq!(o, 2);
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[7, 8, 9]))])
            .unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        assert_eq!(got[0], blk(&[7, 8, 9]));
        assert!(a.stats().reconstructed_reads >= 1);
    }

    #[test]
    fn mid_write_death_is_absorbed_within_the_op() {
        let geom = Geometry::new(3, 4, 1000).unwrap();
        let inner = FaultyDiskArray::new(
            MemDiskArray::new(geom),
            FaultModel::none().kill_at(crate::error::FaultOp::Write, 1),
        );
        let mut a = ParityDiskArray::new(inner).unwrap();
        for d in 0..3 {
            a.alloc_contiguous(DiskId(d), 2).unwrap();
        }
        let stripe_writes = |slot: u64| -> Vec<_> {
            (0..3)
                .map(|d| (BlockAddr::new(DiskId(d), slot), expected(d as usize, slot)))
                .collect()
        };
        a.write(stripe_writes(0)).unwrap(); // write 0: clean
        a.write(stripe_writes(1)).unwrap(); // write 1: disk 0 dies mid-op
        assert_eq!(a.dead_disks().collect::<Vec<_>>(), vec![DiskId(0)]);
        // Every block of both stripes is still readable.
        for slot in 0..2u64 {
            let got = a
                .read(&(0..3).map(|d| BlockAddr::new(DiskId(d), slot)).collect::<Vec<_>>())
                .unwrap();
            for (disk, b) in got.iter().enumerate() {
                assert_eq!(*b, expected(disk, slot), "slot {slot} disk {disk}");
            }
        }
    }

    #[test]
    fn two_disk_mirror_reconstructs_from_parity_alone() {
        let mut a = seeded(2, 3);
        a.fail_disk(DiskId(1)).unwrap();
        let before = a.stats().read_ops;
        for slot in 0..3u64 {
            let got = a.read(&[BlockAddr::new(DiskId(1), slot)]).unwrap();
            assert_eq!(got[0], expected(1, slot));
        }
        // D = 2: no sibling reads needed; parity is the mirror copy.
        assert_eq!(a.stats().read_ops, before, "no inner reads for D=2 rebuilds");
        assert_eq!(a.stats().reconstructed_reads, 3);
    }

    #[test]
    fn second_death_is_unrecoverable() {
        let mut a = seeded(3, 2);
        a.fail_disk(DiskId(0)).unwrap();
        a.fail_disk(DiskId(0)).unwrap(); // idempotent
        let err = a.fail_disk(DiskId(1)).unwrap_err();
        assert!(matches!(err, PdiskError::Unrecoverable(_)), "got {err:?}");
    }

    #[test]
    fn dead_disk_unwritten_slot_reads_as_unmapped() {
        let mut a = seeded(3, 2);
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.fail_disk(DiskId(0)).unwrap();
        let err = a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap_err();
        assert!(matches!(err, PdiskError::UnmappedBlock(_)), "got {err:?}");
    }

    #[test]
    fn rebuild_restores_direct_service() {
        let mut a = seeded(4, 4);
        a.fail_disk(DiskId(3)).unwrap();
        // Degraded write extends the dead disk's space.
        let o = a.alloc_contiguous(DiskId(3), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(3), o), blk(&[42]))]).unwrap();
        // Attach a spare below, then rebuild online.
        assert!(!a.inner_mut().model_mut().attach_spare(DiskId(3)));
        a.rebuild(DiskId(3)).unwrap();
        assert!(a.dead_disks().next().is_none());
        assert_eq!(a.redundancy().unwrap().dead, Vec::<DiskId>::new());
        // Reads are direct again: reconstructed count stays flat.
        let after_rebuild = a.stats().reconstructed_reads;
        for slot in 0..4u64 {
            let got = a.read(&[BlockAddr::new(DiskId(3), slot)]).unwrap();
            assert_eq!(got[0], expected(3, slot));
        }
        assert_eq!(a.read(&[BlockAddr::new(DiskId(3), o)]).unwrap()[0], blk(&[42]));
        assert_eq!(a.stats().reconstructed_reads, after_rebuild);
        // The array tolerates a fresh (different) failure after rebuild.
        a.fail_disk(DiskId(0)).unwrap();
        assert_eq!(a.read(&[BlockAddr::new(DiskId(0), 1)]).unwrap()[0], expected(0, 1));
    }

    #[test]
    fn hedged_reads_bypass_a_straggler() {
        let mut a = seeded(3, 3);
        let timing = ArrayTiming::uniform(DiskModel::hdd_1996(), 3)
            .with_slowdown(DiskId(1), 8.0);
        a.set_hedging(timing, 4.0);
        let got = a.read(&[BlockAddr::new(DiskId(1), 1)]).unwrap();
        assert_eq!(got[0], expected(1, 1));
        let s = a.stats();
        assert_eq!(s.hedged_reads, 1);
        assert_eq!(s.reconstructed_reads, 1);
        // A fast disk is never hedged.
        let got = a.read(&[BlockAddr::new(DiskId(0), 1)]).unwrap();
        assert_eq!(got[0], expected(0, 1));
        assert_eq!(a.stats().hedged_reads, 1);
    }

    /// Like [`seeded`] but directly over [`MemDiskArray`], so tests can
    /// reach [`MemDiskArray::corrupt_block`] through one `inner_mut`.
    fn seeded_mem(d: usize, slots: u64) -> ParityDiskArray<U64Record, Mem> {
        let geom = Geometry::new(d, 4, 1000).unwrap();
        let mut a = ParityDiskArray::new(MemDiskArray::new(geom)).unwrap();
        for disk in 0..d {
            a.alloc_contiguous(DiskId(disk as u32), slots).unwrap();
        }
        for slot in 0..slots {
            let writes: Vec<_> = (0..d)
                .map(|disk| (BlockAddr::new(DiskId(disk as u32), slot), expected(disk, slot)))
                .collect();
            a.write(writes).unwrap();
        }
        a
    }

    #[test]
    fn scrub_repairs_latent_corruption_in_place() {
        use crate::backend::ScrubOutcome;
        let mut a = seeded_mem(3, 4);
        let logical = BlockAddr::new(DiskId(1), 2);
        let pa = BlockAddr::new(DiskId(1), phys_of(1, 2, 3));
        a.inner_mut().corrupt_block(pa).unwrap();
        // Plain reads now fail: the damage is latent until touched.
        assert!(matches!(a.read(&[logical]), Err(PdiskError::Corrupt(_))));
        assert_eq!(a.scrub_block(logical).unwrap(), ScrubOutcome::Repaired);
        // The rewrite healed the media; data and parity both intact.
        assert_eq!(a.read(&[logical]).unwrap()[0], expected(1, 2));
        assert_eq!(a.scrub_block(logical).unwrap(), ScrubOutcome::Clean);
        assert!(a.stats().reconstructed_reads >= 1);
    }

    #[test]
    fn scrub_on_a_dead_disk_verifies_the_degraded_path() {
        use crate::backend::ScrubOutcome;
        let mut a = seeded_mem(3, 2);
        a.fail_disk(DiskId(2)).unwrap();
        // Nothing to rewrite (the disk is gone) but the block is
        // reconstructable, which is all a scrub can promise here.
        assert_eq!(
            a.scrub_block(BlockAddr::new(DiskId(2), 1)).unwrap(),
            ScrubOutcome::Clean
        );
        assert!(a.stats().reconstructed_reads >= 1);
    }

    #[test]
    fn scrub_reports_unrepairable_when_a_sibling_is_dead() {
        use crate::backend::ScrubOutcome;
        let mut a = seeded_mem(3, 2);
        a.fail_disk(DiskId(0)).unwrap();
        // Logical (1, 1) lives in stripe 2, whose reconstruction needs
        // dead disk 0's member: corruption there is beyond repair.
        let logical = BlockAddr::new(DiskId(1), 1);
        let pa = BlockAddr::new(DiskId(1), phys_of(1, 1, 3));
        assert_eq!(pa.offset, 2);
        a.inner_mut().corrupt_block(pa).unwrap();
        match a.scrub_block(logical).unwrap() {
            ScrubOutcome::Unrepairable(why) => {
                assert!(why.contains("dead"), "unexpected reason: {why}");
            }
            other => panic!("expected Unrepairable, got {other:?}"),
        }
    }

    #[test]
    fn crash_between_data_write_and_parity_commit_stays_consistent() {
        let geom = Geometry::new(3, 4, 1000).unwrap();
        let mut a = ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap();
        for d in 0..3 {
            a.alloc_contiguous(DiskId(d), 1).unwrap();
        }
        let clock = crate::crash::CrashClock::crash_at(0);
        a.set_crash_clock(clock.clone());
        let writes: Vec<_> = (0..3)
            .map(|d| (BlockAddr::new(DiskId(d), 0), expected(d as usize, 0)))
            .collect();
        let err = a.write(writes).unwrap_err();
        assert!(matches!(err, PdiskError::Crashed { point: 0, .. }), "got {err:?}");
        assert_eq!(clock.fired(), Some(0));
        // Data frames landed below, but no stripe committed: recovery
        // sees the frames as unwritten and re-issues them.
        assert!(a.stripes.is_empty(), "parity committed despite the crash");
        // The poisoned clock keeps refusing work, like a dead process.
        let err = a
            .write(vec![(BlockAddr::new(DiskId(0), 0), expected(0, 0))])
            .unwrap_err();
        assert!(matches!(err, PdiskError::Crashed { point: 0, .. }));
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn store_persists_parity_across_reopen_and_serves_degraded_resume() {
        let dir = tmpdir("store");
        let geom = Geometry::new(3, 4, 1000).unwrap();
        let store_path = dir.join("parity.bin");
        {
            let inner: FileDiskArray<U64Record> =
                FileDiskArray::create(geom, dir.join("disks")).unwrap();
            let mut a = ParityDiskArray::new(inner)
                .unwrap()
                .with_store(&store_path)
                .unwrap();
            for d in 0..3 {
                a.alloc_contiguous(DiskId(d), 2).unwrap();
            }
            for slot in 0..2u64 {
                let writes: Vec<_> = (0..3)
                    .map(|d| (BlockAddr::new(DiskId(d), slot), expected(d as usize, slot)))
                    .collect();
                a.write(writes).unwrap();
            }
        }
        // Reopen: watermarks recover from the store, old data reads
        // back, and a disk that died in the meantime is reconstructed
        // from the persisted parity.
        let inner: FileDiskArray<U64Record> =
            FileDiskArray::open(geom, dir.join("disks")).unwrap();
        let mut a = ParityDiskArray::new(inner)
            .unwrap()
            .with_store(&store_path)
            .unwrap();
        a.fail_disk(DiskId(2)).unwrap();
        for slot in 0..2u64 {
            let addrs: Vec<_> = (0..3).map(|d| BlockAddr::new(DiskId(d), slot)).collect();
            let got = a.read(&addrs).unwrap();
            for (disk, b) in got.iter().enumerate() {
                assert_eq!(*b, expected(disk, slot), "slot {slot} disk {disk}");
            }
        }
        assert_eq!(a.stats().reconstructed_reads, 2);
        // New allocations continue past the recovered watermark.
        assert_eq!(a.alloc_contiguous(DiskId(0), 1).unwrap(), 2);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn corrupt_store_is_refused() {
        let dir = tmpdir("store-corrupt");
        let geom = Geometry::new(2, 4, 1000).unwrap();
        let store_path = dir.join("parity.bin");
        {
            let inner: Mem = MemDiskArray::new(geom);
            let mut a = ParityDiskArray::new(inner)
                .unwrap()
                .with_store(&store_path)
                .unwrap();
            a.alloc_contiguous(DiskId(0), 1).unwrap();
            a.write(vec![(BlockAddr::new(DiskId(0), 0), blk(&[1, 2]))])
                .unwrap();
        }
        let mut bytes = std::fs::read(&store_path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        std::fs::write(&store_path, &bytes).unwrap();
        let inner: Mem = MemDiskArray::new(geom);
        let err = ParityDiskArray::new(inner)
            .unwrap()
            .with_store(&store_path)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, PdiskError::Corrupt(_)), "got {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
