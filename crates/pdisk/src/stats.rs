//! I/O accounting.
//!
//! Every experiment in the paper is stated in terms of counted parallel I/O
//! operations; [`IoStats`] is the single source of truth for those counts.

use serde::{Deserialize, Serialize};

/// Counters kept by every [`crate::DiskArray`] backend.
///
/// One *parallel* read/write operation moves up to `D` blocks (one per
/// disk); `blocks_read`/`blocks_written` record the actual number moved so
/// the achieved parallelism `blocks / ops` can be reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Number of parallel read operations issued.
    pub read_ops: u64,
    /// Number of parallel write operations issued.
    pub write_ops: u64,
    /// Total blocks transferred by reads.
    pub blocks_read: u64,
    /// Total blocks transferred by writes.
    pub blocks_written: u64,
    /// Read operations re-issued after a transient fault.
    ///
    /// Retries are accounted separately from `read_ops` so the logical
    /// I/O schedule (the quantity the paper's bounds speak about) stays
    /// comparable between faulty and fault-free runs.
    pub read_retries: u64,
    /// Write operations re-issued after a transient fault.
    pub write_retries: u64,
    /// Allocation requests re-issued after a transient fault.
    ///
    /// Kept apart from `write_retries` so per-[`crate::FaultOp`] exposure
    /// is visible (allocations used to be folded into the write counter).
    pub alloc_retries: u64,
    /// Read operations that failed every attempt under a retry policy.
    pub read_exhausted: u64,
    /// Write operations that failed every attempt under a retry policy.
    pub write_exhausted: u64,
    /// Allocations that failed every attempt under a retry policy.
    pub alloc_exhausted: u64,
    /// Blocks served by parity reconstruction instead of a direct read
    /// (dead disk, or a straggler hedged via the reconstruction path).
    ///
    /// Counted separately from `read_ops` so the healthy-path golden
    /// counts are untouched by the redundancy layer.
    pub reconstructed_reads: u64,
    /// Parity blocks written (or updated) by the redundancy layer.
    pub parity_writes: u64,
    /// Reconstructions triggered by straggler hedging rather than disk
    /// death (also included in `reconstructed_reads`).
    pub hedged_reads: u64,
}

/// Apply `op` to every counter pair; exhaustive field list in one place so
/// adding a counter without updating `since`/`merged` is impossible.
macro_rules! fieldwise {
    ($a:expr, $b:expr, $op:tt) => {
        IoStats {
            read_ops: $a.read_ops $op $b.read_ops,
            write_ops: $a.write_ops $op $b.write_ops,
            blocks_read: $a.blocks_read $op $b.blocks_read,
            blocks_written: $a.blocks_written $op $b.blocks_written,
            read_retries: $a.read_retries $op $b.read_retries,
            write_retries: $a.write_retries $op $b.write_retries,
            alloc_retries: $a.alloc_retries $op $b.alloc_retries,
            read_exhausted: $a.read_exhausted $op $b.read_exhausted,
            write_exhausted: $a.write_exhausted $op $b.write_exhausted,
            alloc_exhausted: $a.alloc_exhausted $op $b.alloc_exhausted,
            reconstructed_reads: $a.reconstructed_reads $op $b.reconstructed_reads,
            parity_writes: $a.parity_writes $op $b.parity_writes,
            hedged_reads: $a.hedged_reads $op $b.hedged_reads,
        }
    };
}

impl IoStats {
    /// Record one parallel read moving `blocks` blocks.
    #[inline]
    pub fn record_read(&mut self, blocks: usize) {
        self.read_ops += 1;
        self.blocks_read += blocks as u64;
    }

    /// Record one parallel write moving `blocks` blocks.
    #[inline]
    pub fn record_write(&mut self, blocks: usize) {
        self.write_ops += 1;
        self.blocks_written += blocks as u64;
    }

    /// Record one read retry after a transient fault.
    #[inline]
    pub fn record_read_retry(&mut self) {
        self.read_retries += 1;
    }

    /// Record one write retry after a transient fault.
    #[inline]
    pub fn record_write_retry(&mut self) {
        self.write_retries += 1;
    }

    /// Record one block served by parity reconstruction.
    #[inline]
    pub fn record_reconstructed_read(&mut self) {
        self.reconstructed_reads += 1;
    }

    /// Record one parity block written or updated.
    #[inline]
    pub fn record_parity_write(&mut self) {
        self.parity_writes += 1;
    }

    /// Total operations re-issued after transient faults.
    #[inline]
    pub fn total_retries(&self) -> u64 {
        self.read_retries + self.write_retries + self.alloc_retries
    }

    /// Total operations that failed every retry attempt.
    #[inline]
    pub fn total_exhausted(&self) -> u64 {
        self.read_exhausted + self.write_exhausted + self.alloc_exhausted
    }

    /// Total parallel operations (reads + writes).
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Mean blocks moved per read operation (read parallelism achieved).
    pub fn read_parallelism(&self) -> f64 {
        if self.read_ops == 0 {
            0.0
        } else {
            self.blocks_read as f64 / self.read_ops as f64
        }
    }

    /// Mean blocks moved per write operation (write parallelism achieved).
    pub fn write_parallelism(&self) -> f64 {
        if self.write_ops == 0 {
            0.0
        } else {
            self.blocks_written as f64 / self.write_ops as f64
        }
    }

    /// Counter-wise difference `self − earlier`; use to isolate one phase of
    /// a computation from a shared backend.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        fieldwise!(self, earlier, -)
    }

    /// Counter-wise sum.
    pub fn merged(&self, other: &IoStats) -> IoStats {
        fieldwise!(self, other, +)
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} ({} blocks, {:.2}x par) writes={} ({} blocks, {:.2}x par)",
            self.read_ops,
            self.blocks_read,
            self.read_parallelism(),
            self.write_ops,
            self.blocks_written,
            self.write_parallelism()
        )?;
        if self.total_retries() > 0 {
            write!(
                f,
                " retries={}r/{}w",
                self.read_retries, self.write_retries
            )?;
            if self.alloc_retries > 0 {
                write!(f, "/{}a", self.alloc_retries)?;
            }
        }
        if self.total_exhausted() > 0 {
            write!(
                f,
                " exhausted={}r/{}w/{}a",
                self.read_exhausted, self.write_exhausted, self.alloc_exhausted
            )?;
        }
        if self.reconstructed_reads > 0 || self.parity_writes > 0 {
            write!(
                f,
                " reconstructed={} parity-writes={}",
                self.reconstructed_reads, self.parity_writes
            )?;
            if self.hedged_reads > 0 {
                write!(f, " hedged={}", self.hedged_reads)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = IoStats::default();
        s.record_read(4);
        s.record_read(2);
        s.record_write(4);
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.blocks_read, 6);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.blocks_written, 4);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn parallelism_ratios() {
        let mut s = IoStats::default();
        assert_eq!(s.read_parallelism(), 0.0);
        s.record_read(4);
        s.record_read(2);
        assert!((s.read_parallelism() - 3.0).abs() < 1e-12);
        s.record_write(5);
        assert!((s.write_parallelism() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn since_isolates_a_phase() {
        let mut s = IoStats::default();
        s.record_read(3);
        let mark = s;
        s.record_read(1);
        s.record_write(2);
        let phase = s.since(&mark);
        assert_eq!(phase.read_ops, 1);
        assert_eq!(phase.blocks_read, 1);
        assert_eq!(phase.write_ops, 1);
    }

    #[test]
    fn merged_sums_counters() {
        let mut a = IoStats::default();
        a.record_read(2);
        let mut b = IoStats::default();
        b.record_write(3);
        let m = a.merged(&b);
        assert_eq!(m.read_ops, 1);
        assert_eq!(m.write_ops, 1);
        assert_eq!(m.blocks_read, 2);
        assert_eq!(m.blocks_written, 3);
    }

    #[test]
    fn retries_tracked_separately_from_logical_ops() {
        let mut s = IoStats::default();
        s.record_read(4);
        s.record_read_retry();
        s.record_read_retry();
        s.record_write_retry();
        assert_eq!(s.read_ops, 1, "retries must not inflate logical ops");
        assert_eq!(s.read_retries, 2);
        assert_eq!(s.write_retries, 1);
        assert_eq!(s.total_retries(), 3);
        assert!(s.to_string().contains("retries=2r/1w"));
        let mut other = IoStats::default();
        other.record_write_retry();
        assert_eq!(s.merged(&other).write_retries, 2);
        assert_eq!(s.since(&IoStats::default()).read_retries, 2);
    }

    #[test]
    fn per_op_retry_counters_are_distinct() {
        let s = IoStats {
            read_retries: 2,
            write_retries: 1,
            alloc_retries: 3,
            alloc_exhausted: 1,
            ..Default::default()
        };
        assert_eq!(s.total_retries(), 6);
        assert_eq!(s.total_exhausted(), 1);
        let text = s.to_string();
        assert!(text.contains("retries=2r/1w/3a"), "{text}");
        assert!(text.contains("exhausted=0r/0w/1a"), "{text}");
        let m = s.merged(&s);
        assert_eq!(m.alloc_retries, 6);
        assert_eq!(m.alloc_exhausted, 2);
        assert_eq!(m.since(&s), s);
    }

    #[test]
    fn parity_counters_are_separate_from_logical_ops() {
        let mut s = IoStats::default();
        s.record_read(4);
        s.record_reconstructed_read();
        s.record_parity_write();
        s.record_parity_write();
        s.hedged_reads = 1;
        assert_eq!(s.read_ops, 1, "reconstruction must not inflate read ops");
        assert_eq!(s.write_ops, 0, "parity updates must not inflate write ops");
        assert_eq!(s.reconstructed_reads, 1);
        assert_eq!(s.parity_writes, 2);
        let text = s.to_string();
        assert!(text.contains("reconstructed=1 parity-writes=2 hedged=1"), "{text}");
        assert_eq!(s.merged(&s).parity_writes, 4);
        assert_eq!(s.since(&IoStats::default()).reconstructed_reads, 1);
    }

    #[test]
    fn healthy_display_omits_degraded_counters() {
        let mut s = IoStats::default();
        s.record_read(2);
        let text = s.to_string();
        assert!(!text.contains("reconstructed") && !text.contains("exhausted"));
    }

    #[test]
    fn display_mentions_both_directions() {
        let mut s = IoStats::default();
        s.record_read(2);
        s.record_write(2);
        let text = s.to_string();
        assert!(text.contains("reads=1") && text.contains("writes=1"));
    }
}
