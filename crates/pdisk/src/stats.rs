//! I/O accounting.
//!
//! Every experiment in the paper is stated in terms of counted parallel I/O
//! operations; [`IoStats`] is the single source of truth for those counts.

use serde::{Deserialize, Serialize};

/// Counters kept by every [`crate::DiskArray`] backend.
///
/// One *parallel* read/write operation moves up to `D` blocks (one per
/// disk); `blocks_read`/`blocks_written` record the actual number moved so
/// the achieved parallelism `blocks / ops` can be reported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Number of parallel read operations issued.
    pub read_ops: u64,
    /// Number of parallel write operations issued.
    pub write_ops: u64,
    /// Total blocks transferred by reads.
    pub blocks_read: u64,
    /// Total blocks transferred by writes.
    pub blocks_written: u64,
    /// Read operations re-issued after a transient fault.
    ///
    /// Retries are accounted separately from `read_ops` so the logical
    /// I/O schedule (the quantity the paper's bounds speak about) stays
    /// comparable between faulty and fault-free runs.
    pub read_retries: u64,
    /// Write operations re-issued after a transient fault.
    pub write_retries: u64,
}

impl IoStats {
    /// Record one parallel read moving `blocks` blocks.
    #[inline]
    pub fn record_read(&mut self, blocks: usize) {
        self.read_ops += 1;
        self.blocks_read += blocks as u64;
    }

    /// Record one parallel write moving `blocks` blocks.
    #[inline]
    pub fn record_write(&mut self, blocks: usize) {
        self.write_ops += 1;
        self.blocks_written += blocks as u64;
    }

    /// Record one read retry after a transient fault.
    #[inline]
    pub fn record_read_retry(&mut self) {
        self.read_retries += 1;
    }

    /// Record one write retry after a transient fault.
    #[inline]
    pub fn record_write_retry(&mut self) {
        self.write_retries += 1;
    }

    /// Total operations re-issued after transient faults.
    #[inline]
    pub fn total_retries(&self) -> u64 {
        self.read_retries + self.write_retries
    }

    /// Total parallel operations (reads + writes).
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Mean blocks moved per read operation (read parallelism achieved).
    pub fn read_parallelism(&self) -> f64 {
        if self.read_ops == 0 {
            0.0
        } else {
            self.blocks_read as f64 / self.read_ops as f64
        }
    }

    /// Mean blocks moved per write operation (write parallelism achieved).
    pub fn write_parallelism(&self) -> f64 {
        if self.write_ops == 0 {
            0.0
        } else {
            self.blocks_written as f64 / self.write_ops as f64
        }
    }

    /// Counter-wise difference `self − earlier`; use to isolate one phase of
    /// a computation from a shared backend.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            blocks_read: self.blocks_read - earlier.blocks_read,
            blocks_written: self.blocks_written - earlier.blocks_written,
            read_retries: self.read_retries - earlier.read_retries,
            write_retries: self.write_retries - earlier.write_retries,
        }
    }

    /// Counter-wise sum.
    pub fn merged(&self, other: &IoStats) -> IoStats {
        IoStats {
            read_ops: self.read_ops + other.read_ops,
            write_ops: self.write_ops + other.write_ops,
            blocks_read: self.blocks_read + other.blocks_read,
            blocks_written: self.blocks_written + other.blocks_written,
            read_retries: self.read_retries + other.read_retries,
            write_retries: self.write_retries + other.write_retries,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} ({} blocks, {:.2}x par) writes={} ({} blocks, {:.2}x par)",
            self.read_ops,
            self.blocks_read,
            self.read_parallelism(),
            self.write_ops,
            self.blocks_written,
            self.write_parallelism()
        )?;
        if self.total_retries() > 0 {
            write!(
                f,
                " retries={}r/{}w",
                self.read_retries, self.write_retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = IoStats::default();
        s.record_read(4);
        s.record_read(2);
        s.record_write(4);
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.blocks_read, 6);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.blocks_written, 4);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn parallelism_ratios() {
        let mut s = IoStats::default();
        assert_eq!(s.read_parallelism(), 0.0);
        s.record_read(4);
        s.record_read(2);
        assert!((s.read_parallelism() - 3.0).abs() < 1e-12);
        s.record_write(5);
        assert!((s.write_parallelism() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn since_isolates_a_phase() {
        let mut s = IoStats::default();
        s.record_read(3);
        let mark = s;
        s.record_read(1);
        s.record_write(2);
        let phase = s.since(&mark);
        assert_eq!(phase.read_ops, 1);
        assert_eq!(phase.blocks_read, 1);
        assert_eq!(phase.write_ops, 1);
    }

    #[test]
    fn merged_sums_counters() {
        let mut a = IoStats::default();
        a.record_read(2);
        let mut b = IoStats::default();
        b.record_write(3);
        let m = a.merged(&b);
        assert_eq!(m.read_ops, 1);
        assert_eq!(m.write_ops, 1);
        assert_eq!(m.blocks_read, 2);
        assert_eq!(m.blocks_written, 3);
    }

    #[test]
    fn retries_tracked_separately_from_logical_ops() {
        let mut s = IoStats::default();
        s.record_read(4);
        s.record_read_retry();
        s.record_read_retry();
        s.record_write_retry();
        assert_eq!(s.read_ops, 1, "retries must not inflate logical ops");
        assert_eq!(s.read_retries, 2);
        assert_eq!(s.write_retries, 1);
        assert_eq!(s.total_retries(), 3);
        assert!(s.to_string().contains("retries=2r/1w"));
        let mut other = IoStats::default();
        other.record_write_retry();
        assert_eq!(s.merged(&other).write_retries, 2);
        assert_eq!(s.since(&IoStats::default()).read_retries, 2);
    }

    #[test]
    fn display_mentions_both_directions() {
        let mut s = IoStats::default();
        s.record_read(2);
        s.record_write(2);
        let text = s.to_string();
        assert!(text.contains("reads=1") && text.contains("writes=1"));
    }
}
