//! # pdisk — the Vitter–Shriver parallel disk model
//!
//! This crate implements the machine model that the SRM paper (Barve, Grove,
//! Vitter, SPAA '96) assumes: an internal memory of `M` records, `D`
//! independent disks, and parallel I/O operations that move **at most one
//! block of `B` contiguous records per disk** in a single operation.
//!
//! The crate provides:
//!
//! * [`Geometry`] — the `(D, B, M)` machine description plus the derived
//!   merge orders for SRM and DSM straight from the paper's formulas;
//! * [`Record`] — the record abstraction (a `u64` sort key plus a fixed-size
//!   binary encoding so records can live on real disk files);
//! * [`Block`] — a block of `B` records plus the *forecasting format*
//!   metadata of §4 of the paper (implanted future keys);
//! * [`DiskArray`] — the parallel I/O interface.  Every call to
//!   [`DiskArray::read`] / [`DiskArray::write`] is **one** parallel I/O
//!   operation and is counted as such in [`IoStats`];
//! * [`MemDiskArray`] — the in-memory simulation backend used for exact I/O
//!   accounting experiments (the paper's own evaluation substrate);
//! * [`FileDiskArray`] — a real backend storing each simulated disk in its
//!   own file, executing the per-disk transfers of one parallel operation on
//!   dedicated worker threads;
//! * [`StripedRun`] — cyclically striped run layout (block `i` of a run with
//!   start disk `d_r` lives on disk `(d_r + i) mod D`, §3 of the paper);
//! * [`timing`] — a seek/rotate/transfer service-time model to convert
//!   operation counts into estimated wall time on a physical disk array;
//! * [`faulty`] / [`retry`] — the fault-tolerance layer: a scriptable
//!   transient/permanent fault model ([`FaultModel`]) and a bounded-retry
//!   wrapper ([`RetryingDiskArray`]) that absorbs transient faults with
//!   simulated backoff while counting retries in [`IoStats`];
//! * [`parity`] — single-disk-failure tolerance: [`ParityDiskArray`] adds
//!   RAID-5-style rotating parity over any backend, serves a dead disk's
//!   blocks by reconstruction (degraded mode), rebuilds onto a spare
//!   online, and hedges straggler reads via [`ArrayTiming`];
//! * [`crash`] — deterministic crash-point injection: [`CrashingDiskArray`]
//!   numbers every I/O boundary with a shared [`CrashClock`] and can kill
//!   the (simulated) process at any one of them, including torn multi-disk
//!   writes where only a prefix of the frames landed.
//!
//! Stack order for a fully protected array, bottom to top:
//! `RetryingDiskArray(ParityDiskArray(FaultyDiskArray(backend)))` — the
//! parity layer absorbs *permanent* faults from below; *transient* faults
//! pass through it to the retry layer above.

#![forbid(unsafe_code)]

pub mod addr;
pub mod backend;
pub mod block;
pub mod cluster;
pub mod crash;
pub mod error;
pub mod faulty;
pub mod file;
pub mod geometry;
pub mod interrupt;
pub mod lockwitness;
pub mod mem;
pub mod netfault;
pub mod parity;
pub mod pool;
pub mod record;
pub mod retry;
pub mod stats;
pub mod striping;
pub mod timing;
pub mod trace;

pub use addr::{BlockAddr, DiskId};
pub use backend::{DiskArray, ReadTicket, RedundancyInfo, ScrubOutcome, WriteTicket};
pub use block::{Block, Forecast};
pub use cluster::ClusteredDiskArray;
pub use crash::{CrashClock, CrashingDiskArray};
pub use error::{FaultKind, FaultOp, PdiskError, Result};
pub use faulty::{FaultModel, FaultPlan, FaultyDiskArray, ScriptedFault};
pub use file::{FileDiskArray, PrefetchStats, WRITE_BEHIND_LIMIT};
pub use geometry::Geometry;
pub use interrupt::InterruptFlag;
pub use mem::MemDiskArray;
pub use netfault::{Delivery, NetFault, NetFaultModel, PartitionWindow, ScriptedNetFault};
pub use parity::ParityDiskArray;
pub use pool::{BufferPool, PoolStats};
pub use record::{KeyPayloadRecord, Record, U64Record};
pub use retry::{Jitter, RetryCounters, RetryPolicy, RetryingDiskArray};
pub use stats::IoStats;
pub use striping::StripedRun;
pub use timing::{ArrayTiming, DiskModel};
pub use trace::{TraceEvent, TraceSink, TracingDiskArray};
