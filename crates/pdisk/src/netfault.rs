//! Seeded fault model for **message channels** between simulated nodes.
//!
//! [`crate::faulty`] decides the fate of *disk operations*; this module is
//! its sibling for the links of a distributed sort (`srm-dist`): every
//! message send is a pure-hash trial that may **drop**, **delay**
//! (reorder behind later traffic), or **duplicate** the message, plus
//! scripted per-edge faults and **partition windows** that cut one node
//! off from the rest for a span of sends.
//!
//! Like the disk fault model, decisions are a *pure function* of
//! `(seed, src, dst, edge ordinal)` — no shared RNG stream — so the same
//! seed produces the same fault schedule regardless of thread
//! interleaving, and a recovery run re-deciding the same edge ordinals
//! sees the same faults.  The model only *decides*; the channel wrapper
//! that owns the mailboxes (in `srm-dist`) applies the verdicts.

/// What happens to one message on one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The message vanishes; the sender learns nothing.
    Drop,
    /// Delivery is deferred until `n` further sends have entered the
    /// network (a bounded reordering, as on a retransmitting link).
    Delay(u64),
    /// The message is delivered twice (as after an ack loss and
    /// retransmit at a lower layer).
    Duplicate,
}

/// A fault pinned to one `(src, dst)` edge's `ordinal`-th send, for
/// deterministic drills — the channel analogue of
/// [`crate::faulty::ScriptedFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedNetFault {
    /// Sending node (the coordinator is node ID `P` by `srm-dist`
    /// convention; shards are `0..P`).
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Zero-based count of sends on this edge before the fault fires.
    pub ordinal: u64,
    /// The injected fault.
    pub fault: NetFault,
}

/// A span of global send ordinals during which `node` is cut off from
/// every other node: messages with exactly one endpoint equal to `node`
/// are dropped while `from <= global_ordinal < until`.
///
/// The window is measured in *sends*, not wall time, so it is
/// deterministic under any interleaving — and because heartbeats keep
/// entering the network (and being dropped), the global ordinal keeps
/// advancing and every partition eventually heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// The isolated node.
    pub node: u32,
    /// First global send ordinal inside the partition.
    pub from: u64,
    /// First global send ordinal after the partition heals.
    pub until: u64,
}

/// The model's verdict for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver normally.
    Deliver,
    /// Apply the given fault.
    Fault(NetFault),
}

/// Seeded, scriptable fault model for node-to-node messages.
///
/// All rates are probabilities in `[0, 1)`, tried independently per send
/// in the order *partition → scripted → drop → duplicate → delay*; the
/// first verdict wins.
#[derive(Debug, Clone, Default)]
pub struct NetFaultModel {
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
    delay_rate: f64,
    max_delay: u64,
    scripted: Vec<ScriptedNetFault>,
    partitions: Vec<PartitionWindow>,
}

impl NetFaultModel {
    /// A model that never injects anything.
    pub fn none() -> Self {
        NetFaultModel::default()
    }

    /// A seeded model with all rates zero; compose with the builders.
    pub fn seeded(seed: u64) -> Self {
        NetFaultModel {
            seed,
            max_delay: 4,
            ..NetFaultModel::default()
        }
    }

    /// Set the per-send drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "drop rate must be in [0, 1)");
        self.drop_rate = rate;
        self
    }

    /// Set the per-send duplication probability.
    pub fn with_dup_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dup rate must be in [0, 1)");
        self.dup_rate = rate;
        self
    }

    /// Set the per-send delay probability; a delayed message waits
    /// between 1 and `max_delay` further sends before delivery.
    pub fn with_delay_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "delay rate must be in [0, 1)");
        self.delay_rate = rate;
        self
    }

    /// Bound the reordering window of seeded delays (default 4 sends).
    pub fn with_max_delay(mut self, max_delay: u64) -> Self {
        assert!(max_delay >= 1, "max delay must be at least one send");
        self.max_delay = max_delay;
        self
    }

    /// Script a fault on the `ordinal`-th send from `src` to `dst`.
    pub fn script(mut self, src: u32, dst: u32, ordinal: u64, fault: NetFault) -> Self {
        self.scripted.push(ScriptedNetFault {
            src,
            dst,
            ordinal,
            fault,
        });
        self
    }

    /// Cut `node` off from everyone for global send ordinals
    /// `[from, until)`.
    pub fn partition(mut self, node: u32, from: u64, until: u64) -> Self {
        assert!(from < until, "partition window must be non-empty");
        self.partitions.push(PartitionWindow { node, from, until });
        self
    }

    /// True if any configured fault source could fire (lets callers skip
    /// bookkeeping entirely on the fault-free path).
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || !self.scripted.is_empty()
            || !self.partitions.is_empty()
    }

    /// True if a `src → dst` message at `global_ordinal` crosses an open
    /// partition boundary.
    pub fn partitioned(&self, src: u32, dst: u32, global_ordinal: u64) -> bool {
        self.partitions.iter().any(|w| {
            (w.from..w.until).contains(&global_ordinal) && ((src == w.node) != (dst == w.node))
        })
    }

    /// A uniform `[0, 1)` draw that is a pure function of
    /// `(seed, src, dst, edge ordinal, salt)`: splitmix64 over the packed
    /// trial identity, exactly as [`crate::faulty`] does for disk ops.
    /// `salt` separates the drop, duplicate, and delay trials one send
    /// makes on the same edge.
    fn trial(&self, src: u32, dst: u32, edge_ordinal: u64, salt: u64) -> f64 {
        let edge_tag = (u64::from(src) << 32) | u64::from(dst);
        let mut x = self
            .seed
            .wrapping_add(edge_ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(edge_tag.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of the `edge_ordinal`-th send from `src` to `dst`,
    /// which is the `global_ordinal`-th send network-wide.  Pure: the
    /// same arguments always yield the same verdict.
    pub fn decide(
        &self,
        src: u32,
        dst: u32,
        edge_ordinal: u64,
        global_ordinal: u64,
    ) -> Delivery {
        if self.partitioned(src, dst, global_ordinal) {
            return Delivery::Fault(NetFault::Drop);
        }
        if let Some(s) = self
            .scripted
            .iter()
            .find(|s| s.src == src && s.dst == dst && s.ordinal == edge_ordinal)
        {
            return Delivery::Fault(s.fault);
        }
        if self.drop_rate > 0.0 && self.trial(src, dst, edge_ordinal, 1) < self.drop_rate {
            return Delivery::Fault(NetFault::Drop);
        }
        if self.dup_rate > 0.0 && self.trial(src, dst, edge_ordinal, 2) < self.dup_rate {
            return Delivery::Fault(NetFault::Duplicate);
        }
        if self.delay_rate > 0.0 && self.trial(src, dst, edge_ordinal, 3) < self.delay_rate {
            let span = self.max_delay.max(1);
            let slots = 1 + (self.trial(src, dst, edge_ordinal, 4) * span as f64) as u64;
            return Delivery::Fault(NetFault::Delay(slots.min(span)));
        }
        Delivery::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_model_always_delivers() {
        let m = NetFaultModel::none();
        for i in 0..100 {
            assert_eq!(m.decide(0, 1, i, i), Delivery::Deliver);
        }
        assert!(!m.is_active());
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let m = NetFaultModel::seeded(42).with_drop_rate(0.3).with_delay_rate(0.3);
        for i in 0..200 {
            assert_eq!(m.decide(2, 7, i, i), m.decide(2, 7, i, i + 1000));
        }
        // A clone decides identically: no hidden mutable state.
        let m2 = m.clone();
        for i in 0..200 {
            assert_eq!(m.decide(1, 3, i, 0), m2.decide(1, 3, i, 0));
        }
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let m = NetFaultModel::seeded(7).with_drop_rate(0.25);
        let dropped = (0..4000)
            .filter(|&i| m.decide(0, 1, i, i) == Delivery::Fault(NetFault::Drop))
            .count();
        assert!((800..1200).contains(&dropped), "dropped {dropped}/4000");
    }

    #[test]
    fn scripted_fault_fires_on_its_edge_and_ordinal_only() {
        let m = NetFaultModel::seeded(1).script(3, 0, 5, NetFault::Duplicate);
        assert_eq!(m.decide(3, 0, 5, 99), Delivery::Fault(NetFault::Duplicate));
        assert_eq!(m.decide(3, 0, 4, 99), Delivery::Deliver);
        assert_eq!(m.decide(0, 3, 5, 99), Delivery::Deliver);
    }

    #[test]
    fn partition_cuts_exactly_the_crossing_edges_for_its_window() {
        let m = NetFaultModel::seeded(1).partition(2, 10, 20);
        // Crossing edges inside the window drop, both directions.
        assert_eq!(m.decide(2, 0, 0, 10), Delivery::Fault(NetFault::Drop));
        assert_eq!(m.decide(0, 2, 0, 19), Delivery::Fault(NetFault::Drop));
        // Non-crossing traffic is untouched.
        assert_eq!(m.decide(0, 1, 0, 15), Delivery::Deliver);
        // Outside the window the edge heals.
        assert_eq!(m.decide(2, 0, 0, 9), Delivery::Deliver);
        assert_eq!(m.decide(2, 0, 0, 20), Delivery::Deliver);
        assert!(m.partitioned(2, 1, 10));
        assert!(!m.partitioned(2, 1, 20));
    }

    #[test]
    fn seeded_delay_is_bounded_by_max_delay() {
        let m = NetFaultModel::seeded(9).with_delay_rate(0.9).with_max_delay(3);
        for i in 0..500 {
            if let Delivery::Fault(NetFault::Delay(n)) = m.decide(1, 2, i, i) {
                assert!((1..=3).contains(&n), "delay {n} out of bounds");
            }
        }
    }
}
