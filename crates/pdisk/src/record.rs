//! Record abstraction.
//!
//! The paper sorts fixed-size records by a key.  We require every record
//! type to expose a `u64` sort key and a fixed-size binary encoding so the
//! same algorithms run unchanged on the in-memory backend (where encoding is
//! never exercised) and on the real-file backend.

/// A sortable, fixed-size record.
///
/// Keys need not be distinct: the merge engines break ties deterministically
/// by run order, so the paper's "all keys distinct" simplification is not a
/// requirement of this implementation.
pub trait Record: Copy + Send + Sync + 'static {
    /// Encoded size in bytes (fixed per type).
    const ENCODED_LEN: usize;

    /// The sort key.
    fn key(&self) -> u64;

    /// Serialize into exactly `Self::ENCODED_LEN` bytes.
    ///
    /// # Panics
    /// Implementations may panic if `out.len() != Self::ENCODED_LEN`.
    fn encode(&self, out: &mut [u8]);

    /// Deserialize from exactly `Self::ENCODED_LEN` bytes.
    fn decode(bytes: &[u8]) -> Self;
}

/// The minimal record: the key is the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct U64Record(pub u64);

impl Record for U64Record {
    const ENCODED_LEN: usize = 8;

    #[inline]
    fn key(&self) -> u64 {
        self.0
    }

    #[inline]
    fn encode(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn decode(bytes: &[u8]) -> Self {
        U64Record(u64::from_le_bytes(bytes.try_into().expect("8-byte record"))) // lint:allow(panic) decode's length contract
    }
}

/// A key plus an opaque fixed-size payload — the shape of a typical database
/// tuple or log entry.  `P` is the payload size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyPayloadRecord<const P: usize> {
    /// Sort key.
    pub key: u64,
    /// Payload carried along unchanged by sorting.
    pub payload: [u8; P],
}

impl<const P: usize> KeyPayloadRecord<P> {
    /// Build a record with a payload derived from the key (useful for
    /// tests that must check payloads travel with their keys).
    pub fn with_derived_payload(key: u64) -> Self {
        let mut payload = [0u8; P];
        let tag = key.to_le_bytes();
        for (i, b) in payload.iter_mut().enumerate() {
            *b = tag[i % 8] ^ (i as u8);
        }
        KeyPayloadRecord { key, payload }
    }
}

impl<const P: usize> Record for KeyPayloadRecord<P> {
    const ENCODED_LEN: usize = 8 + P;

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..].copy_from_slice(&self.payload);
    }

    fn decode(bytes: &[u8]) -> Self {
        let key = u64::from_le_bytes(bytes[..8].try_into().expect("key bytes")); // lint:allow(panic) decode's length contract
        let mut payload = [0u8; P];
        payload.copy_from_slice(&bytes[8..]);
        KeyPayloadRecord { key, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_record_roundtrip() {
        let r = U64Record(0xDEAD_BEEF_0123_4567);
        let mut buf = [0u8; 8];
        r.encode(&mut buf);
        assert_eq!(U64Record::decode(&buf), r);
        assert_eq!(r.key(), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn payload_record_roundtrip() {
        let r = KeyPayloadRecord::<24>::with_derived_payload(42);
        let mut buf = [0u8; 32];
        r.encode(&mut buf);
        let back = KeyPayloadRecord::<24>::decode(&buf);
        assert_eq!(back, r);
        assert_eq!(back.key(), 42);
    }

    #[test]
    fn derived_payloads_differ_across_keys() {
        let a = KeyPayloadRecord::<16>::with_derived_payload(1);
        let b = KeyPayloadRecord::<16>::with_derived_payload(2);
        assert_ne!(a.payload, b.payload);
    }

    #[test]
    fn encoded_len_matches_constant() {
        assert_eq!(U64Record::ENCODED_LEN, 8);
        assert_eq!(KeyPayloadRecord::<24>::ENCODED_LEN, 32);
    }
}
