//! Disk and block addressing.

use serde::{Deserialize, Serialize};

/// Identifier of one of the `D` independent disks, `0 ..= D-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId(pub u32);

impl DiskId {
    /// Index into per-disk vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A `DiskId` from a per-disk vector index.
    ///
    /// This (with [`DiskId::from_mod`]) is the one blessed narrowing into
    /// a disk id; everywhere else `cargo xtask lint` rejects `as` casts in
    /// `DiskId` construction.  [`crate::Geometry::new`] guarantees
    /// `D ≤ u32::MAX`, so indices of in-range disks always fit.
    #[inline]
    pub fn from_index(i: usize) -> DiskId {
        debug_assert!(i <= u32::MAX as usize, "disk index {i} exceeds u32");
        DiskId(i as u32) // lint:allow(cast) guarded by Geometry::new's D bound
    }

    /// The disk `value mod d` — the cyclic-striping conversion (§3).
    ///
    /// The result is `< d ≤ u32::MAX`, so the narrowing cannot truncate.
    #[inline]
    pub fn from_mod(value: u64, d: usize) -> DiskId {
        debug_assert!(d > 0 && d <= u32::MAX as usize);
        DiskId((value % d as u64) as u32) // lint:allow(cast) result < d
    }
}

impl std::fmt::Display for DiskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Address of one block slot: a disk plus a block-granular offset on it.
///
/// Offsets are abstract slot numbers handed out by the backend's allocator;
/// the file backend maps them to byte offsets, the memory backend to vector
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Which disk the block lives on.
    pub disk: DiskId,
    /// Block-granular offset on that disk.
    pub offset: u64,
}

impl BlockAddr {
    /// Construct an address.
    #[inline]
    pub fn new(disk: DiskId, offset: u64) -> Self {
        BlockAddr { disk, offset }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_disk_then_offset() {
        let a = BlockAddr::new(DiskId(0), 9);
        let b = BlockAddr::new(DiskId(1), 0);
        let c = BlockAddr::new(DiskId(1), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_and_index() {
        assert_eq!(DiskId(7).to_string(), "d7");
        assert_eq!(DiskId(7).index(), 7);
    }
}
