//! Fault injection: a scriptable fault model over any backend.
//!
//! Real disk arrays fail; a library someone would adopt must surface
//! those failures as errors, not panics or silent corruption.  This
//! module provides two layers:
//!
//! * [`FaultPlan`] — the simple deterministic script ("fail the n-th
//!   read"), kept for precise error-path tests;
//! * [`FaultModel`] — the general model: scripted *and* seeded-random
//!   faults, transient vs. permanent ([`FaultKind`]), per-disk fault
//!   rates, and detected-corruption faults.  Random faults are driven
//!   by a dedicated RNG seeded explicitly, so every faulty run is
//!   reproducible from `(workload seed, fault seed)`.
//!
//! Faulted operations charge **no I/O** to the inner backend (the
//! backend is never invoked), so the inner [`IoStats`] always reflects
//! logical, successful operations; recovery work is visible separately
//! through [`crate::retry::RetryingDiskArray`]'s retry counters.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket};
use crate::block::Block;
use crate::error::{FaultKind, FaultOp, PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::trace::{TraceEvent, TraceSink};
use std::collections::BTreeSet;

/// Which operations to fail, counted from 0 over the wrapper's lifetime.
///
/// The plan is the deterministic core of the fault model: each set
/// ordinal fails exactly once, as a [`FaultKind::Transient`] fault.
/// Convert into a [`FaultModel`] (via `Into`) to add random faults,
/// permanent faults, or corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the read with this ordinal (0-based), if set.
    pub fail_read: Option<u64>,
    /// Fail the write with this ordinal (0-based), if set.
    pub fail_write: Option<u64>,
    /// Fail the allocation with this ordinal (0-based), if set.
    pub fail_alloc: Option<u64>,
}

impl FaultPlan {
    /// Fail the `n`-th read.
    pub fn read(n: u64) -> Self {
        FaultPlan {
            fail_read: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Fail the `n`-th write.
    pub fn write(n: u64) -> Self {
        FaultPlan {
            fail_write: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Fail the `n`-th allocation.
    pub fn alloc(n: u64) -> Self {
        FaultPlan {
            fail_alloc: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Also fail the `n`-th read.
    pub fn and_read(mut self, n: u64) -> Self {
        self.fail_read = Some(n);
        self
    }

    /// Also fail the `n`-th write.
    pub fn and_write(mut self, n: u64) -> Self {
        self.fail_write = Some(n);
        self
    }

    /// Also fail the `n`-th allocation.
    pub fn and_alloc(mut self, n: u64) -> Self {
        self.fail_alloc = Some(n);
        self
    }
}

/// A single scripted fault: fail the `ordinal`-th operation of kind
/// `op`, once, with the given persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    pub op: FaultOp,
    /// 0-based ordinal among operations of this kind.
    pub ordinal: u64,
    pub kind: FaultKind,
}

/// The general fault model: scripted one-shot faults plus seeded-random
/// transient faults at per-disk rates, plus detected-corruption faults.
///
/// Random fault decisions are made per *disk touched* by an operation,
/// so wider (more parallel) operations are proportionally more exposed
/// — matching the independent-disks failure assumption of the
/// Vitter–Shriver model this repo simulates.
#[derive(Debug, Clone)]
pub struct FaultModel {
    scripted: Vec<ScriptedFault>,
    /// Probability a read op faults transiently, per disk touched.
    read_rate: f64,
    /// Probability a write op faults transiently, per disk touched.
    write_rate: f64,
    /// Probability a read op reports detected corruption (a torn read
    /// caught by checksums), per disk touched.  Retryable.
    corrupt_rate: f64,
    /// Per-disk multipliers on the random rates; `1.0` when absent, so
    /// an empty vector means uniform exposure.
    disk_weights: Vec<f64>,
    /// Seed for random trials.  Each trial derives its draw as a pure
    /// hash of `(seed, op kind, per-kind ordinal, disk)` — never from a
    /// shared stream — so fault decisions depend only on *which*
    /// operation this is, not on how reads and writes interleave.  The
    /// pipelined engines submit the same Nth read and Nth write as the
    /// serial engines, so both see byte-identical fault sequences.
    seed: u64,
    /// Disks that have suffered a permanent fault; every later
    /// operation touching them fails permanently.
    dead: BTreeSet<DiskId>,
    /// Disks that are out of space; writes and allocations touching
    /// them fail with [`FaultKind::NoSpace`] until [`Self::free_space`]
    /// clears the condition.  Reads are unaffected — the data already
    /// on a full disk is still readable.
    full: BTreeSet<DiskId>,
    /// Read ordinals that return detected corruption, each exactly
    /// once.  The scripted counterpart of `corrupt_rate`, used by the
    /// chaos engine to place corruption deterministically.
    corrupt_at: Vec<u64>,
}

impl FaultModel {
    /// A model that never faults.
    pub fn none() -> Self {
        Self::random(0)
    }

    /// A model whose random draws are reproducible from `seed`.
    /// All rates start at zero; configure with the builder methods.
    pub fn random(seed: u64) -> Self {
        FaultModel {
            scripted: Vec::new(),
            read_rate: 0.0,
            write_rate: 0.0,
            corrupt_rate: 0.0,
            disk_weights: Vec::new(),
            seed,
            dead: BTreeSet::new(),
            full: BTreeSet::new(),
            corrupt_at: Vec::new(),
        }
    }

    /// Transient-fault probability per disk touched, for reads.
    pub fn with_read_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.read_rate = rate;
        self
    }

    /// Transient-fault probability per disk touched, for writes.
    pub fn with_write_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.write_rate = rate;
        self
    }

    /// Transient-fault probability per disk touched, both directions.
    pub fn with_rate(self, rate: f64) -> Self {
        self.with_read_rate(rate).with_write_rate(rate)
    }

    /// Detected-corruption probability per disk touched, for reads.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.corrupt_rate = rate;
        self
    }

    /// Per-disk multipliers on the random rates (index = disk id).
    /// Disks beyond the vector keep weight `1.0`; use e.g.
    /// `vec![4.0, 1.0, 1.0]` for one flaky disk in three.
    pub fn with_disk_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        self.disk_weights = weights;
        self
    }

    /// Add a scripted one-shot fault.
    pub fn with_scripted(mut self, fault: ScriptedFault) -> Self {
        self.scripted.push(fault);
        self
    }

    /// Script a permanent fault on the `ordinal`-th operation of kind
    /// `op`: the first disk that operation touches dies.
    pub fn kill_at(self, op: FaultOp, ordinal: u64) -> Self {
        self.with_scripted(ScriptedFault {
            op,
            ordinal,
            kind: FaultKind::Permanent,
        })
    }

    /// Script an out-of-space fault on the `ordinal`-th operation of
    /// kind `op`: the first disk that operation touches fills up and
    /// stays full (writes and allocations keep failing) until
    /// [`Self::free_space`] is called.
    pub fn fill_at(self, op: FaultOp, ordinal: u64) -> Self {
        self.with_scripted(ScriptedFault {
            op,
            ordinal,
            kind: FaultKind::NoSpace,
        })
    }

    /// Script a sync (fsync) failure on the `ordinal`-th durability
    /// barrier.  Sync ordinals are counted separately from reads,
    /// writes, and allocations, so scripting one does not shift any
    /// other fault schedule.
    pub fn fail_sync_at(self, ordinal: u64) -> Self {
        self.with_scripted(ScriptedFault {
            op: FaultOp::Sync,
            ordinal,
            kind: FaultKind::Transient,
        })
    }

    /// Script detected corruption on the `ordinal`-th read: the read
    /// fails its checksum exactly once; the retry gets the good copy.
    pub fn corrupt_at(mut self, ordinal: u64) -> Self {
        self.corrupt_at.push(ordinal);
        self
    }

    /// Disks currently marked permanently failed.
    pub fn dead_disks(&self) -> impl Iterator<Item = DiskId> + '_ {
        self.dead.iter().copied()
    }

    /// Administratively kill `disk` now: every later operation touching
    /// it fails permanently.  Used by tests and the CLI's `--kill-disk`
    /// to model a mid-sort head crash at an exact point.
    pub fn kill_disk(&mut self, disk: DiskId) {
        self.dead.insert(disk);
    }

    /// A spare has been attached in place of `disk`: the slot works
    /// again.  Models the swap that precedes an online rebuild; returns
    /// whether the disk was actually dead.
    pub fn attach_spare(&mut self, disk: DiskId) -> bool {
        self.dead.remove(&disk)
    }

    /// Disks currently out of space.
    pub fn full_disks(&self) -> impl Iterator<Item = DiskId> + '_ {
        self.full.iter().copied()
    }

    /// Administratively mark `disk` out of space now: writes and
    /// allocations touching it fail with [`FaultKind::NoSpace`] until
    /// [`Self::free_space`] is called.  Reads keep working.
    pub fn fill_disk(&mut self, disk: DiskId) {
        self.full.insert(disk);
    }

    /// The operator freed space on `disk` (deleted files, grew the
    /// volume): writes work again.  Returns whether the disk was
    /// actually full.
    pub fn free_space(&mut self, disk: DiskId) -> bool {
        self.full.remove(&disk)
    }

    fn weight(&self, disk: DiskId) -> f64 {
        self.disk_weights.get(disk.0 as usize).copied().unwrap_or(1.0)
    }

    fn rate_for(&self, op: FaultOp) -> f64 {
        match op {
            FaultOp::Read => self.read_rate,
            FaultOp::Write => self.write_rate,
            FaultOp::Alloc | FaultOp::Sync => 0.0,
        }
    }

    /// A uniform `[0, 1)` draw that is a pure function of
    /// `(seed, op, ordinal, disk, salt)`: splitmix64 over the packed
    /// trial identity.  `salt` separates the transient and corruption
    /// trials an op makes against the same disk.
    fn trial(&self, op: FaultOp, ordinal: u64, disk: DiskId, salt: u64) -> f64 {
        let op_tag = match op {
            FaultOp::Read => 1u64,
            FaultOp::Write => 2,
            FaultOp::Alloc => 3,
            FaultOp::Sync => 4,
        };
        let mut x = self
            .seed
            .wrapping_add(ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(op_tag.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(u64::from(disk.0).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(salt);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of the `ordinal`-th operation of kind `op`
    /// touching `disks`.  `Ok(())` lets the operation proceed.
    fn check(&mut self, op: FaultOp, ordinal: u64, disks: &[DiskId]) -> Result<()> {
        // A dead disk fails everything addressed to it, forever.
        if let Some(&disk) = disks.iter().find(|d| self.dead.contains(d)) {
            return Err(PdiskError::Fault {
                kind: FaultKind::Permanent,
                op,
                disk: Some(disk),
            });
        }
        // A full disk fails writes and allocations (reads still work)
        // until the operator frees space.
        if matches!(op, FaultOp::Write | FaultOp::Alloc) {
            if let Some(&disk) = disks.iter().find(|d| self.full.contains(d)) {
                return Err(PdiskError::Fault {
                    kind: FaultKind::NoSpace,
                    op,
                    disk: Some(disk),
                });
            }
        }
        // Scripted faults fire exactly once each.
        if let Some(pos) = self
            .scripted
            .iter()
            .position(|s| s.op == op && s.ordinal == ordinal)
        {
            let fault = self.scripted.swap_remove(pos);
            let disk = disks.first().copied();
            match fault.kind {
                // Sticky kinds latch their state so every later
                // operation sees the condition, not just this one.
                FaultKind::Permanent => {
                    if let Some(d) = disk {
                        self.dead.insert(d);
                    }
                }
                FaultKind::NoSpace => {
                    if let Some(d) = disk {
                        self.full.insert(d);
                    }
                }
                FaultKind::Transient => {}
            }
            return Err(PdiskError::Fault {
                kind: fault.kind,
                op,
                disk,
            });
        }
        // Scripted corruption fires exactly once per listed ordinal.
        if op == FaultOp::Read {
            if let Some(pos) = self.corrupt_at.iter().position(|&n| n == ordinal) {
                self.corrupt_at.swap_remove(pos);
                let disk = disks.first().map_or(0, |d| d.0);
                return Err(PdiskError::Corrupt(format!(
                    "injected checksum mismatch on disk {disk}"
                )));
            }
        }
        // Random transient faults, one independent trial per disk.
        let rate = self.rate_for(op);
        if rate > 0.0 {
            for &disk in disks {
                let p = (rate * self.weight(disk)).min(1.0);
                if p > 0.0 && self.trial(op, ordinal, disk, 0) < p {
                    return Err(PdiskError::Fault {
                        kind: FaultKind::Transient,
                        op,
                        disk: Some(disk),
                    });
                }
            }
        }
        // Detected corruption: the read completes but fails its
        // checksum.  Retryable — re-reading gets the good copy.
        if op == FaultOp::Read && self.corrupt_rate > 0.0 {
            for &disk in disks {
                let p = (self.corrupt_rate * self.weight(disk)).min(1.0);
                if p > 0.0 && self.trial(op, ordinal, disk, 1) < p {
                    return Err(PdiskError::Corrupt(format!(
                        "injected checksum mismatch on disk {}",
                        disk.0
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

impl From<FaultPlan> for FaultModel {
    fn from(plan: FaultPlan) -> Self {
        let mut model = FaultModel::none();
        if let Some(n) = plan.fail_read {
            model.scripted.push(ScriptedFault {
                op: FaultOp::Read,
                ordinal: n,
                kind: FaultKind::Transient,
            });
        }
        if let Some(n) = plan.fail_write {
            model.scripted.push(ScriptedFault {
                op: FaultOp::Write,
                ordinal: n,
                kind: FaultKind::Transient,
            });
        }
        if let Some(n) = plan.fail_alloc {
            model.scripted.push(ScriptedFault {
                op: FaultOp::Alloc,
                ordinal: n,
                kind: FaultKind::Transient,
            });
        }
        model
    }
}

/// A [`DiskArray`] that injects failures per a [`FaultModel`].
#[derive(Debug)]
pub struct FaultyDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    model: FaultModel,
    reads_seen: u64,
    writes_seen: u64,
    allocs_seen: u64,
    syncs_seen: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> FaultyDiskArray<R, A> {
    /// Wrap `inner` with the given plan or model.
    pub fn new(inner: A, model: impl Into<FaultModel>) -> Self {
        FaultyDiskArray {
            inner,
            model: model.into(),
            reads_seen: 0,
            writes_seen: 0,
            allocs_seen: 0,
            syncs_seen: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Unwrap the inner backend (e.g. to inspect state after a failure).
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Operations observed so far (reads, writes).
    pub fn observed(&self) -> (u64, u64) {
        (self.reads_seen, self.writes_seen)
    }

    /// Every per-op ordinal counter: (reads, writes, allocs, syncs).
    /// A fault-free dry run exposes these so a schedule generator can
    /// draw scripted ordinals that actually land inside the sort.
    pub fn observed_ops(&self) -> (u64, u64, u64, u64) {
        (
            self.reads_seen,
            self.writes_seen,
            self.allocs_seen,
            self.syncs_seen,
        )
    }

    /// The fault model, e.g. to inspect which disks have died.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Mutable access to the fault model, e.g. to kill a disk at an
    /// exact point in a sort or to attach a spare before a rebuild.
    pub fn model_mut(&mut self) -> &mut FaultModel {
        &mut self.model
    }

    /// Record an injected fault in the trace, if tracing is active.
    fn emit_fault(&self, op: FaultOp, err: &PdiskError) {
        if let Some(sink) = self.inner.trace_sink() {
            let (kind, disk) = match err {
                PdiskError::Fault { kind, disk, .. } => (*kind, *disk),
                // Injected corruption is retryable, i.e. transient.
                _ => (FaultKind::Transient, None),
            };
            sink.emit(TraceEvent::Fault { op, kind, disk });
        }
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for FaultyDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return self.inner.read(addrs);
        }
        let ordinal = self.reads_seen;
        self.reads_seen += 1;
        let disks: Vec<DiskId> = addrs.iter().map(|a| a.disk).collect();
        if let Err(e) = self.model.check(FaultOp::Read, ordinal, &disks) {
            self.emit_fault(FaultOp::Read, &e);
            return Err(e);
        }
        self.inner.read(addrs)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return self.inner.write(writes);
        }
        let ordinal = self.writes_seen;
        self.writes_seen += 1;
        let disks: Vec<DiskId> = writes.iter().map(|(a, _)| a.disk).collect();
        if let Err(e) = self.model.check(FaultOp::Write, ordinal, &disks) {
            self.emit_fault(FaultOp::Write, &e);
            return Err(e);
        }
        self.inner.write(writes)
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let ordinal = self.allocs_seen;
        self.allocs_seen += 1;
        if let Err(e) = self.model.check(FaultOp::Alloc, ordinal, &[disk]) {
            self.emit_fault(FaultOp::Alloc, &e);
            return Err(e);
        }
        self.inner.alloc_contiguous(disk, count)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<crate::backend::RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        if addrs.is_empty() {
            return self.inner.submit_read(addrs);
        }
        // The fault decision is made at submit time against the same
        // per-read ordinal the serial path uses, so for a given seed the
        // Nth scheduled read fails identically whether the engine runs
        // serial or pipelined.
        let ordinal = self.reads_seen;
        self.reads_seen += 1;
        let disks: Vec<DiskId> = addrs.iter().map(|a| a.disk).collect();
        if let Err(e) = self.model.check(FaultOp::Read, ordinal, &disks) {
            self.emit_fault(FaultOp::Read, &e);
            return Err(e);
        }
        self.inner.submit_read(addrs)
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        self.inner.complete_read(ticket)
    }

    // submit_write / complete_write use the trait defaults, which route
    // through `self.write` and therefore this wrapper's injection logic.

    fn sync(&mut self) -> Result<()> {
        // A durability barrier is not a counted parallel op; it has its
        // own ordinal space, so seeded read/write/alloc fault sequences
        // are unchanged by how often the sorter checkpoints.  Only
        // *scripted* sync faults can fire here (random rates never
        // apply to sync), modelling fsyncgate: the barrier fails, the
        // dirty pages may be gone, and the caller must treat the data
        // it tried to persist as suspect rather than retry the sync.
        let ordinal = self.syncs_seen;
        self.syncs_seen += 1;
        if let Err(e) = self.model.check(FaultOp::Sync, ordinal, &[]) {
            self.emit_fault(FaultOp::Sync, &e);
            return Err(e);
        }
        self.inner.sync()
    }

    fn scrub_block(&mut self, addr: BlockAddr) -> Result<crate::backend::ScrubOutcome> {
        // Scrubbing verifies the media below the injector: routing it
        // through `self.read` would consume fault ordinals and make the
        // sort's fault schedule depend on whether a scrub ran.
        self.inner.scrub_block(addr)
    }

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    fn setup(
        model: impl Into<FaultModel>,
    ) -> FaultyDiskArray<U64Record, MemDiskArray<U64Record>> {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        for d in 0..2 {
            let o = inner.alloc_contiguous(DiskId(d), 4).unwrap();
            for i in 0..4 {
                inner
                    .write(vec![(
                        BlockAddr::new(DiskId(d), o + i),
                        Block::new(vec![U64Record(i)], Forecast::Next(u64::MAX)),
                    )])
                    .unwrap();
            }
        }
        inner.reset_stats();
        FaultyDiskArray::new(inner, model)
    }

    #[test]
    fn fails_exactly_the_planned_read() {
        let mut a = setup(FaultPlan::read(1));
        let addr = BlockAddr::new(DiskId(0), 0);
        assert!(a.read(&[addr]).is_ok()); // read 0
        assert!(matches!(
            a.read(&[addr]),
            Err(PdiskError::Fault {
                kind: FaultKind::Transient,
                op: FaultOp::Read,
                ..
            })
        )); // read 1
        assert!(a.read(&[addr]).is_ok()); // read 2: back to normal
        assert_eq!(a.observed().0, 3);
    }

    #[test]
    fn fails_exactly_the_planned_write() {
        let mut a = setup(FaultPlan::write(0));
        let block = Block::new(vec![U64Record(9)], Forecast::Next(u64::MAX));
        let addr = BlockAddr::new(DiskId(0), 0);
        assert!(a.write(vec![(addr, block.clone())]).is_err());
        assert!(a.write(vec![(addr, block)]).is_ok());
    }

    #[test]
    fn fails_the_planned_alloc() {
        let mut a = setup(FaultPlan::alloc(0));
        assert!(matches!(
            a.alloc_contiguous(DiskId(0), 1),
            Err(PdiskError::Fault {
                op: FaultOp::Alloc,
                ..
            })
        ));
        assert!(a.alloc_contiguous(DiskId(0), 1).is_ok());
    }

    #[test]
    fn combined_plan_fires_each_once() {
        let mut a = setup(FaultPlan::read(0).and_write(1));
        let addr = BlockAddr::new(DiskId(0), 0);
        let block = Block::new(vec![U64Record(9)], Forecast::Next(u64::MAX));
        assert!(a.read(&[addr]).is_err());
        assert!(a.read(&[addr]).is_ok());
        assert!(a.write(vec![(addr, block.clone())]).is_ok()); // write 0
        assert!(a.write(vec![(addr, block.clone())]).is_err()); // write 1
        assert!(a.write(vec![(addr, block)]).is_ok());
    }

    #[test]
    fn injected_failure_charges_no_io() {
        let mut a = setup(FaultPlan::read(0));
        let _ = a.read(&[BlockAddr::new(DiskId(0), 0)]);
        assert_eq!(a.stats().read_ops, 0, "failed op must not be counted");
    }

    #[test]
    fn passthrough_without_plan() {
        let mut a = setup(FaultPlan::default());
        for _ in 0..5 {
            assert!(a.read(&[BlockAddr::new(DiskId(0), 0)]).is_ok());
        }
        assert_eq!(a.stats().read_ops, 5);
    }

    #[test]
    fn permanent_fault_kills_the_disk() {
        let mut a = setup(FaultModel::none().kill_at(FaultOp::Read, 1));
        let d0 = BlockAddr::new(DiskId(0), 0);
        let d1 = BlockAddr::new(DiskId(1), 0);
        assert!(a.read(&[d0]).is_ok());
        assert!(matches!(
            a.read(&[d0]),
            Err(PdiskError::Fault {
                kind: FaultKind::Permanent,
                ..
            })
        ));
        // Disk 0 is dead for good; disk 1 still works.
        for _ in 0..3 {
            assert!(matches!(
                a.read(&[d0]),
                Err(PdiskError::Fault {
                    kind: FaultKind::Permanent,
                    ..
                })
            ));
        }
        assert!(a.read(&[d1]).is_ok());
        assert_eq!(a.model().dead_disks().collect::<Vec<_>>(), vec![DiskId(0)]);
        // Writes and allocs on the dead disk fail too.
        let block = Block::new(vec![U64Record(9)], Forecast::Next(u64::MAX));
        assert!(a.write(vec![(d0, block)]).is_err());
        assert!(a.alloc_contiguous(DiskId(0), 1).is_err());
    }

    #[test]
    fn kill_disk_and_attach_spare_round_trip() {
        let mut a = setup(FaultModel::none());
        let d0 = BlockAddr::new(DiskId(0), 0);
        assert!(a.read(&[d0]).is_ok());
        a.model_mut().kill_disk(DiskId(0));
        assert!(matches!(
            a.read(&[d0]),
            Err(PdiskError::Fault {
                kind: FaultKind::Permanent,
                disk: Some(DiskId(0)),
                ..
            })
        ));
        assert!(a.model_mut().attach_spare(DiskId(0)), "disk 0 was dead");
        assert!(!a.model_mut().attach_spare(DiskId(0)), "already revived");
        assert!(a.read(&[d0]).is_ok(), "spare serves the slot again");
    }

    #[test]
    fn no_space_is_sticky_until_freed_and_reads_still_work() {
        let mut a = setup(FaultModel::none().fill_at(FaultOp::Write, 0));
        let addr = BlockAddr::new(DiskId(0), 0);
        let block = Block::new(vec![U64Record(9)], Forecast::Next(u64::MAX));
        // The scripted fault fills disk 0; writes keep failing.
        for _ in 0..3 {
            assert!(matches!(
                a.write(vec![(addr, block.clone())]),
                Err(PdiskError::Fault {
                    kind: FaultKind::NoSpace,
                    op: FaultOp::Write,
                    disk: Some(DiskId(0)),
                })
            ));
        }
        assert!(a.alloc_contiguous(DiskId(0), 1).is_err(), "allocs fail too");
        // Reads of the full disk still succeed, as does I/O elsewhere.
        assert!(a.read(&[addr]).is_ok());
        assert!(a.write(vec![(BlockAddr::new(DiskId(1), 0), block.clone())]).is_ok());
        assert_eq!(a.model().full_disks().collect::<Vec<_>>(), vec![DiskId(0)]);
        // Freeing space repairs the condition.
        assert!(a.model_mut().free_space(DiskId(0)), "disk 0 was full");
        assert!(!a.model_mut().free_space(DiskId(0)), "already freed");
        assert!(a.write(vec![(addr, block)]).is_ok());
    }

    #[test]
    fn scripted_sync_fault_fires_once_on_its_own_ordinal_space() {
        let mut a = setup(FaultModel::none().fail_sync_at(1));
        let addr = BlockAddr::new(DiskId(0), 0);
        // Reads and writes never consume sync ordinals.
        assert!(a.read(&[addr]).is_ok());
        assert!(a.sync().is_ok()); // sync 0
        assert!(matches!(
            a.sync(), // sync 1
            Err(PdiskError::Fault {
                kind: FaultKind::Transient,
                op: FaultOp::Sync,
                disk: None,
            })
        ));
        assert!(a.sync().is_ok()); // sync 2: one-shot
        // The read fault schedule was not shifted by the syncs.
        assert!(a.read(&[addr]).is_ok());
    }

    #[test]
    fn scripted_corruption_fires_exactly_once() {
        let mut a = setup(FaultModel::none().corrupt_at(1));
        let addr = BlockAddr::new(DiskId(0), 0);
        assert!(a.read(&[addr]).is_ok()); // read 0
        assert!(matches!(a.read(&[addr]), Err(PdiskError::Corrupt(_)))); // read 1
        assert!(a.read(&[addr]).is_ok()); // read 2: the good copy
    }

    #[test]
    fn random_faults_are_reproducible_and_rate_bounded() {
        let run = |seed: u64| -> Vec<bool> {
            let mut a = setup(FaultModel::random(seed).with_read_rate(0.3));
            (0..200)
                .map(|_| a.read(&[BlockAddr::new(DiskId(0), 0)]).is_err())
                .collect()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same fault seed must give the same fault stream");
        assert_ne!(a, c, "different fault seeds should differ");
        let faults = a.iter().filter(|&&x| x).count();
        // 200 trials at p = 0.3: expect ~60, allow wide slack.
        assert!((20..120).contains(&faults), "got {faults} faults");
    }

    #[test]
    fn disk_weights_skew_fault_exposure() {
        let mut a = setup(
            FaultModel::random(5)
                .with_read_rate(0.2)
                .with_disk_weights(vec![0.0, 5.0]),
        );
        let mut failures = [0u32; 2];
        for _ in 0..200 {
            for d in 0..2u32 {
                if a.read(&[BlockAddr::new(DiskId(d), 0)]).is_err() {
                    failures[d as usize] += 1;
                }
            }
        }
        assert_eq!(failures[0], 0, "weight 0 disables faults on disk 0");
        assert!(failures[1] > 50, "weight 5 amplifies disk 1 faults");
    }

    #[test]
    fn corruption_faults_surface_as_corrupt() {
        let mut a = setup(FaultModel::random(9).with_corrupt_rate(1.0));
        assert!(matches!(
            a.read(&[BlockAddr::new(DiskId(0), 0)]),
            Err(PdiskError::Corrupt(_))
        ));
    }
}
