//! Fault injection: a wrapper backend that fails a chosen operation.
//!
//! Real disk arrays fail; a library someone would adopt must surface
//! those failures as errors, not panics or silent corruption.  This
//! wrapper turns the `n`-th read and/or write into an I/O error so tests
//! can drive every consumer through its error path.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::DiskArray;
use crate::block::Block;
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;

/// Which operations to fail, counted from 0 over the wrapper's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the read with this ordinal (0-based), if set.
    pub fail_read: Option<u64>,
    /// Fail the write with this ordinal (0-based), if set.
    pub fail_write: Option<u64>,
}

impl FaultPlan {
    /// Fail the `n`-th read.
    pub fn read(n: u64) -> Self {
        FaultPlan {
            fail_read: Some(n),
            fail_write: None,
        }
    }

    /// Fail the `n`-th write.
    pub fn write(n: u64) -> Self {
        FaultPlan {
            fail_read: None,
            fail_write: Some(n),
        }
    }
}

/// A [`DiskArray`] that injects failures per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    plan: FaultPlan,
    reads_seen: u64,
    writes_seen: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> FaultyDiskArray<R, A> {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: A, plan: FaultPlan) -> Self {
        FaultyDiskArray {
            inner,
            plan,
            reads_seen: 0,
            writes_seen: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Unwrap the inner backend (e.g. to inspect state after a failure).
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Operations observed so far (reads, writes).
    pub fn observed(&self) -> (u64, u64) {
        (self.reads_seen, self.writes_seen)
    }

    fn injected() -> PdiskError {
        PdiskError::Io(std::io::Error::other(
            "injected fault",
        ))
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for FaultyDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return self.inner.read(addrs);
        }
        let ordinal = self.reads_seen;
        self.reads_seen += 1;
        if self.plan.fail_read == Some(ordinal) {
            return Err(Self::injected());
        }
        self.inner.read(addrs)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return self.inner.write(writes);
        }
        let ordinal = self.writes_seen;
        self.writes_seen += 1;
        if self.plan.fail_write == Some(ordinal) {
            return Err(Self::injected());
        }
        self.inner.write(writes)
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        self.inner.alloc_contiguous(disk, count)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    fn setup(plan: FaultPlan) -> FaultyDiskArray<U64Record, MemDiskArray<U64Record>> {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let o = inner.alloc_contiguous(DiskId(0), 4).unwrap();
        for i in 0..4 {
            inner
                .write(vec![(
                    BlockAddr::new(DiskId(0), o + i),
                    Block::new(vec![U64Record(i)], Forecast::Next(u64::MAX)),
                )])
                .unwrap();
        }
        inner.reset_stats();
        FaultyDiskArray::new(inner, plan)
    }

    #[test]
    fn fails_exactly_the_planned_read() {
        let mut a = setup(FaultPlan::read(1));
        let addr = BlockAddr::new(DiskId(0), 0);
        assert!(a.read(&[addr]).is_ok()); // read 0
        assert!(matches!(a.read(&[addr]), Err(PdiskError::Io(_)))); // read 1
        assert!(a.read(&[addr]).is_ok()); // read 2: back to normal
        assert_eq!(a.observed().0, 3);
    }

    #[test]
    fn fails_exactly_the_planned_write() {
        let mut a = setup(FaultPlan::write(0));
        let block = Block::new(vec![U64Record(9)], Forecast::Next(u64::MAX));
        let addr = BlockAddr::new(DiskId(0), 0);
        assert!(a.write(vec![(addr, block.clone())]).is_err());
        assert!(a.write(vec![(addr, block)]).is_ok());
    }

    #[test]
    fn injected_failure_charges_no_io() {
        let mut a = setup(FaultPlan::read(0));
        let _ = a.read(&[BlockAddr::new(DiskId(0), 0)]);
        assert_eq!(a.stats().read_ops, 0, "failed op must not be counted");
    }

    #[test]
    fn passthrough_without_plan() {
        let mut a = setup(FaultPlan::default());
        for _ in 0..5 {
            assert!(a.read(&[BlockAddr::new(DiskId(0), 0)]).is_ok());
        }
        assert_eq!(a.stats().read_ops, 5);
    }
}
