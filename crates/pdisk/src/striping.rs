//! Cyclically striped run layout (§3).
//!
//! A run whose block 0 lives on disk `d_r` stores block `i` on disk
//! `(d_r + i) mod D`.  On each disk the run's blocks occupy consecutive
//! slots, so the whole layout is described by the start disk, the length,
//! and one base offset per disk.

use crate::addr::{BlockAddr, DiskId};
use serde::{Deserialize, Serialize};

/// Layout of one sorted run striped across the disks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripedRun {
    /// Disk holding block 0 (`d_r` in the paper; random in SRM, staggered in
    /// the deterministic variant).
    pub start_disk: DiskId,
    /// Number of blocks in the run.
    pub len_blocks: u64,
    /// Total records in the run (the final block may be partial).
    pub records: u64,
    /// `base_offsets[d]` is the slot of the run's first block on disk `d`.
    /// Entries for disks that hold none of the run's blocks are unused.
    pub base_offsets: Vec<u64>,
}

impl StripedRun {
    /// Disk holding block `i`: `(d_r + i) mod D`.
    #[inline]
    pub fn disk_of(&self, i: u64) -> DiskId {
        DiskId::from_mod(u64::from(self.start_disk.0) + i, self.base_offsets.len())
    }

    /// Full address of block `i`.
    ///
    /// Blocks `i` and `i + D` share a disk; block `i` is the `⌊i/D⌋`-th of
    /// the run's blocks on its disk.
    #[inline]
    pub fn addr_of(&self, i: u64) -> BlockAddr {
        debug_assert!(i < self.len_blocks, "block {i} out of run of {}", self.len_blocks);
        let d = self.base_offsets.len() as u64;
        let disk = self.disk_of(i);
        BlockAddr::new(disk, self.base_offsets[disk.index()] + i / d)
    }

    /// How many of the run's blocks live on disk `disk`.
    pub fn blocks_on_disk(&self, disk: DiskId) -> u64 {
        let d = self.base_offsets.len() as u64;
        let first = (disk.0 as u64 + d - self.start_disk.0 as u64) % d;
        if first >= self.len_blocks {
            0
        } else {
            1 + (self.len_blocks - 1 - first) / d
        }
    }

    /// Index of the first block of the run that lives on `disk`, if any.
    pub fn first_block_on_disk(&self, disk: DiskId) -> Option<u64> {
        let d = self.base_offsets.len() as u64;
        let first = (disk.0 as u64 + d - self.start_disk.0 as u64) % d;
        (first < self.len_blocks).then_some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(start: u32, len: u64, d: usize) -> StripedRun {
        StripedRun {
            start_disk: DiskId(start),
            len_blocks: len,
            records: len * 10,
            base_offsets: vec![0; d],
        }
    }

    #[test]
    fn disks_cycle_from_start() {
        let r = run(2, 7, 4);
        let disks: Vec<u32> = (0..7).map(|i| r.disk_of(i).0).collect();
        assert_eq!(disks, vec![2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn addresses_pack_consecutively_per_disk() {
        let mut r = run(1, 9, 3);
        r.base_offsets = vec![10, 20, 30];
        // Blocks on disk 1: i = 0, 3, 6 -> offsets 20, 21, 22.
        assert_eq!(r.addr_of(0), BlockAddr::new(DiskId(1), 20));
        assert_eq!(r.addr_of(3), BlockAddr::new(DiskId(1), 21));
        assert_eq!(r.addr_of(6), BlockAddr::new(DiskId(1), 22));
        // Blocks on disk 0: i = 2, 5, 8 -> offsets 10, 11, 12.
        assert_eq!(r.addr_of(2), BlockAddr::new(DiskId(0), 10));
        assert_eq!(r.addr_of(8), BlockAddr::new(DiskId(0), 12));
    }

    #[test]
    fn blocks_on_disk_counts_match_enumeration() {
        for start in 0..5u32 {
            for len in 0..23u64 {
                let r = run(start, len, 5);
                for disk in 0..5u32 {
                    let expected = (0..len).filter(|&i| r.disk_of(i) == DiskId(disk)).count() as u64;
                    assert_eq!(
                        r.blocks_on_disk(DiskId(disk)),
                        expected,
                        "start={start} len={len} disk={disk}"
                    );
                }
            }
        }
    }

    #[test]
    fn first_block_on_disk_matches_enumeration() {
        let r = run(3, 6, 4);
        for disk in 0..4u32 {
            let expected = (0..6).find(|&i| r.disk_of(i) == DiskId(disk));
            assert_eq!(r.first_block_on_disk(DiskId(disk)), expected);
        }
        let short = run(1, 2, 4); // disks 1,2 only
        assert_eq!(short.first_block_on_disk(DiskId(0)), None);
        assert_eq!(short.first_block_on_disk(DiskId(3)), None);
    }
}
