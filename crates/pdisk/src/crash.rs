//! Deterministic crash-point injection.
//!
//! A process crash can interrupt an external sort at *any* I/O boundary:
//! between submitting a parallel write and completing it, halfway through
//! a multi-disk write (a *torn* write where only a prefix of the frames
//! reached their disks), between committing data and updating parity, or
//! while publishing a checkpoint manifest.  This module makes that space
//! explorable **deterministically**:
//!
//! * [`CrashClock`] numbers every I/O boundary the instrumented stack
//!   passes through.  A *counting* clock never fires and merely tallies
//!   the boundaries (`N = clock.points()` after a dry run); an *armed*
//!   clock (`CrashClock::crash_at(k)`) fires at boundary `k`, after which
//!   the clock is *poisoned* — every subsequent boundary fails with the
//!   same [`PdiskError::Crashed`], mimicking a process that is simply
//!   gone.  Because boundary numbering depends only on the logical
//!   operation sequence (never on wall-clock or thread timing), a crash
//!   point observed on a dry run names the same boundary on every rerun,
//!   and a harness can exhaustively explore `k = 0..N`.
//! * [`CrashingDiskArray`] wraps the outermost array of a stack and ticks
//!   the clock before and after every read, write, submit, complete, and
//!   sync.  Parallel writes additionally get one *torn* boundary per
//!   possible prefix: if boundary `write-torn` number `j` fires during an
//!   `n`-frame write, exactly the first `j` frames land on their disks
//!   (as one narrower parallel operation) and the rest are lost —
//!   the on-disk state a real machine shows after power loss mid-stripe.
//!
//! Other components share the same clock for boundaries the wrapper
//! cannot see: [`crate::ParityDiskArray`] ticks around its parity-commit
//! step, and the sorters tick around each checkpoint-manifest write.  The
//! clock is cheap (one mutex lock per boundary) and a disarmed clock can
//! be left installed permanently.
//!
//! "Crash" here is simulated: the wrapper poisons itself and unwinds with
//! an error instead of aborting the process, so a test harness can keep
//! the underlying array (which plays the role of the disks that survive a
//! reboot), re-wrap it with a disarmed clock, and drive recovery — all in
//! one process, thousands of times per second.

use std::sync::{Arc, Mutex};

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket, RedundancyInfo, ScrubOutcome, WriteTicket};
use crate::block::Block;
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::trace::TraceSink;

struct ClockState {
    /// Number of the next boundary to be ticked.
    next: u64,
    /// Boundary at which to fire, if armed.
    crash_at: Option<u64>,
    /// Set once the crash fires: the boundary number and label that died.
    fired: Option<(u64, &'static str)>,
}

/// Shared, deterministic I/O-boundary counter (see module docs).
///
/// Clones share state, so one clock can be installed in several layers
/// (the [`CrashingDiskArray`] wrapper, the parity layer, the sorter's
/// checkpoint writer) and still produce a single global numbering.
#[derive(Clone)]
pub struct CrashClock(Arc<Mutex<ClockState>>); // srmlint::leaf — never acquire under it

impl CrashClock {
    /// A clock that never fires: boundaries are numbered and counted but
    /// every tick succeeds.  Used for the dry run that discovers `N`.
    pub fn counting() -> Self {
        CrashClock(Arc::new(Mutex::new(ClockState {
            next: 0,
            crash_at: None,
            fired: None,
        })))
    }

    /// A clock armed to fire at boundary `point` (0-based).
    pub fn crash_at(point: u64) -> Self {
        CrashClock(Arc::new(Mutex::new(ClockState {
            next: 0,
            crash_at: Some(point),
            fired: None,
        })))
    }

    fn lock(&self) -> crate::lockwitness::Witnessed<std::sync::MutexGuard<'_, ClockState>> {
        // A panic while holding the lock poisons it; the counter itself
        // is still consistent, so recover the guard.
        crate::lockwitness::guard(
            "pdisk::crash::CrashClock.0",
            self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// Pass one I/O boundary.  Fails with [`PdiskError::Crashed`] when the
    /// armed point is reached — and forever after, because a crashed
    /// process does not come back without a reboot.
    pub fn tick(&self, label: &'static str) -> Result<()> {
        let mut s = self.lock();
        if let Some((point, label)) = s.fired {
            return Err(PdiskError::Crashed { point, label });
        }
        let point = s.next;
        s.next += 1;
        if s.crash_at == Some(point) {
            s.fired = Some((point, label));
            return Err(PdiskError::Crashed { point, label });
        }
        Ok(())
    }

    /// How many boundaries have been numbered so far.  After a complete
    /// dry run with a counting clock this is `N`, the exclusive upper
    /// bound for `crash-at`.
    pub fn points(&self) -> u64 {
        self.lock().next
    }

    /// Whether the armed crash has fired, and at which boundary.
    pub fn fired(&self) -> Option<u64> {
        self.lock().fired.map(|(p, _)| p)
    }
}

impl std::fmt::Debug for CrashClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        f.debug_struct("CrashClock")
            .field("next", &s.next)
            .field("crash_at", &s.crash_at)
            .field("fired", &s.fired)
            .finish()
    }
}

/// Wrapper that injects a deterministic simulated process crash at a
/// numbered I/O boundary (see module docs).  Wraps the *outermost* array
/// of a stack so its boundaries bracket the whole logical operation.
pub struct CrashingDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    clock: CrashClock,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> CrashingDiskArray<R, A> {
    /// Wrap `inner`, ticking `clock` at every boundary.
    pub fn new(inner: A, clock: CrashClock) -> Self {
        CrashingDiskArray {
            inner,
            clock,
            _marker: std::marker::PhantomData,
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &CrashClock {
        &self.clock
    }

    /// Unwrap — the "reboot": the inner array (the disks) survives the
    /// crash; the poisoned wrapper does not.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The wrapped array.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped array.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Run the torn-write boundaries for an `n`-frame parallel write.
    /// When boundary `j` (1-based frame count) fires, land exactly the
    /// first `j` frames as one narrower parallel operation on the inner
    /// array — the state a real array shows when the process died after
    /// only a prefix of the stripe reached the disks — then report the
    /// crash.  When no boundary fires, hand the frames back untouched.
    fn torn_boundaries(
        &mut self,
        writes: Vec<(BlockAddr, Block<R>)>,
    ) -> Result<Vec<(BlockAddr, Block<R>)>> {
        let n = writes.len();
        for landed in 1..n {
            if let Err(crash) = self.clock.tick("write-torn") {
                let prefix: Vec<(BlockAddr, Block<R>)> =
                    writes.into_iter().take(landed).collect();
                self.inner.write(prefix)?;
                return Err(crash);
            }
        }
        Ok(writes)
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for CrashingDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        self.clock.tick("read")?;
        let blocks = self.inner.read(addrs)?;
        self.clock.tick("read-done")?;
        Ok(blocks)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        self.clock.tick("write")?;
        let writes = self.torn_boundaries(writes)?;
        self.inner.write(writes)?;
        self.clock.tick("write-done")?;
        Ok(())
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        self.clock.tick("read-submit")?;
        let ticket = self.inner.submit_read(addrs)?;
        // A crash here abandons the in-flight ticket: the I/O may still
        // land on the inner array, but the dead process never sees it.
        self.clock.tick("read-submitted")?;
        Ok(ticket)
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        self.clock.tick("read-complete")?;
        let blocks = self.inner.complete_read(ticket)?;
        self.clock.tick("read-completed")?;
        Ok(blocks)
    }

    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<WriteTicket> {
        self.clock.tick("write-submit")?;
        let writes = self.torn_boundaries(writes)?;
        let ticket = self.inner.submit_write(writes)?;
        self.clock.tick("write-submitted")?;
        Ok(ticket)
    }

    fn complete_write(&mut self, ticket: WriteTicket) -> Result<()> {
        self.clock.tick("write-complete")?;
        self.inner.complete_write(ticket)?;
        self.clock.tick("write-completed")?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.clock.tick("sync")?;
        self.inner.sync()?;
        self.clock.tick("sync-done")?;
        Ok(())
    }

    fn scrub_block(&mut self, addr: BlockAddr) -> Result<ScrubOutcome> {
        self.inner.scrub_block(addr)
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        self.inner.alloc_contiguous(disk, count)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Forecast, NO_BLOCK};
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    fn blk(keys: &[u64]) -> Block<U64Record> {
        Block::new(
            keys.iter().map(|&k| U64Record(k)).collect(),
            Forecast::Next(NO_BLOCK),
        )
    }

    fn array() -> MemDiskArray<U64Record> {
        let g = Geometry::new(3, 4, 1000).unwrap();
        MemDiskArray::new(g)
    }

    /// Three-frame parallel write at three addresses, one per disk.
    fn three_frames(a: &mut impl DiskArray<U64Record>) -> Vec<(BlockAddr, Block<U64Record>)> {
        (0..3u64)
            .map(|d| {
                let disk = DiskId::from_index(d as usize);
                let off = a.alloc_contiguous(disk, 1).unwrap();
                (BlockAddr::new(disk, off), blk(&[d, d + 10]))
            })
            .collect()
    }

    #[test]
    fn counting_clock_counts_and_never_fires() {
        let clock = CrashClock::counting();
        let mut a = CrashingDiskArray::new(array(), clock.clone());
        let writes = three_frames(&mut a);
        let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
        a.write(writes).unwrap();
        let blocks = a.read(&addrs).unwrap();
        assert_eq!(blocks.len(), 3);
        // write + 2 torn + write-done + read + read-done = 6 boundaries.
        assert_eq!(clock.points(), 6);
        assert_eq!(clock.fired(), None);
    }

    #[test]
    fn wrapper_is_transparent_when_disarmed() {
        let mut plain = array();
        let writes = three_frames(&mut plain);
        let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
        plain.write(writes).unwrap();
        let want = plain.read(&addrs).unwrap();
        let plain_stats = plain.stats();

        let mut wrapped = CrashingDiskArray::new(array(), CrashClock::counting());
        let writes = three_frames(&mut wrapped);
        wrapped.write(writes).unwrap();
        let got = wrapped.read(&addrs).unwrap();
        assert_eq!(got, want);
        assert_eq!(wrapped.stats(), plain_stats);
    }

    #[test]
    fn torn_write_lands_exactly_the_prefix() {
        // Boundary numbering for a 3-frame write:
        //   0 = write, 1 = write-torn (1 frame lands), 2 = write-torn
        //   (2 frames land), 3 = write-done.
        for (point, landed) in [(1u64, 1usize), (2, 2)] {
            let mut a = CrashingDiskArray::new(array(), CrashClock::crash_at(point));
            let writes = three_frames(&mut a);
            let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
            let err = a.write(writes).unwrap_err();
            assert!(
                matches!(err, PdiskError::Crashed { point: p, label: "write-torn" } if p == point),
                "unexpected error {err}"
            );
            // Reboot: the inner array survives with only the prefix.
            let mut mem = a.into_inner();
            for (i, addr) in addrs.iter().enumerate() {
                let present = mem.read(&[*addr]).is_ok();
                assert_eq!(present, i < landed, "frame {i} after crash at {point}");
            }
        }
    }

    #[test]
    fn crash_poisons_every_later_operation() {
        let mut a = CrashingDiskArray::new(array(), CrashClock::crash_at(0));
        let writes = three_frames(&mut a);
        let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
        assert!(matches!(
            a.write(writes).unwrap_err(),
            PdiskError::Crashed { point: 0, .. }
        ));
        // Every subsequent operation reports the same crash point.
        assert!(matches!(
            a.read(&addrs).unwrap_err(),
            PdiskError::Crashed { point: 0, .. }
        ));
        assert!(matches!(
            a.sync().unwrap_err(),
            PdiskError::Crashed { point: 0, .. }
        ));
        assert_eq!(a.clock().fired(), Some(0));
    }

    #[test]
    fn crash_after_write_leaves_data_durable() {
        // Boundary 3 is write-done: all frames landed, then the process
        // died before the caller observed success.
        let mut a = CrashingDiskArray::new(array(), CrashClock::crash_at(3));
        let writes = three_frames(&mut a);
        let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
        assert!(a.write(writes).is_err());
        let mut mem = a.into_inner();
        assert_eq!(mem.read(&addrs).unwrap().len(), 3);
    }

    #[test]
    fn split_phase_boundaries_are_numbered() {
        let clock = CrashClock::counting();
        let mut a = CrashingDiskArray::new(array(), clock.clone());
        let writes = three_frames(&mut a);
        let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
        let wt = a.submit_write(writes).unwrap();
        a.complete_write(wt).unwrap();
        let rt = a.submit_read(&addrs).unwrap();
        let blocks = a.complete_read(rt).unwrap();
        assert_eq!(blocks.len(), 3);
        // write-submit + 2 torn + write-submitted, write-complete +
        // write-completed, read-submit + read-submitted, read-complete +
        // read-completed = 10 boundaries.
        assert_eq!(clock.points(), 10);
    }

    #[test]
    fn identical_runs_number_boundaries_identically() {
        let run = || {
            let clock = CrashClock::counting();
            let mut a = CrashingDiskArray::new(array(), clock.clone());
            let writes = three_frames(&mut a);
            let addrs: Vec<BlockAddr> = writes.iter().map(|(ad, _)| *ad).collect();
            a.write(writes).unwrap();
            a.read(&addrs).unwrap();
            a.sync().unwrap();
            clock.points()
        };
        assert_eq!(run(), run());
    }
}
