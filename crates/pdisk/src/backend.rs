//! The parallel I/O interface shared by all backends.

use crate::addr::{BlockAddr, DiskId};
use crate::block::Block;
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::striping::StripedRun;
use crate::trace::TraceSink;

/// Raw slot bytes travelling back from a per-disk I/O worker.
pub(crate) type SlotReply = crossbeam::channel::Receiver<std::io::Result<Vec<u8>>>;

/// In-progress state of a split-phase read.
pub(crate) enum ReadState<R: Record> {
    /// The backend executed the read eagerly; the blocks are here.
    Ready(Vec<Block<R>>),
    /// The read is in flight on per-disk worker threads; one reply
    /// channel per requested block, in request order.
    Pending(Vec<SlotReply>),
}

/// Handle to a submitted parallel read ([`DiskArray::submit_read`]).
///
/// The ticket must be handed back to [`DiskArray::complete_read`] **on
/// the same array** (or a wrapper stack containing it) to collect the
/// blocks.  The I/O operation was already charged to [`IoStats`] at
/// submit time; dropping a ticket abandons the data but never un-counts
/// the operation — exactly like dropping the result of a serial read.
pub struct ReadTicket<R: Record> {
    pub(crate) addrs: Vec<BlockAddr>,
    pub(crate) state: ReadState<R>,
    /// How many I/O issues the submit phase consumed (≥ 1).  Backends
    /// always issue once; [`crate::RetryingDiskArray`] records its retry
    /// spend here so the completion phase can share one per-logical-op
    /// attempt budget with the submit instead of starting a fresh one.
    pub(crate) issues: u32,
}

impl<R: Record> ReadTicket<R> {
    pub(crate) fn ready(addrs: Vec<BlockAddr>, blocks: Vec<Block<R>>) -> Self {
        ReadTicket {
            addrs,
            state: ReadState::Ready(blocks),
            issues: 1,
        }
    }

    pub(crate) fn pending(addrs: Vec<BlockAddr>, replies: Vec<SlotReply>) -> Self {
        ReadTicket {
            addrs,
            state: ReadState::Pending(replies),
            issues: 1,
        }
    }

    /// Addresses the submitted read targets, in request order.
    pub fn addrs(&self) -> &[BlockAddr] {
        &self.addrs
    }

    /// Whether the I/O is still in flight (as opposed to already
    /// executed eagerly by a synchronous backend).
    pub fn is_pending(&self) -> bool {
        matches!(self.state, ReadState::Pending(_))
    }
}

impl<R: Record> std::fmt::Debug for ReadTicket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadTicket")
            .field("addrs", &self.addrs)
            .field("pending", &self.is_pending())
            .finish()
    }
}

/// In-progress state of a split-phase write.
pub(crate) enum WriteState {
    /// The backend executed the write eagerly.
    Ready,
    /// The write is in flight; workers reply with the consumed slot
    /// bytes so they can be recycled into a [`BufferPool`].
    Pending(Vec<SlotReply>),
}

/// Handle to a submitted parallel write ([`DiskArray::submit_write`]).
///
/// Must be handed back to [`DiskArray::complete_write`] on the same
/// array to observe the write's success.  A dropped ticket abandons
/// error reporting, not the write itself.
pub struct WriteTicket {
    pub(crate) addrs: Vec<BlockAddr>,
    pub(crate) state: WriteState,
}

impl WriteTicket {
    pub(crate) fn ready(addrs: Vec<BlockAddr>) -> Self {
        WriteTicket {
            addrs,
            state: WriteState::Ready,
        }
    }

    pub(crate) fn pending(addrs: Vec<BlockAddr>, replies: Vec<SlotReply>) -> Self {
        WriteTicket {
            addrs,
            state: WriteState::Pending(replies),
        }
    }

    /// Addresses the submitted write targets, in request order.
    pub fn addrs(&self) -> &[BlockAddr] {
        &self.addrs
    }

    /// Whether the I/O is still in flight.
    pub fn is_pending(&self) -> bool {
        matches!(self.state, WriteState::Pending(_))
    }
}

impl std::fmt::Debug for WriteTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTicket")
            .field("addrs", &self.addrs)
            .field("pending", &self.is_pending())
            .finish()
    }
}

/// What a redundancy layer (e.g. [`crate::parity::ParityDiskArray`])
/// reports about itself: checkpoint manifests record this so a resumed
/// sort can refuse to run against an array with less protection than the
/// one that wrote the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyInfo {
    /// Disks participating in each parity stripe (the array's `D`).
    pub stripe_disks: usize,
    /// Disks currently dead, whose blocks are served by reconstruction.
    pub dead: Vec<DiskId>,
}

/// What a [`DiskArray::scrub_block`] pass found (and did) at one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// The block read back and verified clean.
    Clean,
    /// The block was corrupt and a redundancy layer rewrote it in place
    /// from reconstructed content; it now verifies clean.
    Repaired,
    /// The block is corrupt (or lost) and no layer of the stack can
    /// reconstruct it; the message says why.
    Unrepairable(String),
}

/// An array of `D` independent disks addressed in blocks.
///
/// The two transfer methods each model **one** parallel I/O operation of the
/// Vitter–Shriver model: up to one block per disk moves, and exactly one
/// operation is charged to [`IoStats`] regardless of how many disks
/// participate.  Backends must reject operations that address a disk twice.
pub trait DiskArray<R: Record> {
    /// The machine geometry this array was built for.
    fn geometry(&self) -> Geometry;

    /// One parallel read.  Returns the blocks in request order.
    ///
    /// `addrs` must address each disk at most once; an empty request is a
    /// no-op that charges nothing.
    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>>;

    /// One parallel write.  `writes` must address each disk at most once.
    /// An empty request is a no-op that charges nothing.
    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()>;

    /// Reserve `count` consecutive block slots on one disk; returns the
    /// offset of the first.
    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64>;

    /// Snapshot of the I/O counters.
    fn stats(&self) -> IoStats;

    /// Zero the I/O counters (e.g. to exclude setup cost from a
    /// measurement).
    fn reset_stats(&mut self);

    /// Redundancy provided by this array, when any layer of the stack
    /// provides one.  Plain backends return `None`; wrappers forward to
    /// their inner array so the answer survives stacking.
    fn redundancy(&self) -> Option<RedundancyInfo> {
        None
    }

    /// Install a shared trace sink.  Backends that support tracing store
    /// the sink and emit [`crate::trace::TraceEvent`]s into it; wrappers
    /// keep a copy for their own layer events and forward the sink down
    /// the stack.  The default ignores the sink (tracing unsupported),
    /// which keeps untraced runs zero-cost.
    fn install_trace(&mut self, sink: TraceSink) {
        let _ = sink;
    }

    /// The installed trace sink, if tracing is active anywhere in the
    /// stack.  `None` (the default) means no events are being recorded.
    fn trace_sink(&self) -> Option<&TraceSink> {
        None
    }

    /// Begin one parallel read without waiting for it: the operation is
    /// charged (and physical trace events emitted) now, the data is
    /// collected later via [`DiskArray::complete_read`].
    ///
    /// The submit/complete pair models **the same single** parallel I/O
    /// operation as [`DiskArray::read`] — the split only exposes the
    /// latency between issuing it and needing its data, which a
    /// pipelined engine overlaps with merging.  The default executes
    /// the read eagerly (synchronous backends degenerate to serial
    /// behaviour with no semantic change); [`crate::FileDiskArray`]
    /// overrides it to leave the per-disk transfers genuinely in
    /// flight on its worker threads.
    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        let blocks = self.read(addrs)?;
        Ok(ReadTicket::ready(addrs.to_vec(), blocks))
    }

    /// Wait for a submitted read and return its blocks in request
    /// order.  Fails with [`PdiskError::TicketMismatch`] if handed a
    /// still-pending ticket issued by a different backend.
    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        match ticket.state {
            ReadState::Ready(blocks) => Ok(blocks),
            ReadState::Pending(_) => Err(PdiskError::TicketMismatch),
        }
    }

    /// Begin one parallel write without waiting for it; the operation
    /// is charged now, completion is observed via
    /// [`DiskArray::complete_write`].  The default executes the write
    /// eagerly through [`DiskArray::write`], so every wrapper's write
    /// semantics (fault injection, retry, parity) apply unchanged.
    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<WriteTicket> {
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        self.write(writes)?;
        Ok(WriteTicket::ready(addrs))
    }

    /// Wait for a submitted write and surface any I/O error.
    fn complete_write(&mut self, ticket: WriteTicket) -> Result<()> {
        match ticket.state {
            WriteState::Ready => Ok(()),
            WriteState::Pending(_) => Err(PdiskError::TicketMismatch),
        }
    }

    /// Speculative read-ahead hint: the caller predicts it will read
    /// these blocks soon (in SRM, straight from the §4 forecasting
    /// tables).  A backend may start fetching them in the background so
    /// a later [`DiskArray::read`] / [`DiskArray::submit_read`] of the
    /// same address completes without waiting on the device.
    ///
    /// This is a *hint with no semantics*: it is not a parallel I/O
    /// operation of the model, charges nothing to [`IoStats`], emits no
    /// trace events, and may be ignored entirely — the default does
    /// exactly that, so simulation backends and wrapper stacks degrade
    /// to depth-1 pipelining unchanged.  [`crate::FileDiskArray`]
    /// overrides it with a per-worker speculative cache.
    fn prefetch(&mut self, addrs: &[BlockAddr]) {
        let _ = addrs;
    }

    /// Durability barrier: flush everything written so far to stable
    /// storage before returning.  Simulation backends are trivially
    /// durable, so the default is a no-op; [`crate::FileDiskArray`]
    /// overrides it with a per-disk `fsync`, and redundancy layers also
    /// flush their own sidecar state (e.g. the parity store).  Checkpoint
    /// writers call this *before* publishing a manifest so the manifest
    /// never references data that could be lost to a crash.
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    /// Verify one block's integrity, repairing it in place when a
    /// redundancy layer can.  The default merely reads the block (one
    /// width-1 parallel operation, charged as usual): a clean read is
    /// [`ScrubOutcome::Clean`], a checksum failure is
    /// [`ScrubOutcome::Unrepairable`] because a plain backend has no
    /// second copy to heal from.  [`crate::ParityDiskArray`] overrides
    /// this to reconstruct the frame from parity and rewrite it.
    /// Non-integrity errors (bad address, dead process) propagate.
    fn scrub_block(&mut self, addr: BlockAddr) -> Result<ScrubOutcome> {
        match self.read(&[addr]) {
            Ok(_) => Ok(ScrubOutcome::Clean),
            Err(e @ PdiskError::Corrupt(_)) => Ok(ScrubOutcome::Unrepairable(e.to_string())),
            Err(e) => Err(e),
        }
    }

    /// Share a recycling buffer pool with this array.  Backends that
    /// allocate block-sized buffers draw from (and return to) the pool;
    /// wrappers forward it down the stack.  The default ignores the
    /// pool — simulation backends that never touch block-sized heap
    /// memory have nothing to recycle.
    fn install_pool(&mut self, pool: BufferPool<R>) {
        let _ = pool;
    }

    /// The installed buffer pool, if this stack recycles buffers.
    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        None
    }

    /// Reserve space for a run of `len_blocks` blocks (holding `records`
    /// records) striped cyclically from `start_disk` (§3's layout).
    ///
    /// Provided for all backends in terms of [`DiskArray::alloc_contiguous`].
    fn alloc_run(&mut self, start_disk: DiskId, len_blocks: u64, records: u64) -> Result<StripedRun> {
        let d = self.geometry().d;
        let mut base_offsets = vec![0u64; d];
        for disk in 0..d {
            let disk = DiskId::from_index(disk);
            let run = StripedRun {
                start_disk,
                len_blocks,
                records,
                base_offsets: vec![0; d],
            };
            let count = run.blocks_on_disk(disk);
            if count > 0 {
                base_offsets[disk.index()] = self.alloc_contiguous(disk, count)?;
            }
        }
        Ok(StripedRun {
            start_disk,
            len_blocks,
            records,
            base_offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    #[test]
    fn alloc_run_places_every_block_in_its_reservation() {
        let g = Geometry::new(3, 4, 1000).unwrap();
        let mut array: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let a = array.alloc_run(DiskId(1), 8, 32).unwrap();
        let b = array.alloc_run(DiskId(2), 5, 20).unwrap();
        // Reservations for distinct runs must not overlap: collect all slots.
        let mut slots = std::collections::HashSet::new();
        for run in [&a, &b] {
            for i in 0..run.len_blocks {
                assert!(slots.insert(run.addr_of(i)), "overlapping allocation at block {i}");
            }
        }
        assert_eq!(slots.len(), 13);
    }
}
