//! The parallel I/O interface shared by all backends.

use crate::addr::{BlockAddr, DiskId};
use crate::block::Block;
use crate::error::Result;
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;
use crate::striping::StripedRun;
use crate::trace::TraceSink;

/// What a redundancy layer (e.g. [`crate::parity::ParityDiskArray`])
/// reports about itself: checkpoint manifests record this so a resumed
/// sort can refuse to run against an array with less protection than the
/// one that wrote the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundancyInfo {
    /// Disks participating in each parity stripe (the array's `D`).
    pub stripe_disks: usize,
    /// Disks currently dead, whose blocks are served by reconstruction.
    pub dead: Vec<DiskId>,
}

/// An array of `D` independent disks addressed in blocks.
///
/// The two transfer methods each model **one** parallel I/O operation of the
/// Vitter–Shriver model: up to one block per disk moves, and exactly one
/// operation is charged to [`IoStats`] regardless of how many disks
/// participate.  Backends must reject operations that address a disk twice.
pub trait DiskArray<R: Record> {
    /// The machine geometry this array was built for.
    fn geometry(&self) -> Geometry;

    /// One parallel read.  Returns the blocks in request order.
    ///
    /// `addrs` must address each disk at most once; an empty request is a
    /// no-op that charges nothing.
    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>>;

    /// One parallel write.  `writes` must address each disk at most once.
    /// An empty request is a no-op that charges nothing.
    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()>;

    /// Reserve `count` consecutive block slots on one disk; returns the
    /// offset of the first.
    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64>;

    /// Snapshot of the I/O counters.
    fn stats(&self) -> IoStats;

    /// Zero the I/O counters (e.g. to exclude setup cost from a
    /// measurement).
    fn reset_stats(&mut self);

    /// Redundancy provided by this array, when any layer of the stack
    /// provides one.  Plain backends return `None`; wrappers forward to
    /// their inner array so the answer survives stacking.
    fn redundancy(&self) -> Option<RedundancyInfo> {
        None
    }

    /// Install a shared trace sink.  Backends that support tracing store
    /// the sink and emit [`crate::trace::TraceEvent`]s into it; wrappers
    /// keep a copy for their own layer events and forward the sink down
    /// the stack.  The default ignores the sink (tracing unsupported),
    /// which keeps untraced runs zero-cost.
    fn install_trace(&mut self, sink: TraceSink) {
        let _ = sink;
    }

    /// The installed trace sink, if tracing is active anywhere in the
    /// stack.  `None` (the default) means no events are being recorded.
    fn trace_sink(&self) -> Option<&TraceSink> {
        None
    }

    /// Reserve space for a run of `len_blocks` blocks (holding `records`
    /// records) striped cyclically from `start_disk` (§3's layout).
    ///
    /// Provided for all backends in terms of [`DiskArray::alloc_contiguous`].
    fn alloc_run(&mut self, start_disk: DiskId, len_blocks: u64, records: u64) -> Result<StripedRun> {
        let d = self.geometry().d;
        let mut base_offsets = vec![0u64; d];
        for disk in 0..d {
            let disk = DiskId::from_index(disk);
            let run = StripedRun {
                start_disk,
                len_blocks,
                records,
                base_offsets: vec![0; d],
            };
            let count = run.blocks_on_disk(disk);
            if count > 0 {
                base_offsets[disk.index()] = self.alloc_contiguous(disk, count)?;
            }
        }
        Ok(StripedRun {
            start_disk,
            len_blocks,
            records,
            base_offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    #[test]
    fn alloc_run_places_every_block_in_its_reservation() {
        let g = Geometry::new(3, 4, 1000).unwrap();
        let mut array: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let a = array.alloc_run(DiskId(1), 8, 32).unwrap();
        let b = array.alloc_run(DiskId(2), 5, 20).unwrap();
        // Reservations for distinct runs must not overlap: collect all slots.
        let mut slots = std::collections::HashSet::new();
        for run in [&a, &b] {
            for i in 0..run.len_blocks {
                assert!(slots.insert(run.addr_of(i)), "overlapping allocation at block {i}");
            }
        }
        assert_eq!(slots.len(), 13);
    }
}
