//! Blocks and the forecasting format of §4.
//!
//! Each block of a run carries *implanted* future key information so that a
//! merger holding the block can forecast which block to read next from each
//! disk:
//!
//! * the initial block `b_{r,0}` of run `r` carries the smallest keys
//!   `k_{r,0} .. k_{r,D-1}` of the first `D` blocks;
//! * block `b_{r,i}` for `i > 0` carries the single key `k_{r,i+D}` — the
//!   smallest key of the next block of the same run on the *same disk*
//!   (cyclic striping places blocks `i` and `i+D` on one disk).
//!
//! The extra space is one key per block (`D` keys in the initial block),
//! negligible versus `B` records, exactly as the paper argues.

use crate::record::Record;

/// Sentinel forecast key meaning "the run has no block at that position".
pub const NO_BLOCK: u64 = u64::MAX;

/// Implanted forecasting information carried by a block (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Forecast {
    /// Initial block of a run: smallest keys of blocks `0..D` of the run
    /// (entry `j` is `k_{r,j}`; `NO_BLOCK` where the run is shorter).
    Initial(Vec<u64>),
    /// Non-initial block `i`: smallest key `k_{r,i+D}` of the block that
    /// follows on the same disk (`NO_BLOCK` if the run ends first).
    Next(u64),
}

impl Forecast {
    /// The forecast key for "the next block of this run on this block's
    /// disk", given this block's index within the run.
    ///
    /// For an initial block (index 0) that is entry `D-1`… no: block 0 lives
    /// on disk `d_r`, and the next block of the run on disk `d_r` is block
    /// `D`; its key is **not** in the initial table (which covers `0..D`).
    /// The merge engine therefore always consumes `Initial` tables wholesale
    /// to seed the forecasting structure and uses [`Forecast::next_key`]
    /// only for `Next` blocks.  This accessor returns `None` for `Initial`.
    pub fn next_key(&self) -> Option<u64> {
        match self {
            Forecast::Initial(_) => None,
            Forecast::Next(k) => Some(*k),
        }
    }
}

/// A block: up to `B` records of a single run plus its forecasting metadata.
///
/// Blocks are value types moved between "disk" and "memory" by the backends;
/// the merge engines never construct partially filled blocks except for the
/// final block of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<R: Record> {
    /// Records in ascending key order (a block of a *sorted run*).
    pub records: Vec<R>,
    /// Implanted forecast data (§4).
    pub forecast: Forecast,
}

impl<R: Record> Block<R> {
    /// Build a block; debug-asserts the records are sorted by key.
    pub fn new(records: Vec<R>, forecast: Forecast) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].key() <= w[1].key()),
            "block records must be sorted"
        );
        Block { records, forecast }
    }

    /// Smallest key in the block (`k_{r,i}` in the paper's notation).
    ///
    /// # Panics
    /// Panics on an empty block — empty blocks are never written.
    #[inline]
    pub fn min_key(&self) -> u64 {
        self.records.first().expect("non-empty block").key() // lint:allow(panic) documented # Panics contract
    }

    /// Largest key in the block.
    #[inline]
    pub fn max_key(&self) -> u64 {
        self.records.last().expect("non-empty block").key() // lint:allow(panic) documented # Panics contract
    }

    /// Number of records currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::U64Record;

    fn blk(keys: &[u64]) -> Block<U64Record> {
        Block::new(keys.iter().map(|&k| U64Record(k)).collect(), Forecast::Next(NO_BLOCK))
    }

    #[test]
    fn min_max_len() {
        let b = blk(&[3, 5, 9]);
        assert_eq!(b.min_key(), 3);
        assert_eq!(b.max_key(), 9);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic]
    fn min_key_panics_on_empty() {
        let b = blk(&[]);
        let _ = b.min_key();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn unsorted_block_rejected_in_debug() {
        let _ = blk(&[5, 3]);
    }

    #[test]
    fn forecast_next_key() {
        assert_eq!(Forecast::Next(7).next_key(), Some(7));
        assert_eq!(Forecast::Initial(vec![1, 2]).next_key(), None);
    }
}
