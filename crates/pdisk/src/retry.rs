//! Bounded retry with simulated backoff.
//!
//! [`RetryingDiskArray`] wraps any backend and transparently re-issues
//! operations that fail with a *retryable* error (see
//! [`PdiskError::is_retryable`]): transient faults, OS-level I/O
//! errors, and checksum mismatches.  Permanent faults and logic errors
//! pass straight through.  When every attempt fails, the wrapper
//! returns [`PdiskError::RetriesExhausted`] carrying the final
//! attempt's error as its `source()`.
//!
//! Backoff is *simulated*: instead of sleeping, the wrapper accrues the
//! wait it would have performed into [`RetryingDiskArray::total_backoff`],
//! in the spirit of [`crate::timing`]'s counted-cost model — experiments
//! stay fast and deterministic while recovery cost remains measurable.
//! Retry counts are folded into the [`IoStats`] this wrapper reports,
//! per operation kind (`read_retries` / `write_retries` /
//! `alloc_retries`, and the matching `*_exhausted` give-up counters),
//! leaving the inner backend's logical operation counts untouched.
//! The schedule itself lives in one place — [`RetryPolicy::run`] — so
//! it cannot drift between operation kinds.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket};
use crate::block::Block;
use crate::error::{FaultOp, PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::timing::DiskModel;
use crate::trace::{TraceEvent, TraceSink};
use std::time::Duration;

/// Jitter applied to the simulated backoff schedule.
///
/// `Full` implements "full jitter": each wait is drawn uniformly from
/// `[0, capped_backoff]`.  The draw is a pure hash of `(seed, issue
/// counter)`, so a fixed operation sequence always accrues the same
/// backoff — the policy stays `Copy` and experiments stay replayable,
/// while concurrent tenants with different seeds desynchronise their
/// retry storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jitter {
    /// Deterministic schedule: wait exactly the capped exponential value.
    #[default]
    None,
    /// Full jitter: wait `uniform(0, capped_backoff)`, derived from `seed`.
    Full {
        /// Seed for the deterministic jitter hash.
        seed: u64,
    },
}

/// Default ceiling on a single simulated backoff wait: high enough that
/// the historical 4-attempt/1 ms default schedule is unaffected, low
/// enough that misconfigured long schedules cannot accrue unbounded
/// virtual waits.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_secs(10);

/// How many times to try, and how long to (virtually) wait in between.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first; at least 1.
    pub max_attempts: u32,
    /// Simulated wait before the first retry.
    pub base_backoff: Duration,
    /// Factor applied to the wait after each failed retry (exponential
    /// backoff when `> 1`).
    pub multiplier: u32,
    /// Ceiling on any single wait: the exponential schedule saturates
    /// here instead of growing without bound.
    pub max_backoff: Duration,
    /// Randomisation of the per-wait duration (deterministic given the
    /// seed; see [`Jitter`]).
    pub jitter: Jitter,
}

impl RetryPolicy {
    /// Up to `max_attempts` tries with exponential backoff from `base`,
    /// capped at [`DEFAULT_BACKOFF_CAP`], no jitter.
    pub fn new(max_attempts: u32, base: Duration) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            base_backoff: base,
            multiplier: 2,
            max_backoff: DEFAULT_BACKOFF_CAP,
            jitter: Jitter::None,
        }
    }

    /// Same schedule with the per-wait ceiling replaced by `cap`.
    pub fn with_backoff_cap(mut self, cap: Duration) -> Self {
        self.max_backoff = cap;
        self
    }

    /// Same schedule with full jitter drawn deterministically from `seed`.
    pub fn with_full_jitter(mut self, seed: u64) -> Self {
        self.jitter = Jitter::Full { seed };
        self
    }

    /// A policy priced from a [`DiskModel`]: the first retry waits one
    /// block-sized operation time, doubling thereafter.
    pub fn from_model(max_attempts: u32, model: &DiskModel, block_bytes: usize) -> Self {
        Self::new(max_attempts, model.op_time(block_bytes))
    }

    /// Never retry; failures surface unchanged.
    pub fn none() -> Self {
        Self::new(1, Duration::ZERO)
    }

    /// Simulated wait before retry number `retry` (1-based), before
    /// jitter: the exponential value saturated at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        debug_assert!(retry >= 1);
        let exp = self
            .multiplier
            .checked_pow(retry - 1)
            .map(|f| self.base_backoff.saturating_mul(f))
            .unwrap_or(Duration::MAX);
        exp.min(self.max_backoff)
    }

    /// The wait actually charged for retry number `retry` when it is
    /// issue number `nonce` of its counter — [`Self::backoff_for`] with
    /// this policy's [`Jitter`] applied.  Pure in `(self, retry, nonce)`.
    pub fn jittered_backoff(&self, retry: u32, nonce: u64) -> Duration {
        let capped = self.backoff_for(retry);
        match self.jitter {
            Jitter::None => capped,
            Jitter::Full { seed } => {
                let span = capped.as_nanos().min(u64::MAX as u128) as u64;
                if span == 0 {
                    return Duration::ZERO;
                }
                // FNV-1a over (seed, nonce): cheap, stable, and good
                // enough to decorrelate per-tenant retry schedules.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in seed.to_le_bytes().iter().chain(nonce.to_le_bytes().iter()) {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                Duration::from_nanos(h % (span + 1))
            }
        }
    }

    /// Run `op` to completion under this policy, charging `counters`.
    ///
    /// This is the *single* implementation of the retry/backoff schedule:
    /// every call site (reads, writes, allocations) goes through here, so
    /// the schedule is deterministic by construction (jitter, when
    /// enabled, is a pure hash of the issue counter) and cannot drift
    /// between operation kinds.  Non-retryable errors pass
    /// through on the first attempt; exhaustion returns
    /// [`PdiskError::RetriesExhausted`] and bumps `counters.exhausted`.
    pub fn run<T>(
        &self,
        counters: &mut RetryCounters,
        op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        self.run_from(counters, 1, op)
    }

    /// Like [`RetryPolicy::run`], but *continuing* a logical operation
    /// that has already consumed `spent` I/O issues — e.g. a split-phase
    /// completion sharing one per-logical-op budget with its submit.
    ///
    /// The first `op()` call is treated as issue number `spent` (it
    /// collects work already issued, so it is free); each subsequent call
    /// is a fresh issue charged to `counters` until the budget of
    /// `max_attempts` total issues is spent.  `spent = 1` is a fresh
    /// operation, i.e. [`RetryPolicy::run`].
    pub fn run_from<T>(
        &self,
        counters: &mut RetryCounters,
        spent: u32,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut attempt = spent.max(1);
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) if attempt >= self.max_attempts => {
                    counters.exhausted += 1;
                    return Err(PdiskError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(e),
                    });
                }
                Err(_) => {
                    counters.attempted += 1;
                    counters.backoff += self.jittered_backoff(attempt, counters.attempted);
                    attempt += 1;
                }
            }
        }
    }
}

/// Retry accounting for one [`FaultOp`](crate::FaultOp) kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Attempts re-issued after a retryable failure.
    pub attempted: u64,
    /// Operations that failed every attempt.
    pub exhausted: u64,
    /// Simulated backoff accrued by the re-issues.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 ms base, exponential: absorbs any plausible
    /// transient-fault rate while keeping give-up latency bounded.
    fn default() -> Self {
        Self::new(4, Duration::from_millis(1))
    }
}

/// A [`DiskArray`] that absorbs transient faults by retrying.
#[derive(Debug)]
pub struct RetryingDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    policy: RetryPolicy,
    reads: RetryCounters,
    writes: RetryCounters,
    allocs: RetryCounters,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> RetryingDiskArray<R, A> {
    /// Wrap `inner` with the given policy.
    pub fn new(inner: A, policy: RetryPolicy) -> Self {
        RetryingDiskArray {
            inner,
            policy,
            reads: RetryCounters::default(),
            writes: RetryCounters::default(),
            allocs: RetryCounters::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Unwrap the inner backend.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The inner backend, e.g. to read its unretried stats.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the inner backend, e.g. to administratively
    /// fail or rebuild a disk in a wrapped redundancy layer.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Retries performed so far (reads, writes).  Allocation retries are
    /// reported separately by [`Self::counters`].
    pub fn retries(&self) -> (u64, u64) {
        (self.reads.attempted, self.writes.attempted)
    }

    /// Per-operation retry accounting, in [`FaultOp`](crate::FaultOp)
    /// order: reads, writes, allocations.
    pub fn counters(&self) -> (RetryCounters, RetryCounters, RetryCounters) {
        (self.reads, self.writes, self.allocs)
    }

    /// Total simulated backoff wait accrued by all retries.
    pub fn total_backoff(&self) -> Duration {
        self.reads.backoff + self.writes.backoff + self.allocs.backoff
    }

    /// Record `count` re-issues of `op` in the trace, if tracing is on.
    fn emit_retries(&self, op: FaultOp, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(sink) = self.inner.trace_sink() {
            for _ in 0..count {
                sink.emit(TraceEvent::Retry { op });
            }
        }
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for RetryingDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let out = self.policy.run(&mut self.reads, || inner.read(addrs));
        self.emit_retries(FaultOp::Read, self.reads.attempted - before);
        out
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        let before = self.writes.attempted;
        let inner = &mut self.inner;
        let out = self
            .policy
            .run(&mut self.writes, || inner.write(writes.clone()));
        self.emit_retries(FaultOp::Write, self.writes.attempted - before);
        out
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let before = self.allocs.attempted;
        let inner = &mut self.inner;
        let out = self
            .policy
            .run(&mut self.allocs, || inner.alloc_contiguous(disk, count));
        self.emit_retries(FaultOp::Alloc, self.allocs.attempted - before);
        out
    }

    /// Inner (logical) stats plus this wrapper's retry counters.
    fn stats(&self) -> IoStats {
        let mut stats = self.inner.stats();
        stats.read_retries += self.reads.attempted;
        stats.write_retries += self.writes.attempted;
        stats.alloc_retries += self.allocs.attempted;
        stats.read_exhausted += self.reads.exhausted;
        stats.write_exhausted += self.writes.exhausted;
        stats.alloc_exhausted += self.allocs.exhausted;
        stats
    }

    fn reset_stats(&mut self) {
        self.reads = RetryCounters::default();
        self.writes = RetryCounters::default();
        self.allocs = RetryCounters::default();
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<crate::backend::RedundancyInfo> {
        self.inner.redundancy()
    }

    /// Durability barriers are forwarded unretried: a failed `fsync`
    /// leaves the kernel's dirty state unknown, so the checkpoint writer
    /// above must see the failure and withhold its manifest.
    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    /// Scrubbing is forwarded unretried so repair accounting stays with
    /// the redundancy layer that performs it.
    fn scrub_block(&mut self, addr: BlockAddr) -> Result<crate::backend::ScrubOutcome> {
        self.inner.scrub_block(addr)
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let out = self.policy.run(&mut self.reads, || inner.submit_read(addrs));
        let issued = self.reads.attempted - before;
        self.emit_retries(FaultOp::Read, issued);
        // Record the issues this submit consumed in the ticket, so the
        // completion phase continues the same per-logical-op budget
        // instead of starting a fresh one.
        out.map(|mut t| {
            t.issues = 1 + issued as u32;
            t
        })
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        // The first completion attempt drains the in-flight ticket; if
        // it fails with a retryable error the data is gone with it, so
        // further attempts fall back to a fresh synchronous read of the
        // same addresses.  Note the fallback charges a second read op
        // in the inner backend's stats — acceptable for a recovery
        // path, and unreachable through the CLI stacks, where the
        // parity layer executes submits eagerly and completion cannot
        // fail.
        //
        // Submit and complete share ONE attempt budget: the ticket says
        // how many issues its submit consumed, and `run_from` resumes
        // the schedule there, so a logical read can never consume more
        // than `max_attempts` issues across both phases.
        let spent = ticket.issues;
        let addrs: Vec<BlockAddr> = ticket.addrs().to_vec();
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let mut first = Some(ticket);
        let out = self.policy.run_from(&mut self.reads, spent, || match first.take() {
            Some(t) => inner.complete_read(t),
            None => inner.read(&addrs),
        });
        self.emit_retries(FaultOp::Read, self.reads.attempted - before);
        out
    }

    // submit_write / complete_write deliberately use the trait defaults:
    // the default submit executes eagerly via `self.write`, which runs
    // this wrapper's retrying write logic, so split-phase writes through
    // a retry layer degenerate to the (fully protected) serial path.

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::error::{FaultKind, FaultOp};
    use crate::faulty::{FaultModel, FaultPlan, FaultyDiskArray, ScriptedFault};
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    type Faulty = FaultyDiskArray<U64Record, MemDiskArray<U64Record>>;

    fn faulty(model: impl Into<FaultModel>) -> Faulty {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let o = inner.alloc_contiguous(DiskId(0), 4).unwrap();
        for i in 0..4 {
            inner
                .write(vec![(
                    BlockAddr::new(DiskId(0), o + i),
                    Block::new(vec![U64Record(i)], Forecast::Next(u64::MAX)),
                )])
                .unwrap();
        }
        inner.reset_stats();
        FaultyDiskArray::new(inner, model)
    }

    #[test]
    fn absorbs_a_scripted_transient_read_fault() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::read(0)), RetryPolicy::default());
        let got = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap();
        assert_eq!(got[0].records[0], U64Record(0));
        assert_eq!(a.retries(), (1, 0));
        assert!(a.total_backoff() > Duration::ZERO);
        let stats = a.stats();
        assert_eq!(stats.read_retries, 1);
        assert_eq!(stats.read_ops, 1, "only the successful attempt counts");
    }

    #[test]
    fn absorbs_write_and_alloc_faults() {
        let mut a = RetryingDiskArray::new(
            faulty(FaultPlan::write(0).and_alloc(0)),
            RetryPolicy::default(),
        );
        let o = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let block = Block::new(vec![U64Record(7)], Forecast::Next(u64::MAX));
        a.write(vec![(BlockAddr::new(DiskId(1), o), block)]).unwrap();
        let stats = a.stats();
        assert_eq!(stats.write_retries, 1, "write retry charged to writes");
        assert_eq!(stats.alloc_retries, 1, "alloc retry charged to allocs");
        let (r, w, al) = a.counters();
        assert_eq!((r.attempted, w.attempted, al.attempted), (0, 1, 1));
        assert!(al.backoff > Duration::ZERO);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let mut a = RetryingDiskArray::new(
            faulty(FaultModel::none().kill_at(FaultOp::Read, 0)),
            RetryPolicy::default(),
        );
        let err = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap_err();
        assert!(matches!(
            err,
            PdiskError::Fault {
                kind: FaultKind::Permanent,
                ..
            }
        ));
        assert_eq!(a.retries(), (0, 0), "permanent faults must fail fast");
    }

    #[test]
    fn exhaustion_reports_attempts_and_chains_source() {
        use std::error::Error as _;
        // 100% transient read faults can never succeed.
        let mut a = RetryingDiskArray::new(
            faulty(FaultModel::random(1).with_read_rate(1.0)),
            RetryPolicy::new(3, Duration::from_millis(1)),
        );
        let err = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap_err();
        match &err {
            PdiskError::RetriesExhausted { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert!(err.source().unwrap().to_string().contains("transient"));
        assert_eq!(a.retries(), (2, 0), "two retries after the first attempt");
        let stats = a.stats();
        assert_eq!(stats.read_exhausted, 1, "give-up must be counted");
        assert_eq!(stats.write_exhausted, 0);
    }

    #[test]
    fn policy_run_is_the_single_backoff_implementation() {
        // Deterministic, jitterless: two identical runs accrue identical
        // backoff, and the schedule matches backoff_for exactly.
        let p = RetryPolicy::new(3, Duration::from_millis(5));
        let run_once = || {
            let mut c = RetryCounters::default();
            let mut failures = 2;
            let r = p.run(&mut c, || {
                if failures > 0 {
                    failures -= 1;
                    Err(PdiskError::Fault {
                        kind: FaultKind::Transient,
                        op: FaultOp::Read,
                        disk: None,
                    })
                } else {
                    Ok(())
                }
            });
            (r.is_ok(), c)
        };
        let (ok1, c1) = run_once();
        let (ok2, c2) = run_once();
        assert!(ok1 && ok2);
        assert_eq!(c1, c2, "schedule must be deterministic");
        assert_eq!(c1.attempted, 2);
        assert_eq!(c1.exhausted, 0);
        assert_eq!(c1.backoff, p.backoff_for(1) + p.backoff_for(2));
    }

    #[test]
    fn reset_stats_clears_retry_accounting() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::read(0)), RetryPolicy::default());
        a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap();
        assert_eq!(a.stats().read_retries, 1);
        a.reset_stats();
        assert_eq!(a.stats().read_retries, 0);
        assert_eq!(a.total_backoff(), Duration::ZERO);
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::new(4, Duration::from_millis(2));
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(8));
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let p = RetryPolicy::new(10, Duration::from_millis(3))
            .with_backoff_cap(Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(3));
        assert_eq!(p.backoff_for(2), Duration::from_millis(6));
        assert_eq!(p.backoff_for(3), Duration::from_millis(10), "12 ms capped to 10");
        assert_eq!(p.backoff_for(9), Duration::from_millis(10));
        // Absurd retry numbers must not overflow the exponent.
        assert_eq!(p.backoff_for(64), Duration::from_millis(10));
    }

    #[test]
    fn full_jitter_is_bounded_deterministic_and_seed_sensitive() {
        let p = RetryPolicy::new(8, Duration::from_millis(4))
            .with_backoff_cap(Duration::from_millis(20))
            .with_full_jitter(42);
        for retry in 1..8 {
            for nonce in 0..32 {
                let w = p.jittered_backoff(retry, nonce);
                assert!(w <= p.backoff_for(retry), "jitter must stay within the cap");
                assert_eq!(w, p.jittered_backoff(retry, nonce), "pure in (retry, nonce)");
            }
        }
        let other = p.with_full_jitter(43);
        let differs = (0..16).any(|n| p.jittered_backoff(3, n) != other.jittered_backoff(3, n));
        assert!(differs, "different seeds should desynchronise schedules");
        // Zero-width span degenerates cleanly.
        let zero = RetryPolicy::new(2, Duration::ZERO).with_full_jitter(7);
        assert_eq!(zero.jittered_backoff(1, 1), Duration::ZERO);
    }

    #[test]
    fn jittered_runs_keep_counters_exact_and_replayable() {
        // Same wrapper config + same fault script => identical counters,
        // including the accrued (jittered) backoff; retry counts are
        // unaffected by jitter.
        let policy = RetryPolicy::new(4, Duration::from_millis(2)).with_full_jitter(99);
        let run_once = || {
            // Fault read ops 0 and 2: each logical read's first attempt
            // fails once, its retry (the next read op) succeeds.
            let model = FaultModel::none()
                .with_scripted(ScriptedFault {
                    op: FaultOp::Read,
                    ordinal: 0,
                    kind: FaultKind::Transient,
                })
                .with_scripted(ScriptedFault {
                    op: FaultOp::Read,
                    ordinal: 2,
                    kind: FaultKind::Transient,
                });
            let mut a = RetryingDiskArray::new(faulty(model), policy);
            a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap();
            a.read(&[BlockAddr::new(DiskId(0), 1)]).unwrap();
            let (r, _, _) = a.counters();
            r
        };
        let c1 = run_once();
        let c2 = run_once();
        assert_eq!(c1, c2, "jittered schedule must be replayable");
        assert_eq!(c1.attempted, 2);
        assert_eq!(c1.exhausted, 0);
        // The two waits use distinct nonces (issue counter 1 and 2), so
        // the accrual is the sum of two different draws.
        let expect = policy.jittered_backoff(1, 1) + policy.jittered_backoff(1, 2);
        assert_eq!(c1.backoff, expect);
    }

    #[test]
    fn policy_from_model_prices_one_op() {
        let m = DiskModel::hdd_1996();
        let p = RetryPolicy::from_model(5, &m, 1 << 16);
        assert_eq!(p.base_backoff, m.op_time(1 << 16));
    }

    /// Split-phase test double: submits and completions fail retryably a
    /// scripted number of times, and every raw I/O *issue* (a submit or a
    /// fallback read — not a ticket drain) is counted, so tests can
    /// assert the per-logical-op budget precisely.
    struct FlakySplit {
        inner: MemDiskArray<U64Record>,
        fail_submits: u32,
        fail_completes: u32,
        fail_reads: u32,
        issues: u64,
    }

    impl FlakySplit {
        fn transient() -> PdiskError {
            PdiskError::Fault {
                kind: FaultKind::Transient,
                op: FaultOp::Read,
                disk: None,
            }
        }
    }

    impl DiskArray<U64Record> for FlakySplit {
        fn geometry(&self) -> Geometry {
            self.inner.geometry()
        }

        fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<U64Record>>> {
            self.issues += 1;
            if self.fail_reads > 0 {
                self.fail_reads -= 1;
                return Err(Self::transient());
            }
            self.inner.read(addrs)
        }

        fn write(&mut self, writes: Vec<(BlockAddr, Block<U64Record>)>) -> Result<()> {
            self.inner.write(writes)
        }

        fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<U64Record>> {
            self.issues += 1;
            if self.fail_submits > 0 {
                self.fail_submits -= 1;
                return Err(Self::transient());
            }
            let blocks = self.inner.read(addrs)?;
            Ok(ReadTicket::ready(addrs.to_vec(), blocks))
        }

        fn complete_read(&mut self, ticket: ReadTicket<U64Record>) -> Result<Vec<Block<U64Record>>> {
            if self.fail_completes > 0 {
                self.fail_completes -= 1;
                return Err(Self::transient());
            }
            match ticket.state {
                crate::backend::ReadState::Ready(blocks) => Ok(blocks),
                crate::backend::ReadState::Pending(_) => Err(PdiskError::TicketMismatch),
            }
        }

        fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
            self.inner.alloc_contiguous(disk, count)
        }

        fn stats(&self) -> IoStats {
            self.inner.stats()
        }

        fn reset_stats(&mut self) {
            self.inner.reset_stats();
        }
    }

    fn flaky_split(fail_submits: u32, fail_completes: u32, fail_reads: u32) -> FlakySplit {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let o = inner.alloc_contiguous(DiskId(0), 1).unwrap();
        inner
            .write(vec![(
                BlockAddr::new(DiskId(0), o),
                Block::new(vec![U64Record(1)], Forecast::Next(u64::MAX)),
            )])
            .unwrap();
        FlakySplit {
            inner,
            fail_submits,
            fail_completes,
            fail_reads,
            issues: 0,
        }
    }

    #[test]
    fn submit_and_complete_share_one_attempt_budget() {
        // Submit fails once (2 issues), the drain fails, the fallback
        // read succeeds: 3 issues total, within the budget of 4.
        let mut a = RetryingDiskArray::new(flaky_split(1, 1, 0), RetryPolicy::default());
        let addr = BlockAddr::new(DiskId(0), 0);
        let t = a.submit_read(&[addr]).unwrap();
        let got = a.complete_read(t).unwrap();
        assert_eq!(got[0].records[0], U64Record(1));
        assert_eq!(a.inner().issues, 3, "submit + retried submit + fallback read");
        assert_eq!(a.stats().read_retries, 2, "one submit retry + one completion re-issue");
    }

    #[test]
    fn completion_does_not_double_the_budget() {
        // Regression: submit consumes the budget's first two issues
        // (one transient failure + the success); when the completion
        // then fails, NO fallback issue remains — the old code gave the
        // completion a fresh budget of its own, letting one logical read
        // consume up to 2x max_attempts issues.
        let mut a = RetryingDiskArray::new(
            flaky_split(1, 1, 0),
            RetryPolicy::new(2, Duration::from_millis(1)),
        );
        let addr = BlockAddr::new(DiskId(0), 0);
        let t = a.submit_read(&[addr]).unwrap();
        let err = a.complete_read(t).unwrap_err();
        match err {
            PdiskError::RetriesExhausted { attempts, .. } => {
                assert_eq!(attempts, 2, "whole logical op capped at max_attempts")
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(
            a.inner().issues,
            2,
            "no issue beyond the per-logical-op budget of 2"
        );
        assert_eq!(a.stats().read_exhausted, 1);
    }

    #[test]
    fn clean_split_phase_costs_one_issue() {
        let mut a = RetryingDiskArray::new(flaky_split(0, 0, 0), RetryPolicy::default());
        let addr = BlockAddr::new(DiskId(0), 0);
        let t = a.submit_read(&[addr]).unwrap();
        a.complete_read(t).unwrap();
        assert_eq!(a.inner().issues, 1);
        assert_eq!(a.stats().read_retries, 0);
    }

    #[test]
    fn logic_errors_pass_straight_through() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::default()), RetryPolicy::default());
        let err = a.read(&[BlockAddr::new(DiskId(9), 0)]).unwrap_err();
        assert!(matches!(err, PdiskError::NoSuchDisk(_)));
        assert_eq!(a.retries(), (0, 0));
    }
}
