//! Bounded retry with simulated backoff.
//!
//! [`RetryingDiskArray`] wraps any backend and transparently re-issues
//! operations that fail with a *retryable* error (see
//! [`PdiskError::is_retryable`]): transient faults, OS-level I/O
//! errors, and checksum mismatches.  Permanent faults and logic errors
//! pass straight through.  When every attempt fails, the wrapper
//! returns [`PdiskError::RetriesExhausted`] carrying the final
//! attempt's error as its `source()`.
//!
//! Backoff is *simulated*: instead of sleeping, the wrapper accrues the
//! wait it would have performed into [`RetryingDiskArray::total_backoff`],
//! in the spirit of [`crate::timing`]'s counted-cost model — experiments
//! stay fast and deterministic while recovery cost remains measurable.
//! Retry counts are folded into the [`IoStats`] this wrapper reports,
//! per operation kind (`read_retries` / `write_retries` /
//! `alloc_retries`, and the matching `*_exhausted` give-up counters),
//! leaving the inner backend's logical operation counts untouched.
//! The schedule itself lives in one place — [`RetryPolicy::run`] — so
//! it cannot drift between operation kinds.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket};
use crate::block::Block;
use crate::error::{FaultOp, PdiskError, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;
use crate::timing::DiskModel;
use crate::trace::{TraceEvent, TraceSink};
use std::time::Duration;

/// How many times to try, and how long to (virtually) wait in between.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first; at least 1.
    pub max_attempts: u32,
    /// Simulated wait before the first retry.
    pub base_backoff: Duration,
    /// Factor applied to the wait after each failed retry (exponential
    /// backoff when `> 1`).
    pub multiplier: u32,
}

impl RetryPolicy {
    /// Up to `max_attempts` tries with exponential backoff from `base`.
    pub fn new(max_attempts: u32, base: Duration) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            base_backoff: base,
            multiplier: 2,
        }
    }

    /// A policy priced from a [`DiskModel`]: the first retry waits one
    /// block-sized operation time, doubling thereafter.
    pub fn from_model(max_attempts: u32, model: &DiskModel, block_bytes: usize) -> Self {
        Self::new(max_attempts, model.op_time(block_bytes))
    }

    /// Never retry; failures surface unchanged.
    pub fn none() -> Self {
        Self::new(1, Duration::ZERO)
    }

    /// Simulated wait before retry number `retry` (1-based).
    pub fn backoff_for(&self, retry: u32) -> Duration {
        debug_assert!(retry >= 1);
        self.base_backoff * self.multiplier.pow(retry - 1)
    }

    /// Run `op` to completion under this policy, charging `counters`.
    ///
    /// This is the *single* implementation of the retry/backoff schedule:
    /// every call site (reads, writes, allocations) goes through here, so
    /// the schedule is deterministic and jitterless by construction and
    /// cannot drift between operation kinds.  Non-retryable errors pass
    /// through on the first attempt; exhaustion returns
    /// [`PdiskError::RetriesExhausted`] and bumps `counters.exhausted`.
    pub fn run<T>(
        &self,
        counters: &mut RetryCounters,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) if attempt >= self.max_attempts => {
                    counters.exhausted += 1;
                    return Err(PdiskError::RetriesExhausted {
                        attempts: attempt,
                        last: Box::new(e),
                    });
                }
                Err(_) => {
                    counters.attempted += 1;
                    counters.backoff += self.backoff_for(attempt);
                    attempt += 1;
                }
            }
        }
    }
}

/// Retry accounting for one [`FaultOp`](crate::FaultOp) kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Attempts re-issued after a retryable failure.
    pub attempted: u64,
    /// Operations that failed every attempt.
    pub exhausted: u64,
    /// Simulated backoff accrued by the re-issues.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 ms base, exponential: absorbs any plausible
    /// transient-fault rate while keeping give-up latency bounded.
    fn default() -> Self {
        Self::new(4, Duration::from_millis(1))
    }
}

/// A [`DiskArray`] that absorbs transient faults by retrying.
#[derive(Debug)]
pub struct RetryingDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    policy: RetryPolicy,
    reads: RetryCounters,
    writes: RetryCounters,
    allocs: RetryCounters,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> RetryingDiskArray<R, A> {
    /// Wrap `inner` with the given policy.
    pub fn new(inner: A, policy: RetryPolicy) -> Self {
        RetryingDiskArray {
            inner,
            policy,
            reads: RetryCounters::default(),
            writes: RetryCounters::default(),
            allocs: RetryCounters::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Unwrap the inner backend.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The inner backend, e.g. to read its unretried stats.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the inner backend, e.g. to administratively
    /// fail or rebuild a disk in a wrapped redundancy layer.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Retries performed so far (reads, writes).  Allocation retries are
    /// reported separately by [`Self::counters`].
    pub fn retries(&self) -> (u64, u64) {
        (self.reads.attempted, self.writes.attempted)
    }

    /// Per-operation retry accounting, in [`FaultOp`](crate::FaultOp)
    /// order: reads, writes, allocations.
    pub fn counters(&self) -> (RetryCounters, RetryCounters, RetryCounters) {
        (self.reads, self.writes, self.allocs)
    }

    /// Total simulated backoff wait accrued by all retries.
    pub fn total_backoff(&self) -> Duration {
        self.reads.backoff + self.writes.backoff + self.allocs.backoff
    }

    /// Record `count` re-issues of `op` in the trace, if tracing is on.
    fn emit_retries(&self, op: FaultOp, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(sink) = self.inner.trace_sink() {
            for _ in 0..count {
                sink.emit(TraceEvent::Retry { op });
            }
        }
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for RetryingDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let out = self.policy.run(&mut self.reads, || inner.read(addrs));
        self.emit_retries(FaultOp::Read, self.reads.attempted - before);
        out
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        let before = self.writes.attempted;
        let inner = &mut self.inner;
        let out = self
            .policy
            .run(&mut self.writes, || inner.write(writes.clone()));
        self.emit_retries(FaultOp::Write, self.writes.attempted - before);
        out
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let before = self.allocs.attempted;
        let inner = &mut self.inner;
        let out = self
            .policy
            .run(&mut self.allocs, || inner.alloc_contiguous(disk, count));
        self.emit_retries(FaultOp::Alloc, self.allocs.attempted - before);
        out
    }

    /// Inner (logical) stats plus this wrapper's retry counters.
    fn stats(&self) -> IoStats {
        let mut stats = self.inner.stats();
        stats.read_retries += self.reads.attempted;
        stats.write_retries += self.writes.attempted;
        stats.alloc_retries += self.allocs.attempted;
        stats.read_exhausted += self.reads.exhausted;
        stats.write_exhausted += self.writes.exhausted;
        stats.alloc_exhausted += self.allocs.exhausted;
        stats
    }

    fn reset_stats(&mut self) {
        self.reads = RetryCounters::default();
        self.writes = RetryCounters::default();
        self.allocs = RetryCounters::default();
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<crate::backend::RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let out = self.policy.run(&mut self.reads, || inner.submit_read(addrs));
        self.emit_retries(FaultOp::Read, self.reads.attempted - before);
        out
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        // The first completion attempt drains the in-flight ticket; if
        // it fails with a retryable error the data is gone with it, so
        // further attempts fall back to a fresh synchronous read of the
        // same addresses.  Note the fallback charges a second read op
        // in the inner backend's stats — acceptable for a recovery
        // path, and unreachable through the CLI stacks, where the
        // parity layer executes submits eagerly and completion cannot
        // fail.
        let addrs: Vec<BlockAddr> = ticket.addrs().to_vec();
        let before = self.reads.attempted;
        let inner = &mut self.inner;
        let mut first = Some(ticket);
        let out = self.policy.run(&mut self.reads, || match first.take() {
            Some(t) => inner.complete_read(t),
            None => inner.read(&addrs),
        });
        self.emit_retries(FaultOp::Read, self.reads.attempted - before);
        out
    }

    // submit_write / complete_write deliberately use the trait defaults:
    // the default submit executes eagerly via `self.write`, which runs
    // this wrapper's retrying write logic, so split-phase writes through
    // a retry layer degenerate to the (fully protected) serial path.

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::error::{FaultKind, FaultOp};
    use crate::faulty::{FaultModel, FaultPlan, FaultyDiskArray};
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    type Faulty = FaultyDiskArray<U64Record, MemDiskArray<U64Record>>;

    fn faulty(model: impl Into<FaultModel>) -> Faulty {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let o = inner.alloc_contiguous(DiskId(0), 4).unwrap();
        for i in 0..4 {
            inner
                .write(vec![(
                    BlockAddr::new(DiskId(0), o + i),
                    Block::new(vec![U64Record(i)], Forecast::Next(u64::MAX)),
                )])
                .unwrap();
        }
        inner.reset_stats();
        FaultyDiskArray::new(inner, model)
    }

    #[test]
    fn absorbs_a_scripted_transient_read_fault() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::read(0)), RetryPolicy::default());
        let got = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap();
        assert_eq!(got[0].records[0], U64Record(0));
        assert_eq!(a.retries(), (1, 0));
        assert!(a.total_backoff() > Duration::ZERO);
        let stats = a.stats();
        assert_eq!(stats.read_retries, 1);
        assert_eq!(stats.read_ops, 1, "only the successful attempt counts");
    }

    #[test]
    fn absorbs_write_and_alloc_faults() {
        let mut a = RetryingDiskArray::new(
            faulty(FaultPlan::write(0).and_alloc(0)),
            RetryPolicy::default(),
        );
        let o = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let block = Block::new(vec![U64Record(7)], Forecast::Next(u64::MAX));
        a.write(vec![(BlockAddr::new(DiskId(1), o), block)]).unwrap();
        let stats = a.stats();
        assert_eq!(stats.write_retries, 1, "write retry charged to writes");
        assert_eq!(stats.alloc_retries, 1, "alloc retry charged to allocs");
        let (r, w, al) = a.counters();
        assert_eq!((r.attempted, w.attempted, al.attempted), (0, 1, 1));
        assert!(al.backoff > Duration::ZERO);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let mut a = RetryingDiskArray::new(
            faulty(FaultModel::none().kill_at(FaultOp::Read, 0)),
            RetryPolicy::default(),
        );
        let err = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap_err();
        assert!(matches!(
            err,
            PdiskError::Fault {
                kind: FaultKind::Permanent,
                ..
            }
        ));
        assert_eq!(a.retries(), (0, 0), "permanent faults must fail fast");
    }

    #[test]
    fn exhaustion_reports_attempts_and_chains_source() {
        use std::error::Error as _;
        // 100% transient read faults can never succeed.
        let mut a = RetryingDiskArray::new(
            faulty(FaultModel::random(1).with_read_rate(1.0)),
            RetryPolicy::new(3, Duration::from_millis(1)),
        );
        let err = a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap_err();
        match &err {
            PdiskError::RetriesExhausted { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert!(err.source().unwrap().to_string().contains("transient"));
        assert_eq!(a.retries(), (2, 0), "two retries after the first attempt");
        let stats = a.stats();
        assert_eq!(stats.read_exhausted, 1, "give-up must be counted");
        assert_eq!(stats.write_exhausted, 0);
    }

    #[test]
    fn policy_run_is_the_single_backoff_implementation() {
        // Deterministic, jitterless: two identical runs accrue identical
        // backoff, and the schedule matches backoff_for exactly.
        let p = RetryPolicy::new(3, Duration::from_millis(5));
        let run_once = || {
            let mut c = RetryCounters::default();
            let mut failures = 2;
            let r = p.run(&mut c, || {
                if failures > 0 {
                    failures -= 1;
                    Err(PdiskError::Fault {
                        kind: FaultKind::Transient,
                        op: FaultOp::Read,
                        disk: None,
                    })
                } else {
                    Ok(())
                }
            });
            (r.is_ok(), c)
        };
        let (ok1, c1) = run_once();
        let (ok2, c2) = run_once();
        assert!(ok1 && ok2);
        assert_eq!(c1, c2, "schedule must be deterministic");
        assert_eq!(c1.attempted, 2);
        assert_eq!(c1.exhausted, 0);
        assert_eq!(c1.backoff, p.backoff_for(1) + p.backoff_for(2));
    }

    #[test]
    fn reset_stats_clears_retry_accounting() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::read(0)), RetryPolicy::default());
        a.read(&[BlockAddr::new(DiskId(0), 0)]).unwrap();
        assert_eq!(a.stats().read_retries, 1);
        a.reset_stats();
        assert_eq!(a.stats().read_retries, 0);
        assert_eq!(a.total_backoff(), Duration::ZERO);
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::new(4, Duration::from_millis(2));
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(8));
    }

    #[test]
    fn policy_from_model_prices_one_op() {
        let m = DiskModel::hdd_1996();
        let p = RetryPolicy::from_model(5, &m, 1 << 16);
        assert_eq!(p.base_backoff, m.op_time(1 << 16));
    }

    #[test]
    fn logic_errors_pass_straight_through() {
        let mut a = RetryingDiskArray::new(faulty(FaultPlan::default()), RetryPolicy::default());
        let err = a.read(&[BlockAddr::new(DiskId(9), 0)]).unwrap_err();
        assert!(matches!(err, PdiskError::NoSuchDisk(_)));
        assert_eq!(a.retries(), (0, 0));
    }
}
