//! In-memory disk array: the exact-accounting simulation backend.
//!
//! This is the substrate equivalent to the paper's own evaluation: blocks
//! live in RAM, every [`DiskArray::read`]/[`DiskArray::write`] is counted as
//! one parallel operation, and the model constraint (≤ 1 block per disk per
//! operation) is enforced strictly.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::DiskArray;
use crate::block::Block;
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;
use crate::trace::{TraceEvent, TraceSink};

/// A simulated array of `D` disks holding blocks in RAM.
///
/// # Examples
///
/// ```
/// use pdisk::{Block, BlockAddr, DiskArray, DiskId, Forecast, Geometry,
///             MemDiskArray, U64Record};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
///
/// // Reserve a slot on each disk and write one stripe: ONE parallel op.
/// let a = BlockAddr::new(DiskId(0), array.alloc_contiguous(DiskId(0), 1)?);
/// let b = BlockAddr::new(DiskId(1), array.alloc_contiguous(DiskId(1), 1)?);
/// let block = |k: u64| Block::new(vec![U64Record(k)], Forecast::Next(u64::MAX));
/// array.write(vec![(a, block(1)), (b, block(2))])?;
/// assert_eq!(array.stats().write_ops, 1);
/// assert_eq!(array.stats().blocks_written, 2);
///
/// let blocks = array.read(&[a, b])?;
/// assert_eq!(blocks[0].min_key(), 1);
/// # Ok::<(), pdisk::PdiskError>(())
/// ```
#[derive(Debug)]
pub struct MemDiskArray<R: Record> {
    geom: Geometry,
    /// `disks[d][slot]` is the block stored there, if any.
    disks: Vec<Vec<Option<Block<R>>>>,
    stats: IoStats,
    /// Per-disk `(blocks read, blocks written)` — randomized striping's
    /// load-balance claim is checked against these.
    loads: Vec<(u64, u64)>,
    /// Addresses marked corrupt by [`MemDiskArray::corrupt_block`];
    /// reading one fails like a checksum mismatch would on disk.
    corrupted: std::collections::BTreeSet<BlockAddr>,
    /// Trace sink, when tracing is active ([`DiskArray::install_trace`]).
    trace: Option<TraceSink>,
}

impl<R: Record> MemDiskArray<R> {
    /// Create an empty array for `geom`.
    pub fn new(geom: Geometry) -> Self {
        MemDiskArray {
            geom,
            disks: (0..geom.d).map(|_| Vec::new()).collect(),
            stats: IoStats::default(),
            loads: vec![(0, 0); geom.d],
            corrupted: std::collections::BTreeSet::new(),
            trace: None,
        }
    }

    /// Mark a stored block corrupt: subsequent reads of `addr` fail with
    /// [`PdiskError::Corrupt`], exactly as the file backend reports a
    /// checksum mismatch.  The simulation counterpart of flipping bytes
    /// in a disk file — tests use it to drive consumers through the
    /// corruption path without a real filesystem.  Overwriting the block
    /// clears the mark (fresh data, fresh checksum).
    pub fn corrupt_block(&mut self, addr: BlockAddr) -> Result<()> {
        if self.slot(addr)?.is_none() {
            return Err(PdiskError::UnmappedBlock(addr));
        }
        self.corrupted.insert(addr);
        Ok(())
    }

    /// Per-disk `(blocks read, blocks written)` since construction or the
    /// last [`DiskArray::reset_stats`].
    pub fn disk_loads(&self) -> &[(u64, u64)] {
        &self.loads
    }

    fn slot(&self, addr: BlockAddr) -> Result<&Option<Block<R>>> {
        let disk = self
            .disks
            .get(addr.disk.index())
            .ok_or(PdiskError::NoSuchDisk(addr.disk))?;
        disk.get(addr.offset as usize)
            .ok_or(PdiskError::UnmappedBlock(addr))
    }

    /// Total block slots currently reserved across all disks (diagnostic).
    pub fn allocated_blocks(&self) -> usize {
        self.disks.iter().map(Vec::len).sum()
    }

    /// Peek at a block without performing (or charging) any I/O.
    ///
    /// Intended for tests and verification code only; algorithms must go
    /// through [`DiskArray::read`].
    pub fn peek(&self, addr: BlockAddr) -> Result<Option<&Block<R>>> {
        Ok(self.slot(addr)?.as_ref())
    }
}

impl<R: Record> DiskArray<R> for MemDiskArray<R> {
    fn geometry(&self) -> Geometry {
        self.geom
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        self.geom.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        let mut out = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            if self.corrupted.contains(&addr) {
                return Err(PdiskError::Corrupt(format!(
                    "block checksum mismatch at {addr:?} (injected)"
                )));
            }
            let block = self
                .slot(addr)?
                .as_ref()
                .ok_or(PdiskError::UnmappedBlock(addr))?
                .clone();
            out.push(block);
        }
        for addr in addrs {
            self.loads[addr.disk.index()].0 += 1;
        }
        self.stats.record_read(addrs.len());
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::PhysRead {
                addrs: addrs.to_vec(),
            });
        }
        Ok(out)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        self.geom
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let n = writes.len();
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        for (addr, block) in writes {
            if block.len() > self.geom.b {
                return Err(PdiskError::BadBlockSize {
                    expected: self.geom.b,
                    got: block.len(),
                });
            }
            // Validate the slot exists before mutating anything else.
            self.slot(addr)?;
            self.disks[addr.disk.index()][addr.offset as usize] = Some(block);
            self.corrupted.remove(&addr);
            self.loads[addr.disk.index()].1 += 1;
        }
        self.stats.record_write(n);
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::PhysWrite { addrs });
        }
        Ok(())
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let vec = self
            .disks
            .get_mut(disk.index())
            .ok_or(PdiskError::NoSuchDisk(disk))?;
        let start = vec.len() as u64;
        vec.resize_with(vec.len() + count as usize, || None);
        Ok(start)
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.loads = vec![(0, 0); self.geom.d];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::record::U64Record;

    fn geom() -> Geometry {
        Geometry::new(3, 2, 100).unwrap()
    }

    fn blk(keys: &[u64]) -> Block<U64Record> {
        Block::new(
            keys.iter().map(|&k| U64Record(k)).collect(),
            Forecast::Next(u64::MAX),
        )
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o0 = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let w = vec![
            (BlockAddr::new(DiskId(0), o0), blk(&[1, 2])),
            (BlockAddr::new(DiskId(1), o1), blk(&[3, 4])),
        ];
        a.write(w).unwrap();
        let got = a
            .read(&[BlockAddr::new(DiskId(1), o1), BlockAddr::new(DiskId(0), o0)])
            .unwrap();
        assert_eq!(got[0].min_key(), 3);
        assert_eq!(got[1].min_key(), 1);
    }

    #[test]
    fn each_transfer_is_one_parallel_op() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 3).unwrap();
        for i in 0..3 {
            a.write(vec![(BlockAddr::new(DiskId(0), o + i), blk(&[i]))])
                .unwrap();
        }
        assert_eq!(a.stats().write_ops, 3);
        assert_eq!(a.stats().blocks_written, 3);
        a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        assert_eq!(a.stats().read_ops, 1);
    }

    #[test]
    fn duplicate_disk_in_one_op_rejected() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(2), 2).unwrap();
        let err = a
            .read(&[BlockAddr::new(DiskId(2), o), BlockAddr::new(DiskId(2), o + 1)])
            .unwrap_err();
        assert!(matches!(err, PdiskError::DuplicateDisk(DiskId(2))));
        // And nothing was charged.
        assert_eq!(a.stats().read_ops, 0);
    }

    #[test]
    fn unmapped_and_unwritten_blocks_fail_reads() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        // Allocated but never written.
        assert!(matches!(
            a.read(&[BlockAddr::new(DiskId(0), o)]),
            Err(PdiskError::UnmappedBlock(_))
        ));
        // Never allocated.
        assert!(matches!(
            a.read(&[BlockAddr::new(DiskId(1), 99)]),
            Err(PdiskError::UnmappedBlock(_))
        ));
    }

    #[test]
    fn corrupt_block_poisons_reads_until_overwritten() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let addr = BlockAddr::new(DiskId(0), o);
        a.write(vec![(addr, blk(&[5, 6]))]).unwrap();
        a.corrupt_block(addr).unwrap();
        let err = a.read(&[addr]).unwrap_err();
        assert!(matches!(err, PdiskError::Corrupt(_)), "got {err:?}");
        // Rewriting the slot replaces the data — and its "checksum".
        a.write(vec![(addr, blk(&[7, 8]))]).unwrap();
        assert_eq!(a.read(&[addr]).unwrap()[0].min_key(), 7);
        // Corrupting an unwritten slot is a caller bug, not silent.
        let o2 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        assert!(matches!(
            a.corrupt_block(BlockAddr::new(DiskId(1), o2)),
            Err(PdiskError::UnmappedBlock(_))
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let err = a
            .write(vec![(BlockAddr::new(DiskId(0), o), blk(&[1, 2, 3]))])
            .unwrap_err();
        assert!(matches!(err, PdiskError::BadBlockSize { expected: 2, got: 3 }));
    }

    #[test]
    fn empty_ops_are_free() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        a.read(&[]).unwrap();
        a.write(vec![]).unwrap();
        assert_eq!(a.stats().total_ops(), 0);
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[1]))]).unwrap();
        a.reset_stats();
        assert_eq!(a.stats(), IoStats::default());
    }

    #[test]
    fn disk_loads_track_per_disk_blocks() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o0 = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let o2 = a.alloc_contiguous(DiskId(2), 1).unwrap();
        a.write(vec![
            (BlockAddr::new(DiskId(0), o0), blk(&[1])),
            (BlockAddr::new(DiskId(2), o2), blk(&[2])),
        ])
        .unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o0 + 1), blk(&[3]))]).unwrap();
        a.read(&[BlockAddr::new(DiskId(0), o0)]).unwrap();
        assert_eq!(a.disk_loads(), &[(1, 2), (0, 0), (0, 1)]);
        a.reset_stats();
        assert_eq!(a.disk_loads(), &[(0, 0); 3]);
    }

    #[test]
    fn partial_final_block_allowed() {
        // A block smaller than B (the last block of a run) is storable.
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let o = a.alloc_contiguous(DiskId(0), 1).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[7]))]).unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        assert_eq!(got[0].len(), 1);
    }
}
