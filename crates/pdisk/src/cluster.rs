//! Partial striping (Vitter–Shriver's technique, invoked by the paper's
//! §2.2 to enforce `D = O(B)`).
//!
//! Groups the `D` physical disks into clusters of `c`, presenting a
//! logical array with `D' = D/c` disks and block size `B' = c·B`: one
//! logical block is a mini-stripe across its cluster.  A logical parallel
//! operation touches each cluster at most once, hence each *physical*
//! disk at most once — it maps to exactly **one** physical parallel
//! operation, so logical and physical operation counts coincide.
//!
//! Use when `D` outgrows `B` and SRM's merge-order formula
//! `(M/B − 4D)/(2 + D/B)` starts to suffer: pick `c` so that
//! `D' = O(B')`, trading a factor-`c` coarser stripe for a healthy merge
//! order.

use crate::addr::{BlockAddr, DiskId};
use crate::backend::DiskArray;
use crate::block::{Block, Forecast};
use crate::error::{PdiskError, Result};
use crate::geometry::Geometry;
use crate::record::Record;
use crate::stats::IoStats;

/// A clustered view over a physical [`DiskArray`].
#[derive(Debug)]
pub struct ClusteredDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    c: usize,
    logical: Geometry,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> ClusteredDiskArray<R, A> {
    /// Cluster `inner`'s disks in groups of `c`.
    ///
    /// Requires `c` to divide the physical disk count.  The wrapper must
    /// be the array's only allocator (it keeps each cluster's per-disk
    /// allocators in lockstep).
    pub fn new(inner: A, c: usize) -> Result<Self> {
        let phys = inner.geometry();
        if c == 0 || phys.d % c != 0 {
            return Err(PdiskError::BadGeometry(format!(
                "cluster size {c} must divide D = {}",
                phys.d
            )));
        }
        let logical = Geometry::new(phys.d / c, phys.b * c, phys.m)?;
        Ok(ClusteredDiskArray {
            inner,
            c,
            logical,
            _marker: std::marker::PhantomData,
        })
    }

    /// The physical backend (e.g. to read its raw stats).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Cluster size `c`.
    pub fn cluster_size(&self) -> usize {
        self.c
    }

    fn physical_addrs(&self, addr: BlockAddr) -> impl Iterator<Item = BlockAddr> + '_ {
        let base = addr.disk.index() * self.c;
        (0..self.c).map(move |i| BlockAddr::new(DiskId::from_index(base + i), addr.offset))
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for ClusteredDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.logical
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        self.logical.check_parallel_op(addrs.iter().map(|a| a.disk))?;
        let phys: Vec<BlockAddr> = addrs
            .iter()
            .flat_map(|&a| self.physical_addrs(a))
            .collect();
        let blocks = self.inner.read(&phys)?;
        // Reassemble: each run of `c` physical blocks is one logical
        // block; the logical forecast rides in the first physical block.
        let mut out = Vec::with_capacity(addrs.len());
        for group in blocks.chunks(self.c) {
            let forecast = group[0].forecast.clone();
            let mut records = Vec::with_capacity(self.logical.b);
            for b in group {
                records.extend(b.records.iter().copied());
            }
            out.push(Block { records, forecast });
        }
        Ok(out)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        if writes.is_empty() {
            return Ok(());
        }
        self.logical
            .check_parallel_op(writes.iter().map(|(a, _)| a.disk))?;
        let phys_b = self.inner.geometry().b;
        let mut phys = Vec::with_capacity(writes.len() * self.c);
        for (addr, block) in writes {
            if block.len() > self.logical.b {
                return Err(PdiskError::BadBlockSize {
                    expected: self.logical.b,
                    got: block.len(),
                });
            }
            let mut chunks = block.records.chunks(phys_b);
            for (i, paddr) in self.physical_addrs(addr).enumerate() {
                let records = chunks.next().map(<[R]>::to_vec).unwrap_or_default();
                let forecast = if i == 0 {
                    block.forecast.clone()
                } else {
                    Forecast::Next(crate::block::NO_BLOCK)
                };
                phys.push((paddr, Block { records, forecast }));
            }
        }
        self.inner.write(phys)
    }

    fn install_pool(&mut self, pool: crate::pool::BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&crate::pool::BufferPool<R>> {
        self.inner.buffer_pool()
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        if disk.index() >= self.logical.d {
            return Err(PdiskError::NoSuchDisk(disk));
        }
        let base = disk.index() * self.c;
        let first = self
            .inner
            .alloc_contiguous(DiskId::from_index(base), count)?;
        for i in 1..self.c {
            let off = self
                .inner
                .alloc_contiguous(DiskId::from_index(base + i), count)?;
            assert_eq!(
                off, first,
                "cluster {disk} allocators out of lockstep (physical disk {i})"
            );
        }
        Ok(first)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    /// Scrub every physical block of the logical mini-stripe and fold
    /// the outcomes: any unrepairable member poisons the logical block,
    /// otherwise one repair suffices to report it repaired.
    fn scrub_block(&mut self, addr: BlockAddr) -> Result<crate::backend::ScrubOutcome> {
        use crate::backend::ScrubOutcome;
        if addr.disk.index() >= self.logical.d {
            return Err(PdiskError::NoSuchDisk(addr.disk));
        }
        let phys: Vec<BlockAddr> = self.physical_addrs(addr).collect();
        let mut repaired = false;
        for pa in phys {
            match self.inner.scrub_block(pa)? {
                ScrubOutcome::Clean => {}
                ScrubOutcome::Repaired => repaired = true,
                ScrubOutcome::Unrepairable(why) => {
                    return Ok(ScrubOutcome::Unrepairable(format!(
                        "physical member {pa:?} of logical block {addr:?}: {why}"
                    )));
                }
            }
        }
        Ok(if repaired {
            ScrubOutcome::Repaired
        } else {
            ScrubOutcome::Clean
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    fn clustered(
        d: usize,
        b: usize,
        m: usize,
        c: usize,
    ) -> ClusteredDiskArray<U64Record, MemDiskArray<U64Record>> {
        let inner = MemDiskArray::new(Geometry::new(d, b, m).unwrap());
        ClusteredDiskArray::new(inner, c).unwrap()
    }

    #[test]
    fn geometry_is_reclustered() {
        let a = clustered(8, 2, 1000, 4);
        let g = a.geometry();
        assert_eq!(g.d, 2);
        assert_eq!(g.b, 8);
        assert_eq!(g.m, 1000);
        assert_eq!(a.cluster_size(), 4);
    }

    #[test]
    fn bad_cluster_sizes_rejected() {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(Geometry::new(6, 2, 1000).unwrap());
        assert!(ClusteredDiskArray::new(inner, 4).is_err());
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(Geometry::new(6, 2, 1000).unwrap());
        assert!(ClusteredDiskArray::new(inner, 0).is_err());
    }

    #[test]
    fn logical_roundtrip_preserves_records_and_forecast() {
        let mut a = clustered(4, 2, 1000, 2);
        let off = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let block = Block::new(
            (10..14).map(U64Record).collect(), // logical B' = c·B = 4
            Forecast::Initial(vec![1, 2]),
        );
        a.write(vec![(BlockAddr::new(DiskId(1), off), block.clone())])
            .unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(1), off)]).unwrap();
        assert_eq!(got[0], block);
    }

    #[test]
    fn partial_logical_block_roundtrips() {
        let mut a = clustered(4, 2, 1000, 2);
        let off = a.alloc_contiguous(DiskId(0), 1).unwrap();
        // 3 records in a logical block of 4: second physical block partial.
        let block = Block::new(vec![U64Record(1), U64Record(2), U64Record(3)], Forecast::Next(9));
        a.write(vec![(BlockAddr::new(DiskId(0), off), block.clone())])
            .unwrap();
        let got = a.read(&[BlockAddr::new(DiskId(0), off)]).unwrap();
        assert_eq!(got[0], block);
    }

    #[test]
    fn one_logical_op_is_one_physical_op() {
        let mut a = clustered(8, 2, 10_000, 4);
        let o0 = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let o1 = a.alloc_contiguous(DiskId(1), 1).unwrap();
        let mk = |base: u64| Block::new((base..base + 8).map(U64Record).collect(), Forecast::Next(0));
        a.write(vec![
            (BlockAddr::new(DiskId(0), o0), mk(0)),
            (BlockAddr::new(DiskId(1), o1), mk(100)),
        ])
        .unwrap();
        // 2 logical blocks = 8 physical blocks, one parallel write.
        assert_eq!(a.stats().write_ops, 1);
        assert_eq!(a.stats().blocks_written, 8);
        a.read(&[BlockAddr::new(DiskId(0), o0), BlockAddr::new(DiskId(1), o1)])
            .unwrap();
        assert_eq!(a.stats().read_ops, 1);
        assert_eq!(a.stats().blocks_read, 8);
    }

    #[test]
    fn duplicate_logical_disk_rejected() {
        let mut a = clustered(4, 2, 1000, 2);
        let off = a.alloc_contiguous(DiskId(0), 2).unwrap();
        let err = a
            .read(&[BlockAddr::new(DiskId(0), off), BlockAddr::new(DiskId(0), off + 1)])
            .unwrap_err();
        assert!(matches!(err, PdiskError::DuplicateDisk(_)));
    }

    #[test]
    fn out_of_range_logical_disk_rejected() {
        let mut a = clustered(4, 2, 1000, 2);
        assert!(matches!(
            a.alloc_contiguous(DiskId(2), 1),
            Err(PdiskError::NoSuchDisk(_))
        ));
    }

    #[test]
    fn oversized_logical_block_rejected() {
        let mut a = clustered(4, 2, 1000, 2);
        let off = a.alloc_contiguous(DiskId(0), 1).unwrap();
        let too_big = Block::new((0..5).map(U64Record).collect(), Forecast::Next(0));
        assert!(matches!(
            a.write(vec![(BlockAddr::new(DiskId(0), off), too_big)]),
            Err(PdiskError::BadBlockSize { expected: 4, got: 5 })
        ));
    }
}
