//! Structured I/O tracing: the event stream `modelcheck` replays.
//!
//! A [`TraceSink`] is a shared, append-only log of [`TraceEvent`]s.  Each
//! event is stamped with a sequence number and the current *pass* tag
//! (set by the sorters at pass boundaries), giving every recorded fact a
//! location — pass, stripe, disk — that a checker can report verbatim.
//!
//! Two kinds of events coexist in one log:
//!
//! * **backend events**, emitted by the storage layers themselves:
//!   physical reads/writes/allocations from [`crate::MemDiskArray`] /
//!   [`crate::FileDiskArray`], injected faults from
//!   [`crate::FaultyDiskArray`], retry re-issues from
//!   [`crate::RetryingDiskArray`], and reconstruction / parity-placement
//!   events from [`crate::ParityDiskArray`];
//! * **algorithm annotations**, emitted by the merge engine and run
//!   writer (scheduler decisions, buffer occupancy, run boundaries) so a
//!   replay can rebuild the scheduler's model state independently.
//!
//! Recording is *off by default and zero-cost when off*: every backend
//! holds an `Option<TraceSink>` that is `None` unless a sink was
//! installed via [`DiskArray::install_trace`], and emission sites are a
//! single `Option` test.  The intended way to trace a workload is to
//! wrap the top of a backend stack in [`TracingDiskArray`], which
//! creates a sink, pushes it down the stack, and additionally records
//! the *logical* operation stream exactly as the algorithm issued it
//! (above any parity remapping or retry absorption).
//!
//! [`DiskArray::install_trace`]: crate::DiskArray::install_trace

use std::sync::{Arc, Mutex, MutexGuard};

use crate::addr::{BlockAddr, DiskId};
use crate::backend::{DiskArray, ReadTicket, WriteTicket};
use crate::block::Block;
use crate::error::{FaultKind, FaultOp, Result};
use crate::geometry::Geometry;
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;

/// Layout of one input run, announced at the start of a traced merge so
/// a replay can map `(run, block idx)` to the [`BlockAddr`] the engine
/// must have read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRunMeta {
    /// Disk holding the run's block 0.
    pub start_disk: DiskId,
    /// Number of blocks in the run.
    pub len_blocks: u64,
    /// Per-disk slot of the run's first block on that disk.
    pub base_offsets: Vec<u64>,
}

impl TraceRunMeta {
    /// Disk of block `i` under the cyclic layout.
    pub fn disk_of(&self, i: u64) -> DiskId {
        DiskId::from_mod(u64::from(self.start_disk.0) + i, self.base_offsets.len())
    }

    /// Address of block `i` (mirrors [`crate::StripedRun::addr_of`]).
    pub fn addr_of(&self, i: u64) -> BlockAddr {
        let d = self.base_offsets.len() as u64;
        let disk = self.disk_of(i);
        BlockAddr::new(disk, self.base_offsets[disk.index()] + i / d)
    }
}

/// One block fetched by a scheduled parallel read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceBlock {
    /// Input run the block belongs to.
    pub run: u32,
    /// Block index within the run.
    pub idx: u64,
    /// The block's minimum key (its forecasting key).
    pub key: u64,
    /// Disk the scheduler expects to fetch it from.
    pub disk: DiskId,
    /// Forecast key implanted in the block for the run's next block on
    /// the same disk (`None` at the run's tail).
    pub implant: Option<u64>,
    /// Whether the block goes straight to the leading buffer `M_L`
    /// (exchange rule 2 of §5.2) instead of staging in `M_D`.
    pub to_leading: bool,
}

/// One block targeted by a split-phase scheduled read, recorded at
/// submit time — before the block's contents (implant key, destination
/// buffer) are known, which is what distinguishes this from the
/// completion-time [`TraceBlock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTarget {
    /// Input run the block belongs to.
    pub run: u32,
    /// Block index within the run.
    pub idx: u64,
    /// The block's minimum key (its forecasting key).
    pub key: u64,
    /// Disk the scheduler expects to fetch it from.
    pub disk: DiskId,
}

/// One block virtually flushed by scheduling rule 2c.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFlush {
    /// Input run the flushed block belongs to.
    pub run: u32,
    /// Block index within the run.
    pub idx: u64,
    /// The block's minimum key.
    pub key: u64,
    /// The block's home disk, where its forecasting entry is restored.
    pub disk: DiskId,
}

/// One recorded fact.  Backend events describe what the storage stack
/// did; annotation events describe what the algorithm decided.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A parallel read as issued by the algorithm (top of the stack,
    /// logical addresses, recorded only on success).
    Read {
        /// Logical addresses fetched, one per participating disk.
        addrs: Vec<BlockAddr>,
    },
    /// A parallel write as issued by the algorithm.
    Write {
        /// Logical addresses written, one per participating disk.
        addrs: Vec<BlockAddr>,
    },
    /// A parallel write's durable completion.  Serial writes emit this
    /// immediately after their [`Write`]; a pipelined engine emits it
    /// only when the write ticket completes successfully, so the gap
    /// between the two events is exactly the window a crash can tear.
    /// The `modelcheck` recovery invariant forbids reading a block
    /// whose `Write` was never followed by this event.
    ///
    /// [`Write`]: TraceEvent::Write
    WriteDurable {
        /// Logical addresses whose write completed, in request order.
        addrs: Vec<BlockAddr>,
    },
    /// A parallel read executed by a bottom backend (physical
    /// addresses, below any parity remap; includes reconstruction
    /// sibling reads).
    PhysRead {
        /// Physical addresses fetched.
        addrs: Vec<BlockAddr>,
    },
    /// A parallel write executed by a bottom backend.
    PhysWrite {
        /// Physical addresses written.
        addrs: Vec<BlockAddr>,
    },
    /// A successful allocation of `count` slots from `start` on `disk`.
    Alloc {
        /// Disk the slots were reserved on.
        disk: DiskId,
        /// First reserved slot.
        start: u64,
        /// Number of slots reserved.
        count: u64,
    },
    /// The fault layer injected a fault.
    Fault {
        /// Operation the fault hit.
        op: FaultOp,
        /// Transient or permanent.
        kind: FaultKind,
        /// Disk blamed, when the model names one.
        disk: Option<DiskId>,
    },
    /// The retry layer re-issued an operation after a retryable error.
    Retry {
        /// Operation kind that was retried.
        op: FaultOp,
    },
    /// The parity layer served a block by XOR reconstruction.
    Reconstruct {
        /// Disk whose block was reconstructed.
        disk: DiskId,
        /// Physical stripe index.
        stripe: u64,
        /// Surviving sibling blocks that were read to rebuild it.
        siblings: Vec<BlockAddr>,
    },
    /// The parity layer entered degraded mode for `disk`, whether from
    /// a permanent fault observed mid-operation or an administrative
    /// kill (the fault layer only traces the former, so checkers track
    /// the dead set from this event).
    DiskDeath {
        /// Disk now served by reconstruction.
        disk: DiskId,
    },
    /// An online rebuild returned `disk` to direct service.
    DiskRebuilt {
        /// Disk no longer served by reconstruction.
        disk: DiskId,
    },
    /// The scrubber repaired a latent-corrupt block in place from its
    /// stripe's parity.
    ScrubRepair {
        /// Physical address of the rewritten block.
        addr: BlockAddr,
        /// Physical stripe index the reconstruction used.
        stripe: u64,
    },
    /// The parity layer committed a parity update for one stripe.
    ParityCommit {
        /// Physical stripe index.
        stripe: u64,
        /// Disk holding the stripe's parity (reserved slot identity).
        parity_disk: DiskId,
        /// Physical disks of the data blocks written into the stripe by
        /// this operation.
        data_disks: Vec<DiskId>,
    },
    /// A sorter entered merge pass `pass` (0 = run formation).
    PassBegin {
        /// Pass number.
        pass: u64,
    },
    /// A forecast-and-flush merge started.
    MergeBegin {
        /// Merge order (number of input runs).
        r: usize,
        /// Geometry the merge runs under.
        geom: Geometry,
        /// Layouts of the input runs, indexed by run id.
        runs: Vec<TraceRunMeta>,
    },
    /// Step 1 seeded one forecasting-table entry from an initial block's
    /// implanted key table.
    InitImplant {
        /// Run the entry belongs to.
        run: u32,
        /// Block index the entry points at.
        idx: u64,
        /// The implanted minimum key.
        key: u64,
        /// Disk the entry lives on.
        disk: DiskId,
    },
    /// Step 1 fetched a batch of initial blocks (block 0 of each run).
    InitLoad {
        /// `(run, disk)` of each fetched initial block.
        blocks: Vec<(u32, DiskId)>,
    },
    /// A pipelined engine *submitted* one scheduled parallel read
    /// without waiting for it.  The flush decision and the fetch set
    /// are fixed here — at the same merge position the serial engine
    /// would issue its blocking read — while the arrivals (implants,
    /// buffer routing) are recorded by the matching [`SchedRead`]
    /// event when the engine later completes the ticket.  Serial
    /// merges never emit this event.
    ///
    /// [`SchedRead`]: TraceEvent::SchedRead
    ReadSubmit {
        /// The fetch set `S_t`: per-disk forecast-minimal blocks.
        targets: Vec<TraceTarget>,
        /// Blocks evicted by rule 2c before the read (empty otherwise).
        flushed: Vec<TraceFlush>,
    },
    /// The scheduler committed to one `ParRead`, possibly preceded by a
    /// `Flush` (§5.5 rules 2a–2c).
    SchedRead {
        /// The fetch set `S_t`: per-disk forecast-minimal blocks.
        targets: Vec<TraceBlock>,
        /// Blocks evicted by rule 2c before the read (empty otherwise).
        flushed: Vec<TraceFlush>,
        /// `|F|` after the read's arrivals, as the scheduler believes it.
        fset_len: usize,
        /// `|M_D|` after the read's arrivals, as the scheduler believes it.
        staged_len: usize,
    },
    /// A buffered block moved from `M_R`/`M_D` to the leading buffer.
    Promote {
        /// Run whose block was promoted.
        run: u32,
        /// Block index promoted.
        idx: u64,
    },
    /// A leading block was fully consumed and its buffer released.
    Deplete {
        /// Run whose leading block was consumed.
        run: u32,
        /// Block index consumed.
        idx: u64,
    },
    /// The merge completed.
    MergeEnd,
    /// A run writer started emitting an output run.
    RunStart {
        /// Disk holding the run's block 0 (random in SRM).
        start_disk: DiskId,
    },
    /// A run writer finished its run.
    RunEnd {
        /// Disk holding the run's block 0.
        start_disk: DiskId,
        /// Blocks the run occupies.
        len_blocks: u64,
    },
}

/// A [`TraceEvent`] with its location stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged {
    /// Position in the log (0-based, dense).
    pub seq: u64,
    /// Pass tag current when the event was recorded.
    pub pass: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct TraceBuf {
    events: Vec<Tagged>,
    pass: u64,
}

/// Shared, append-only event log.  Cloning shares the log.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    buf: Arc<Mutex<TraceBuf>>, // srmlint::leaf — innermost lock; never acquire under it
}

impl TraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> crate::lockwitness::Witnessed<MutexGuard<'_, TraceBuf>> {
        // A panic while holding the lock poisons it; the log itself is
        // still consistent (appends are atomic), so recover the guard.
        crate::lockwitness::guard(
            "pdisk::trace::TraceSink.buf",
            self.buf.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// Append one event, stamping sequence number and pass.
    pub fn emit(&self, event: TraceEvent) {
        let mut buf = self.lock();
        let seq = buf.events.len() as u64;
        let pass = buf.pass;
        buf.events.push(Tagged { seq, pass, event });
    }

    /// Set the pass tag for subsequent events and record the boundary.
    pub fn begin_pass(&self, pass: u64) {
        {
            let mut buf = self.lock();
            buf.pass = pass;
        }
        self.emit(TraceEvent::PassBegin { pass });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the log, leaving it empty (pass tag preserved).
    pub fn take(&self) -> Vec<Tagged> {
        std::mem::take(&mut self.lock().events)
    }

    /// Copy of the log without draining it.
    pub fn snapshot(&self) -> Vec<Tagged> {
        self.lock().events.clone()
    }
}

/// Top-of-stack wrapper that records the *logical* operation stream —
/// reads, writes, and allocations exactly as the algorithm issued them —
/// and installs its sink down the stack so every layer's own events land
/// in the same log.
///
/// # Examples
///
/// ```
/// use pdisk::{DiskArray, DiskId, Geometry, MemDiskArray, U64Record};
/// use pdisk::trace::{TraceEvent, TracingDiskArray};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
/// a.alloc_contiguous(DiskId(0), 1)?;
/// let trace = a.take_trace();
/// assert!(matches!(trace[0].event, TraceEvent::Alloc { count: 1, .. }));
/// # Ok::<(), pdisk::PdiskError>(())
/// ```
#[derive(Debug)]
pub struct TracingDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    sink: TraceSink,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> TracingDiskArray<R, A> {
    /// Wrap `inner`, creating a fresh sink and installing it down the
    /// stack.
    pub fn new(inner: A) -> Self {
        Self::with_sink(inner, TraceSink::new())
    }

    /// Wrap `inner`, recording into an existing `sink`.
    pub fn with_sink(mut inner: A, sink: TraceSink) -> Self {
        inner.install_trace(sink.clone());
        TracingDiskArray {
            inner,
            sink,
            _marker: std::marker::PhantomData,
        }
    }

    /// The shared sink.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Drain the recorded trace.
    pub fn take_trace(&self) -> Vec<Tagged> {
        self.sink.take()
    }

    /// The wrapped array.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped array.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for TracingDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>> {
        let out = self.inner.read(addrs)?;
        if !addrs.is_empty() {
            self.sink.emit(TraceEvent::Read {
                addrs: addrs.to_vec(),
            });
        }
        Ok(out)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<()> {
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        self.inner.write(writes)?;
        if !addrs.is_empty() {
            self.sink.emit(TraceEvent::Write {
                addrs: addrs.clone(),
            });
            // A blocking write that returned is durably complete.
            self.sink.emit(TraceEvent::WriteDurable { addrs });
        }
        Ok(())
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64> {
        let start = self.inner.alloc_contiguous(disk, count)?;
        self.sink.emit(TraceEvent::Alloc { disk, start, count });
        Ok(start)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<crate::backend::RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.sink = sink.clone();
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        Some(&self.sink)
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>> {
        let ticket = self.inner.submit_read(addrs)?;
        // The logical operation is recorded where it is issued — at
        // submit — so a pipelined engine's logical Read stream is
        // position-identical to the serial engine's.
        if !addrs.is_empty() {
            self.sink.emit(TraceEvent::Read {
                addrs: addrs.to_vec(),
            });
        }
        Ok(ticket)
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>> {
        self.inner.complete_read(ticket)
    }

    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<WriteTicket> {
        let addrs: Vec<BlockAddr> = writes.iter().map(|(a, _)| *a).collect();
        let ticket = self.inner.submit_write(writes)?;
        if !addrs.is_empty() {
            self.sink.emit(TraceEvent::Write { addrs });
        }
        Ok(ticket)
    }

    fn complete_write(&mut self, ticket: WriteTicket) -> Result<()> {
        let addrs = ticket.addrs().to_vec();
        self.inner.complete_write(ticket)?;
        if !addrs.is_empty() {
            self.sink.emit(TraceEvent::WriteDurable { addrs });
        }
        Ok(())
    }

    fn prefetch(&mut self, addrs: &[BlockAddr]) {
        // Deliberately untraced: a prefetch hint is not an operation of
        // the model (nothing is charged, the op sequence is unchanged),
        // so forwarding it silently keeps traced runs representative of
        // the untraced ones the benchmarks time.
        self.inner.prefetch(addrs);
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }

    fn scrub_block(&mut self, addr: BlockAddr) -> Result<crate::backend::ScrubOutcome> {
        self.inner.scrub_block(addr)
    }

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Forecast;
    use crate::mem::MemDiskArray;
    use crate::record::U64Record;

    fn blk(keys: &[u64]) -> Block<U64Record> {
        Block::new(
            keys.iter().map(|&k| U64Record(k)).collect(),
            Forecast::Next(u64::MAX),
        )
    }

    #[test]
    fn logical_and_physical_events_interleave_in_order() {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
        let o = a.alloc_contiguous(DiskId(0), 2).unwrap();
        a.write(vec![(BlockAddr::new(DiskId(0), o), blk(&[1]))]).unwrap();
        a.read(&[BlockAddr::new(DiskId(0), o)]).unwrap();
        let t = a.take_trace();
        let kinds: Vec<&'static str> = t
            .iter()
            .map(|e| match &e.event {
                TraceEvent::Alloc { .. } => "alloc",
                TraceEvent::PhysWrite { .. } => "pw",
                TraceEvent::Write { .. } => "w",
                TraceEvent::WriteDurable { .. } => "wd",
                TraceEvent::PhysRead { .. } => "pr",
                TraceEvent::Read { .. } => "r",
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, vec!["alloc", "pw", "w", "wd", "pr", "r"]);
        // Sequence numbers are dense and events carry the default pass 0.
        for (i, e) in t.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.pass, 0);
        }
    }

    #[test]
    fn pass_tags_stamp_subsequent_events() {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
        a.sink().begin_pass(3);
        a.alloc_contiguous(DiskId(1), 1).unwrap();
        let t = a.take_trace();
        assert!(matches!(t[0].event, TraceEvent::PassBegin { pass: 3 }));
        assert_eq!(t[1].pass, 3);
    }

    #[test]
    fn untraced_backend_is_sink_free() {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let a = MemDiskArray::<U64Record>::new(geom);
        assert!(DiskArray::<U64Record>::trace_sink(&a).is_none());
    }

    #[test]
    fn failed_ops_are_not_recorded_as_logical_events() {
        let geom = Geometry::new(2, 2, 100).unwrap();
        let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
        assert!(a.read(&[BlockAddr::new(DiskId(0), 7)]).is_err());
        assert!(a.take_trace().is_empty());
    }

    #[test]
    fn trace_run_meta_addressing_matches_striped_run() {
        use crate::striping::StripedRun;
        let run = StripedRun {
            start_disk: DiskId(1),
            len_blocks: 9,
            records: 90,
            base_offsets: vec![10, 20, 30],
        };
        let meta = TraceRunMeta {
            start_disk: run.start_disk,
            len_blocks: run.len_blocks,
            base_offsets: run.base_offsets.clone(),
        };
        for i in 0..9 {
            assert_eq!(meta.addr_of(i), run.addr_of(i));
        }
    }
}
