//! Cooperative interruption for long-running engines.
//!
//! [`InterruptFlag`] is a cheap, cloneable, thread-safe latch.  A driver
//! (signal handler bridge, job server drain, deadline watchdog) calls
//! [`InterruptFlag::trigger`]; the sort engine polls
//! [`InterruptFlag::is_set`] at its pass boundaries — *after* the
//! checkpoint manifest for that boundary has been journaled — and
//! returns an `Interrupted` error instead of starting the next pass.
//! The net effect is "stop at the next durable point": a rerun with the
//! same manifest path resumes exactly where the interrupted run left
//! off, byte-identically.
//!
//! The flag is a plain release/acquire [`AtomicBool`]: triggering from a
//! Unix signal handler is safe (atomic stores are async-signal-safe),
//! and polling costs one uncontended load per pass.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable stop-request latch shared between a controller and an
/// engine.  All clones observe the same state.
#[derive(Clone, Default)]
pub struct InterruptFlag(Arc<AtomicBool>);

impl InterruptFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request interruption.  Idempotent; safe from any thread and from
    /// signal handlers.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has interruption been requested?
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Re-arm the flag, e.g. between jobs that reuse one controller.
    pub fn clear(&self) {
        self.0.store(false, Ordering::Release);
    }
}

impl fmt::Debug for InterruptFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("InterruptFlag").field(&self.is_set()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = InterruptFlag::new();
        let b = a.clone();
        assert!(!a.is_set() && !b.is_set());
        b.trigger();
        assert!(a.is_set() && b.is_set());
        a.clear();
        assert!(!b.is_set());
    }

    #[test]
    fn trigger_is_visible_across_threads() {
        let flag = InterruptFlag::new();
        let remote = flag.clone();
        let t = std::thread::spawn(move || {
            remote.trigger();
        });
        t.join().map_err(|_| "join failed").unwrap();
        assert!(flag.is_set());
    }
}
