//! Recycling buffer pool: zero per-block heap allocations in steady state.
//!
//! External sorting moves the same fixed-size buffers around forever — a
//! block's record vector and its on-disk slot encoding are both allocated,
//! filled, drained, and dropped once per block in the naive engine.  A
//! [`BufferPool`] breaks that cycle: consumers return drained buffers
//! (`put_*`) and producers draw them back (`take_*`), so after the first
//! few operations warm the pool, the merge loop performs no block-sized
//! heap allocations at all.
//!
//! The pool is shared by cloning (an [`Arc`] internally): the engine, the
//! backend, and any wrapper layer can hold handles onto one pool.  It
//! pools two kinds of buffers independently:
//!
//! * **record buffers** (`Vec<R>`) — the payload side of a
//!   [`crate::Block`], drawn when decoding a slot and returned when a
//!   leading buffer is depleted or a block is encoded for writing;
//! * **byte buffers** (`Vec<u8>`) — on-disk slot images, drawn when
//!   encoding or issuing a read and returned once decoded or written.
//!
//! Returned buffers are cleared (`len == 0`) but keep their capacity;
//! `take_*` guarantees at least the requested capacity so callers never
//! reallocate.  The pool is bounded (default a few hundred buffers per
//! kind) so a burst can never pin unbounded memory; overflow buffers are
//! simply dropped.  [`PoolStats`] counts fresh vs. reused draws, which is
//! how the tests prove the steady state really is allocation-free.

use std::sync::{Arc, Mutex, MutexGuard};

/// Allocation-vs-reuse counters for one [`BufferPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Record buffers allocated because the pool was empty.
    pub fresh_records: u64,
    /// Record buffers served from the pool.
    pub reused_records: u64,
    /// Record buffers returned to the pool (drops on overflow excluded).
    pub returned_records: u64,
    /// Byte buffers allocated because the pool was empty.
    pub fresh_bytes: u64,
    /// Byte buffers served from the pool.
    pub reused_bytes: u64,
    /// Byte buffers returned to the pool (drops on overflow excluded).
    pub returned_bytes: u64,
}

impl PoolStats {
    /// Fraction of record-buffer draws served from the pool, in
    /// `[0, 1]`; `None` before any draw happened.
    pub fn record_hit_rate(&self) -> Option<f64> {
        let total = self.fresh_records + self.reused_records;
        (total > 0).then(|| self.reused_records as f64 / total as f64)
    }

    /// Fraction of byte-buffer draws served from the pool, in `[0, 1]`;
    /// `None` before any draw happened.
    pub fn byte_hit_rate(&self) -> Option<f64> {
        let total = self.fresh_bytes + self.reused_bytes;
        (total > 0).then(|| self.reused_bytes as f64 / total as f64)
    }

    /// Hit rate over both buffer kinds combined; `None` before any draw.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.fresh_records + self.reused_records + self.fresh_bytes + self.reused_bytes;
        (total > 0).then(|| (self.reused_records + self.reused_bytes) as f64 / total as f64)
    }

    /// Pool misses: draws that had to allocate because the pool was
    /// empty (both kinds).
    pub fn misses(&self) -> u64 {
        self.fresh_records + self.fresh_bytes
    }
}

#[derive(Debug)]
struct PoolInner<R> {
    records: Vec<Vec<R>>,
    bytes: Vec<Vec<u8>>,
    cap_per_kind: usize,
    stats: PoolStats,
}

/// Shared recycling pool of record and byte buffers.  Cloning shares the
/// pool.
#[derive(Debug)]
pub struct BufferPool<R> {
    inner: Arc<Mutex<PoolInner<R>>>,
}

impl<R> Clone for BufferPool<R> {
    fn clone(&self) -> Self {
        BufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<R> Default for BufferPool<R> {
    fn default() -> Self {
        Self::new()
    }
}

/// Default bound on pooled buffers of each kind.  Generous versus any
/// merge's working set (`2R + 4D` blocks) yet small enough that a pool
/// can never hold more than a few megabytes of idle capacity.
const DEFAULT_CAP_PER_KIND: usize = 1024;

impl<R> BufferPool<R> {
    /// A fresh pool with the default per-kind bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP_PER_KIND)
    }

    /// A fresh pool holding at most `cap_per_kind` idle buffers of each
    /// kind; further returns are dropped.
    pub fn with_capacity(cap_per_kind: usize) -> Self {
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                records: Vec::new(),
                bytes: Vec::new(),
                cap_per_kind,
                stats: PoolStats::default(),
            })),
        }
    }

    fn lock(&self) -> crate::lockwitness::Witnessed<MutexGuard<'_, PoolInner<R>>> {
        // A panic while holding the lock poisons it; pooled buffers are
        // plain vectors, always consistent, so recover the guard.
        crate::lockwitness::guard(
            "pdisk::pool::BufferPool.inner",
            self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// An empty record buffer with capacity at least `cap`.
    pub fn take_records(&self, cap: usize) -> Vec<R> {
        let mut g = self.lock();
        match g.records.pop() {
            Some(mut v) => {
                g.stats.reused_records += 1;
                drop(g);
                if v.capacity() < cap {
                    // The buffer is empty, so this guarantees capacity
                    // of at least `cap`.
                    v.reserve(cap);
                }
                v
            }
            None => {
                g.stats.fresh_records += 1;
                drop(g);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a drained record buffer to the pool.
    pub fn put_records(&self, mut v: Vec<R>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        let mut g = self.lock();
        if g.records.len() < g.cap_per_kind {
            g.records.push(v);
            g.stats.returned_records += 1;
        }
    }

    /// An empty byte buffer with capacity at least `cap`.
    pub fn take_bytes(&self, cap: usize) -> Vec<u8> {
        let mut g = self.lock();
        match g.bytes.pop() {
            Some(mut v) => {
                g.stats.reused_bytes += 1;
                drop(g);
                if v.capacity() < cap {
                    // The buffer is empty, so this guarantees capacity
                    // of at least `cap`.
                    v.reserve(cap);
                }
                v
            }
            None => {
                g.stats.fresh_bytes += 1;
                drop(g);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a drained byte buffer to the pool.
    pub fn put_bytes(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        let mut g = self.lock();
        if g.bytes.len() < g.cap_per_kind {
            g.bytes.push(v);
            g.stats.returned_bytes += 1;
        }
    }

    /// Snapshot of the allocation/reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Idle buffers currently held, `(record_buffers, byte_buffers)`.
    pub fn idle(&self) -> (usize, usize) {
        let g = self.lock();
        (g.records.len(), g.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_reuses_capacity() {
        let pool: BufferPool<u64> = BufferPool::new();
        let mut v = pool.take_records(16);
        assert!(v.capacity() >= 16);
        v.extend(0..16u64);
        pool.put_records(v);
        let v2 = pool.take_records(8);
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 16, "recycled buffer keeps its capacity");
        let s = pool.stats();
        assert_eq!(s.fresh_records, 1);
        assert_eq!(s.reused_records, 1);
        assert_eq!(s.returned_records, 1);
    }

    #[test]
    fn bytes_and_records_pool_independently() {
        let pool: BufferPool<u64> = BufferPool::new();
        pool.put_bytes(Vec::with_capacity(64));
        assert_eq!(pool.idle(), (0, 1));
        let b = pool.take_bytes(32);
        assert!(b.capacity() >= 64);
        assert_eq!(pool.stats().reused_bytes, 1);
        assert_eq!(pool.stats().fresh_records, 0);
    }

    #[test]
    fn undersized_recycled_buffer_is_grown() {
        let pool: BufferPool<u8> = BufferPool::new();
        pool.put_bytes(Vec::with_capacity(4));
        let b = pool.take_bytes(128);
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn bound_drops_overflow() {
        let pool: BufferPool<u64> = BufferPool::with_capacity(2);
        for _ in 0..5 {
            pool.put_bytes(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle().1, 2);
        assert_eq!(pool.stats().returned_bytes, 2);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool: BufferPool<u64> = BufferPool::new();
        pool.put_records(Vec::new());
        pool.put_bytes(Vec::new());
        assert_eq!(pool.idle(), (0, 0));
    }

    #[test]
    fn clones_share_one_pool() {
        let pool: BufferPool<u64> = BufferPool::new();
        let clone = pool.clone();
        clone.put_records(Vec::with_capacity(8));
        assert_eq!(pool.idle().0, 1);
        let _ = pool.take_records(4);
        assert_eq!(clone.stats().reused_records, 1);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let pool: BufferPool<u64> = BufferPool::new();
        // Warm-up: one buffer of each kind.
        pool.put_records(pool.take_records(32));
        pool.put_bytes(pool.take_bytes(256));
        let warm = pool.stats();
        for _ in 0..100 {
            let r = pool.take_records(32);
            let b = pool.take_bytes(256);
            pool.put_records(r);
            pool.put_bytes(b);
        }
        let s = pool.stats();
        assert_eq!(s.fresh_records, warm.fresh_records, "no new record allocs");
        assert_eq!(s.fresh_bytes, warm.fresh_bytes, "no new byte allocs");
        assert_eq!(s.reused_records, warm.reused_records + 100);
        assert_eq!(s.reused_bytes, warm.reused_bytes + 100);
    }
}
