//! Error type shared by all disk backends.

use crate::addr::{BlockAddr, DiskId};

/// Errors produced by the parallel disk model.
#[derive(Debug)]
pub enum PdiskError {
    /// A parallel I/O operation addressed the same disk more than once.
    ///
    /// The model allows at most one block per disk per operation; violating
    /// this is always an algorithmic bug in the caller, never an I/O fault.
    DuplicateDisk(DiskId),
    /// A request addressed a disk that does not exist in this array.
    NoSuchDisk(DiskId),
    /// A read addressed a block that was never written (or was freed).
    UnmappedBlock(BlockAddr),
    /// A block held a different number of records than the geometry's `B`
    /// where a full block was required.
    BadBlockSize { expected: usize, got: usize },
    /// Geometry parameters are unusable (e.g. `D = 0`, or `M` too small for
    /// any merge order).
    BadGeometry(String),
    /// Underlying OS-level I/O failure (file backend only).
    Io(std::io::Error),
    /// On-disk data failed to decode (file backend only).
    Corrupt(String),
}

impl std::fmt::Display for PdiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdiskError::DuplicateDisk(d) => {
                write!(f, "parallel I/O touches disk {} more than once", d.0)
            }
            PdiskError::NoSuchDisk(d) => write!(f, "disk {} out of range", d.0),
            PdiskError::UnmappedBlock(a) => {
                write!(f, "read of unmapped block {a:?}")
            }
            PdiskError::BadBlockSize { expected, got } => {
                write!(f, "block holds {got} records, geometry requires {expected}")
            }
            PdiskError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
            PdiskError::Io(e) => write!(f, "I/O error: {e}"),
            PdiskError::Corrupt(msg) => write!(f, "corrupt on-disk data: {msg}"),
        }
    }
}

impl std::error::Error for PdiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdiskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PdiskError {
    fn from(e: std::io::Error) -> Self {
        PdiskError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PdiskError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PdiskError::DuplicateDisk(DiskId(3));
        assert!(e.to_string().contains("disk 3"));
        let e = PdiskError::BadBlockSize { expected: 8, got: 5 };
        assert!(e.to_string().contains('8') && e.to_string().contains('5'));
    }

    #[test]
    fn io_error_roundtrips_source() {
        use std::error::Error;
        let e: PdiskError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
