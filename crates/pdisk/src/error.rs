//! Error type shared by all disk backends.

use crate::addr::{BlockAddr, DiskId};

/// How long a device fault persists.
///
/// The taxonomy follows the usual storage-reliability split: *transient*
/// faults (bus resets, recoverable read errors, controller timeouts)
/// succeed when the operation is re-issued, while *permanent* faults
/// (head crash, dead controller) fail every subsequent operation on the
/// affected disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The fault affects only this attempt; a retry may succeed.
    Transient,
    /// The disk is gone; every future operation on it will fail.
    Permanent,
    /// The disk is out of space (ENOSPC): writes and allocations fail
    /// until space is freed, but the condition is *sticky*, not
    /// per-attempt — re-issuing the same write cannot succeed, so the
    /// fault is never retryable.  Reads still work.
    NoSpace,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Transient => f.write_str("transient"),
            FaultKind::Permanent => f.write_str("permanent"),
            FaultKind::NoSpace => f.write_str("no-space"),
        }
    }
}

/// Which backend operation a fault interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    Read,
    Write,
    Alloc,
    /// A durability barrier (`fsync`).  Sync faults are special: per
    /// fsyncgate semantics a failed fsync may have *dropped* the dirty
    /// pages it was asked to persist, so retrying the barrier can
    /// report success without the data ever reaching stable storage.
    /// Sync faults are therefore never retryable regardless of kind.
    Sync,
}

impl std::fmt::Display for FaultOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultOp::Read => f.write_str("read"),
            FaultOp::Write => f.write_str("write"),
            FaultOp::Alloc => f.write_str("alloc"),
            FaultOp::Sync => f.write_str("sync"),
        }
    }
}

/// Errors produced by the parallel disk model.
#[derive(Debug)]
#[non_exhaustive]
pub enum PdiskError {
    /// A parallel I/O operation addressed the same disk more than once.
    ///
    /// The model allows at most one block per disk per operation; violating
    /// this is always an algorithmic bug in the caller, never an I/O fault.
    DuplicateDisk(DiskId),
    /// A request addressed a disk that does not exist in this array.
    NoSuchDisk(DiskId),
    /// A read addressed a block that was never written (or was freed).
    UnmappedBlock(BlockAddr),
    /// A block held a different number of records than the geometry's `B`
    /// where a full block was required.
    BadBlockSize { expected: usize, got: usize },
    /// Geometry parameters are unusable (e.g. `D = 0`, or `M` too small for
    /// any merge order).
    BadGeometry(String),
    /// Underlying OS-level I/O failure (file backend only).
    Io(std::io::Error),
    /// On-disk data failed to decode or failed its checksum.
    Corrupt(String),
    /// A device fault, real or injected by [`crate::FaultModel`].
    Fault {
        /// Transient (retryable) or permanent (disk is dead).
        kind: FaultKind,
        /// The operation that was interrupted.
        op: FaultOp,
        /// The disk the fault occurred on, when attributable.
        disk: Option<DiskId>,
    },
    /// Data loss the redundancy layer cannot repair: more simultaneous
    /// failures than the parity scheme tolerates (e.g. a second disk died,
    /// or parity for the stripe was lost with its disk).  Never retryable —
    /// the missing data cannot be reconstructed from what survives.
    Unrecoverable(String),
    /// A retry policy gave up: every attempt failed with a retryable
    /// error; `last` is the final attempt's failure (the error source).
    RetriesExhausted {
        /// Total attempts made, including the first.
        attempts: u32,
        /// Error returned by the final attempt.
        last: Box<PdiskError>,
    },
    /// A split-phase completion was handed a ticket this backend cannot
    /// finish: the ticket is pending on a different backend's in-flight
    /// I/O (tickets must be completed by the array that issued them).
    TicketMismatch,
    /// A simulated process crash injected by [`crate::CrashingDiskArray`]
    /// fired at numbered I/O boundary `point`.  The array is poisoned:
    /// every subsequent operation fails with the same error, mimicking a
    /// dead process until the harness "reboots" (unwraps and re-wraps the
    /// array).  Never retryable — a crashed process cannot retry.
    Crashed {
        /// The crash point (boundary number) that fired.
        point: u64,
        /// Human-readable label for the boundary kind (e.g. `write-torn`).
        label: &'static str,
    },
    /// A [`crate::FileDiskArray`] directory is already open — by this
    /// process or (per its lock file) by a live process `holder`.  Two
    /// handles on the same directory would silently interleave writes
    /// and corrupt both sorts, so the second open is refused.
    ArrayLocked {
        /// The contested array directory.
        dir: std::path::PathBuf,
        /// PID recorded in the lock file (this process's own PID when
        /// the double-open is within one process).
        holder: u32,
    },
}

impl PdiskError {
    /// Whether re-issuing the failed operation could plausibly succeed.
    ///
    /// Transient faults, OS-level I/O errors, and checksum mismatches
    /// (torn reads) are retryable; permanent faults, out-of-space
    /// faults, and every logic error (bad addressing, bad geometry)
    /// are not.  Sync (fsync) faults are never retryable even when
    /// transient: a failed fsync may have dropped the dirty pages, so
    /// a "successful" retry would report durability that was never
    /// achieved (fsyncgate).  Retrying ENOSPC is just as hazardous —
    /// under the parity layer a retried-then-dropped write leaves the
    /// stripe's parity inconsistent with its data.
    pub fn is_retryable(&self) -> bool {
        match self {
            PdiskError::Fault { kind, op, .. } => {
                *kind == FaultKind::Transient && *op != FaultOp::Sync
            }
            PdiskError::Io(_) | PdiskError::Corrupt(_) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for PdiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdiskError::DuplicateDisk(d) => {
                write!(f, "parallel I/O touches disk {} more than once", d.0)
            }
            PdiskError::NoSuchDisk(d) => write!(f, "disk {} out of range", d.0),
            PdiskError::UnmappedBlock(a) => {
                write!(f, "read of unmapped block {a:?}")
            }
            PdiskError::BadBlockSize { expected, got } => {
                write!(f, "block holds {got} records, geometry requires {expected}")
            }
            PdiskError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
            PdiskError::Io(e) => write!(f, "I/O error: {e}"),
            PdiskError::Corrupt(msg) => write!(f, "corrupt on-disk data: {msg}"),
            PdiskError::Unrecoverable(msg) => write!(f, "unrecoverable data loss: {msg}"),
            PdiskError::Fault { kind, op, disk } => match disk {
                Some(d) => write!(f, "{kind} fault on disk {} during {op}", d.0),
                None => write!(f, "{kind} fault during {op}"),
            },
            PdiskError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            PdiskError::TicketMismatch => {
                f.write_str("split-phase ticket completed on a backend that did not issue it")
            }
            PdiskError::Crashed { point, label } => {
                write!(f, "simulated process crash at I/O boundary {point} ({label})")
            }
            PdiskError::ArrayLocked { dir, holder } => {
                write!(
                    f,
                    "disk array directory {} is already open (held by pid {holder}); \
                     a second handle would interleave writes",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for PdiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdiskError::Io(e) => Some(e),
            PdiskError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PdiskError {
    fn from(e: std::io::Error) -> Self {
        PdiskError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PdiskError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PdiskError::DuplicateDisk(DiskId(3));
        assert!(e.to_string().contains("disk 3"));
        let e = PdiskError::BadBlockSize { expected: 8, got: 5 };
        assert!(e.to_string().contains('8') && e.to_string().contains('5'));
    }

    #[test]
    fn io_error_roundtrips_source() {
        use std::error::Error;
        let e: PdiskError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn fault_display_names_disk_kind_and_op() {
        let e = PdiskError::Fault {
            kind: FaultKind::Transient,
            op: FaultOp::Read,
            disk: Some(DiskId(2)),
        };
        let text = e.to_string();
        assert!(text.contains("transient") && text.contains("disk 2") && text.contains("read"));
    }

    #[test]
    fn retries_exhausted_chains_source() {
        use std::error::Error;
        let last = PdiskError::Fault {
            kind: FaultKind::Transient,
            op: FaultOp::Write,
            disk: None,
        };
        let e = PdiskError::RetriesExhausted {
            attempts: 4,
            last: Box::new(last),
        };
        assert!(e.to_string().contains("4 attempts"));
        let src = e.source().expect("source must be the last attempt");
        assert!(src.to_string().contains("transient fault during write"));
    }

    #[test]
    fn retryability_matches_taxonomy() {
        let transient = PdiskError::Fault {
            kind: FaultKind::Transient,
            op: FaultOp::Read,
            disk: None,
        };
        let permanent = PdiskError::Fault {
            kind: FaultKind::Permanent,
            op: FaultOp::Read,
            disk: None,
        };
        let no_space = PdiskError::Fault {
            kind: FaultKind::NoSpace,
            op: FaultOp::Write,
            disk: None,
        };
        // fsyncgate: a failed durability barrier is unretryable even
        // when the underlying fault is transient.
        let sync = PdiskError::Fault {
            kind: FaultKind::Transient,
            op: FaultOp::Sync,
            disk: None,
        };
        assert!(transient.is_retryable());
        assert!(!permanent.is_retryable());
        assert!(!no_space.is_retryable());
        assert!(!sync.is_retryable());
        assert!(PdiskError::Io(std::io::Error::other("x")).is_retryable());
        assert!(PdiskError::Corrupt("torn".into()).is_retryable());
        assert!(!PdiskError::NoSuchDisk(DiskId(0)).is_retryable());
        assert!(!PdiskError::Unrecoverable("two disks down".into()).is_retryable());
        assert!(!PdiskError::Crashed { point: 7, label: "write-torn" }.is_retryable());
    }

    #[test]
    fn no_space_and_sync_faults_render_their_taxonomy() {
        let e = PdiskError::Fault {
            kind: FaultKind::NoSpace,
            op: FaultOp::Write,
            disk: Some(DiskId(1)),
        };
        let text = e.to_string();
        assert!(text.contains("no-space") && text.contains("disk 1") && text.contains("write"));
        let e = PdiskError::Fault {
            kind: FaultKind::Transient,
            op: FaultOp::Sync,
            disk: None,
        };
        assert!(e.to_string().contains("sync"));
    }

    #[test]
    fn crashed_display_names_point_and_label() {
        let e = PdiskError::Crashed { point: 42, label: "read-submit" };
        let text = e.to_string();
        assert!(text.contains("42") && text.contains("read-submit") && text.contains("crash"));
    }

    #[test]
    fn unrecoverable_display_carries_context() {
        let e = PdiskError::Unrecoverable("stripe 7 lost disks 0 and 2".into());
        assert!(e.to_string().contains("unrecoverable"));
        assert!(e.to_string().contains("stripe 7"));
    }
}
