//! Machine geometry `(D, B, M)` and the merge orders derived from it.
//!
//! All formulas are taken verbatim from the paper:
//!
//! * SRM merge order (§2.2): the largest `R` with `M/B ≥ 2R + 4D + RD/B`,
//!   i.e. `R = (M/B − 4D) / (2 + D/B)`;
//! * DSM merge order (§9.1): `(M/B − 2D) / 2D`, which equals
//!   `k + 1 + kD/2B` when `M = (2k+4)DB + kD²`;
//! * the paper's table memory size (§9.1): `M = (2k+4)·D·B + k·D²` records
//!   for merge order `R = kD`.

use crate::error::{PdiskError, Result};
use serde::{Deserialize, Serialize};

/// Description of a parallel disk machine: `D` disks, blocks of `B` records,
/// and `M` records of internal memory.
///
/// # Examples
///
/// ```
/// use pdisk::Geometry;
///
/// // 4 disks, 64-record blocks, 8192 records of memory.
/// let g = Geometry::new(4, 64, 8192)?;
/// assert_eq!(g.memory_blocks(), 128);
/// assert_eq!(g.stripe_records(), 256);
///
/// // SRM merges far more runs per pass than DSM on the same machine.
/// assert!(g.srm_merge_order()? > 3 * g.dsm_merge_order()?);
/// # Ok::<(), pdisk::PdiskError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of independent disks `D` (also the channel width in blocks).
    pub d: usize,
    /// Block size `B`, in records.
    pub b: usize,
    /// Internal memory capacity `M`, in records.
    pub m: usize,
}

impl Geometry {
    /// Build and validate a geometry.
    ///
    /// Requirements checked here mirror the model's assumptions: at least
    /// one disk, non-empty blocks, and `M ≥ 2DB` (Vitter–Shriver's minimum
    /// for any two-level algorithm to function).
    pub fn new(d: usize, b: usize, m: usize) -> Result<Self> {
        if d == 0 {
            return Err(PdiskError::BadGeometry("D must be >= 1".into()));
        }
        if d > u32::MAX as usize {
            // DiskId is a u32; this bound makes every in-range disk index
            // representable, which DiskId::from_index/from_mod rely on.
            return Err(PdiskError::BadGeometry(format!(
                "D = {d} exceeds the addressable maximum {}",
                u32::MAX
            )));
        }
        if b == 0 {
            return Err(PdiskError::BadGeometry("B must be >= 1".into()));
        }
        if m < 2 * d * b {
            return Err(PdiskError::BadGeometry(format!(
                "M = {m} records is below the model minimum 2DB = {}",
                2 * d * b
            )));
        }
        Ok(Geometry { d, b, m })
    }

    /// The paper's standard table configuration: merge order `R = kD` with
    /// memory `M = (2k+4)·D·B + k·D²` (§9.1).
    pub fn for_table(k: usize, d: usize, b: usize) -> Result<Self> {
        let m = (2 * k + 4) * d * b + k * d * d;
        Geometry::new(d, b, m)
    }

    /// Number of block-sized frames that fit in internal memory, `M/B`.
    #[inline]
    pub fn memory_blocks(&self) -> usize {
        self.m / self.b
    }

    /// Records moved by one full-width parallel I/O operation, `D·B`.
    #[inline]
    pub fn stripe_records(&self) -> usize {
        self.d * self.b
    }

    /// SRM's merge order: the largest `R` satisfying
    /// `M/B ≥ 2R + 4D + R·D/B` (§2.2).
    ///
    /// Solving for `R` gives `R = (M/B − 4D)·B / (2B + D)`, floored.
    pub fn srm_merge_order(&self) -> Result<usize> {
        let mb = self.memory_blocks();
        if mb <= 4 * self.d {
            return Err(PdiskError::BadGeometry(format!(
                "M/B = {mb} leaves no room for SRM: need more than 4D = {} blocks",
                4 * self.d
            )));
        }
        let r = (mb - 4 * self.d) * self.b / (2 * self.b + self.d);
        if r < 2 {
            return Err(PdiskError::BadGeometry(format!(
                "memory supports SRM merge order {r}; at least 2 is required"
            )));
        }
        Ok(r)
    }

    /// DSM's merge order with the paper's buffering convention (§9.1):
    /// `2D` blocks of write buffer and `2D` blocks of read buffer per run,
    /// so `R_DSM = (M/B − 2D) / 2D`.
    pub fn dsm_merge_order(&self) -> Result<usize> {
        let mb = self.memory_blocks();
        if mb <= 2 * self.d {
            return Err(PdiskError::BadGeometry(format!(
                "M/B = {mb} leaves no room for DSM: need more than 2D = {} blocks",
                2 * self.d
            )));
        }
        let r = (mb - 2 * self.d) / (2 * self.d);
        if r < 2 {
            return Err(PdiskError::BadGeometry(format!(
                "memory supports DSM merge order {r}; at least 2 is required"
            )));
        }
        Ok(r)
    }

    /// `ceil(n / B)`: blocks needed to hold `n` records.
    #[inline]
    pub fn blocks_for_records(&self, n: usize) -> usize {
        n.div_ceil(self.b)
    }

    /// Validate that a set of addresses touches each disk at most once and
    /// that every disk index is in range — the defining constraint of one
    /// parallel I/O operation in the model.
    pub fn check_parallel_op(&self, disks: impl Iterator<Item = crate::DiskId>) -> Result<()> {
        let mut seen = vec![false; self.d];
        for disk in disks {
            let idx = disk.index();
            if idx >= self.d {
                return Err(PdiskError::NoSuchDisk(disk));
            }
            if seen[idx] {
                return Err(PdiskError::DuplicateDisk(disk));
            }
            seen[idx] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskId;

    #[test]
    fn rejects_degenerate_geometries() {
        assert!(Geometry::new(0, 8, 64).is_err());
        assert!(Geometry::new(2, 0, 64).is_err());
        // M below 2DB.
        assert!(Geometry::new(2, 8, 31).is_err());
        assert!(Geometry::new(2, 8, 32).is_ok());
    }

    #[test]
    fn table_geometry_matches_paper_formula() {
        // k = 5, D = 10, B = 1000: M = (2*5+4)*10*1000 + 5*100 = 140_500.
        let g = Geometry::for_table(5, 10, 1000).unwrap();
        assert_eq!(g.m, 140_500);
    }

    /// `R = kD` must be recoverable from the paper's memory formula:
    /// `M/B = 2R + 4D + RD/B` exactly when `M = (2k+4)DB + kD²` and `B | kD²`.
    #[test]
    fn srm_merge_order_inverts_table_memory() {
        for &(k, d, b) in &[(5usize, 5usize, 1000usize), (10, 10, 1000), (50, 50, 1000), (100, 10, 1000)] {
            let g = Geometry::for_table(k, d, b).unwrap();
            let r = g.srm_merge_order().unwrap();
            // Flooring in memory_blocks() can shave at most one run off kD.
            assert!(
                r == k * d || r == k * d - 1,
                "k={k} d={d}: expected R≈{} got {r}",
                k * d
            );
        }
    }

    #[test]
    fn srm_merge_order_exact_when_divisible() {
        // Choose B so that kD²/B has no remainder: k=4, D=10, B=100 -> kD²=400.
        let g = Geometry::for_table(4, 10, 100).unwrap();
        assert_eq!(g.srm_merge_order().unwrap(), 40);
    }

    #[test]
    fn dsm_merge_order_matches_k_plus_one_form() {
        // Paper: DSM merges k + 1 + kD/2B runs with table memory.
        let g = Geometry::for_table(10, 10, 1000).unwrap();
        let r = g.dsm_merge_order().unwrap();
        let expected = 10 + 1; // = 11 (kD/2B rounds to 0)
        assert_eq!(r, expected);
    }

    #[test]
    fn merge_orders_error_when_memory_tiny() {
        let g = Geometry::new(8, 4, 64).unwrap(); // M/B = 16 = 2D, too small
        assert!(g.srm_merge_order().is_err());
        assert!(g.dsm_merge_order().is_err());
    }

    #[test]
    fn parallel_op_check_rejects_duplicates_and_range() {
        let g = Geometry::new(3, 4, 1000).unwrap();
        assert!(g
            .check_parallel_op([DiskId(0), DiskId(2)].into_iter())
            .is_ok());
        assert!(matches!(
            g.check_parallel_op([DiskId(1), DiskId(1)].into_iter()),
            Err(PdiskError::DuplicateDisk(DiskId(1)))
        ));
        assert!(matches!(
            g.check_parallel_op([DiskId(3)].into_iter()),
            Err(PdiskError::NoSuchDisk(DiskId(3)))
        ));
    }

    #[test]
    fn blocks_for_records_rounds_up() {
        let g = Geometry::new(2, 10, 1000).unwrap();
        assert_eq!(g.blocks_for_records(0), 0);
        assert_eq!(g.blocks_for_records(1), 1);
        assert_eq!(g.blocks_for_records(10), 1);
        assert_eq!(g.blocks_for_records(11), 2);
    }
}
