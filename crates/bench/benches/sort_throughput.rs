//! **Experiment X5** — wall-clock throughput: SRM vs DSM full sorts on
//! the in-memory backend (pure algorithmic cost, I/O counted but free)
//! and SRM on the real-file backend (actual positioned I/O through the
//! per-disk worker threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm::{write_unsorted_stripes, DsmSorter};
use pdisk::{FileDiskArray, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::SrmSorter;

fn keys(n: usize, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn bench_mem_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_mem_backend");
    for &n in &[100_000usize, 400_000] {
        let geom = Geometry::for_table(2, 4, 64).unwrap(); // M = 4160 records
        let input_keys = keys(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("srm", n), &n, |bench, _| {
            bench.iter(|| {
                let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                let input = write_unsorted_input(&mut a, &input_keys).unwrap();
                let (run, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
                run.records
            })
        });
        group.bench_with_input(BenchmarkId::new("dsm", n), &n, |bench, _| {
            bench.iter(|| {
                let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                let input = write_unsorted_stripes(&mut a, &input_keys).unwrap();
                let (run, _) = DsmSorter::default().sort(&mut a, &input).unwrap();
                run.records
            })
        });
    }
    group.finish();
}

fn bench_file_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_file_backend");
    group.sample_size(10);
    let n = 100_000usize;
    let geom = Geometry::for_table(2, 4, 64).unwrap();
    let input_keys = keys(n, 43);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("srm_files", n), |bench| {
        bench.iter(|| {
            let dir = std::env::temp_dir().join(format!("srm-bench-{}", std::process::id()));
            let mut a: FileDiskArray<U64Record> = FileDiskArray::create(geom, &dir).unwrap();
            let input = write_unsorted_input(&mut a, &input_keys).unwrap();
            let (run, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
            let records = run.records;
            drop(a);
            let _ = std::fs::remove_dir_all(&dir);
            records
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mem_backend, bench_file_backend);
criterion_main!(benches);
