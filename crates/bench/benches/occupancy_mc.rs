//! Micro-benchmarks of the occupancy machinery behind Tables 1–2:
//! ball-throwing trials, dependent chain throws, and the gamma-walk
//! order-statistics sampler against its naive `O(L log L)` reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use occupancy::{max_occupancy_once, BlockBounds, BlockMinima, DependentProblem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_occupancy");
    for &(k, d) in &[(5usize, 50usize), (50, 50), (100, 1000)] {
        let balls = (k * d) as u64;
        group.throughput(Throughput::Elements(balls));
        group.bench_with_input(
            BenchmarkId::new("throw", format!("k{k}_D{d}")),
            &(balls, d),
            |bench, &(balls, d)| {
                let mut rng = SmallRng::seed_from_u64(1);
                bench.iter(|| max_occupancy_once(balls, d, &mut rng))
            },
        );
    }
    group.finish();
}

fn bench_dependent(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependent_occupancy");
    for &(chains, len, d) in &[(250usize, 4u64, 50usize), (2500, 10, 50)] {
        let problem = DependentProblem::uniform_chains(chains, len, d);
        group.throughput(Throughput::Elements(problem.total_balls()));
        group.bench_with_input(
            BenchmarkId::new("throw", format!("c{chains}_l{len}_D{d}")),
            &problem,
            |bench, problem| {
                let mut rng = SmallRng::seed_from_u64(2);
                bench.iter(|| problem.max_occupancy_once(&mut rng))
            },
        );
    }
    group.finish();
}

fn bench_order_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_statistics_sampler");
    // The whole point of the gamma walk: cost independent of B.
    for &b in &[10u64, 1000u64] {
        let records = 1000 * b; // 1000 blocks
        group.bench_with_input(BenchmarkId::new("gamma_walk", b), &b, |bench, &b| {
            let mut rng = SmallRng::seed_from_u64(3);
            bench.iter(|| BlockMinima::sample(records, b, &mut rng).minima.len())
        });
        group.bench_with_input(BenchmarkId::new("gamma_walk_bounds", b), &b, |bench, &b| {
            let mut rng = SmallRng::seed_from_u64(3);
            bench.iter(|| BlockBounds::sample(records, b, &mut rng).blocks())
        });
    }
    // Naive comparison at the small size only (the large one is the
    // infeasibility the walk exists to avoid).
    group.bench_function("naive_B10", |bench| {
        let mut rng = SmallRng::seed_from_u64(3);
        bench.iter(|| BlockMinima::sample_naive(10_000, 10, &mut rng).minima.len())
    });
    group.finish();
}

criterion_group!(benches, bench_classical, bench_dependent, bench_order_stats);
criterion_main!(benches);
