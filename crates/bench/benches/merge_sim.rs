//! Micro-benchmarks of the SRM scheduling machinery: the block-level
//! merge simulator (Table 3's engine) and the record-level merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::simulator::{MergeSim, SimInput, SimPlacement};
use srm_core::{merge_runs, RunWriter};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_simulator");
    group.sample_size(10);
    for &(k, d, blocks) in &[(5usize, 5usize, 200u64), (5, 50, 200), (10, 10, 1000)] {
        let mut rng = SmallRng::seed_from_u64(7);
        let input = SimInput::average_case(k * d, blocks, 1000, d, SimPlacement::Random, &mut rng);
        group.throughput(Throughput::Elements(input.total_blocks()));
        group.bench_with_input(
            BenchmarkId::new("sim", format!("k{k}_D{d}_L{blocks}")),
            &input,
            |bench, input| bench.iter(|| MergeSim::run(input).unwrap().schedule.total_reads()),
        );
    }
    group.finish();
}

fn bench_record_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_merge");
    group.sample_size(10);
    let d = 4usize;
    let b = 16usize;
    let n_runs = 16usize;
    let run_len = 4000usize;
    let geom = Geometry::new(d, b, 100_000_000).unwrap();
    let mut rng = SmallRng::seed_from_u64(8);
    let runs: Vec<Vec<u64>> = (0..n_runs)
        .map(|_| {
            let mut v: Vec<u64> = (0..run_len).map(|_| rng.random()).collect();
            v.sort_unstable();
            v
        })
        .collect();
    group.throughput(Throughput::Elements((n_runs * run_len) as u64));
    group.bench_function("merge_16x4000", |bench| {
        bench.iter(|| {
            let mut array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            let handles: Vec<_> = runs
                .iter()
                .enumerate()
                .map(|(i, keys)| {
                    let mut w = RunWriter::new(geom, DiskId((i % d) as u32));
                    for &k in keys {
                        w.push(&mut array, U64Record(k)).unwrap();
                    }
                    w.finish(&mut array).unwrap()
                })
                .collect();
            merge_runs(&mut array, &handles, DiskId(0)).unwrap().stats.records_out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_record_merge);
criterion_main!(benches);
