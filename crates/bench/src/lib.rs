//! Shared plumbing for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and accepts:
//!
//! * `--smoke` — reduced parameters for CI (seconds, not minutes);
//! * `--trials N` — Monte-Carlo trials per cell;
//! * `--seed N` — RNG seed (defaults are fixed, so runs are reproducible);
//! * `--blocks N` — blocks per run for the merge-simulation tables.

#![forbid(unsafe_code)]

/// Parsed common flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Args {
    /// Reduced-scale mode.
    pub smoke: bool,
    /// Trials per cell (None = binary default).
    pub trials: Option<u64>,
    /// RNG seed (None = binary default).
    pub seed: Option<u64>,
    /// Blocks per run for simulation tables (None = binary default).
    pub blocks: Option<u64>,
}

impl Args {
    /// Parse from `std::env::args`, panicking with usage on bad input.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not an iterator collector; a flag parser
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args {
            smoke: false,
            trials: None,
            seed: None,
            blocks: None,
        };
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut grab = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse()
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            };
            match flag.as_str() {
                "--smoke" => args.smoke = true,
                "--trials" => args.trials = Some(grab("--trials")),
                "--seed" => args.seed = Some(grab("--seed")),
                "--blocks" => args.blocks = Some(grab("--blocks")),
                other => panic!("unknown flag {other}; known: --smoke --trials --seed --blocks"),
            }
        }
        args
    }
}

/// Print a generated grid next to the paper's reference values.
pub fn print_comparison(
    title: &str,
    generated: &analysis::Grid,
    reference: &[&[f64]],
    digits: usize,
) {
    println!("## {title}\n");
    println!("Generated (this run):\n");
    println!("{}", generated.to_markdown("k \\ D", digits));
    println!("Paper reference:\n");
    let reference_grid = analysis::Grid {
        ks: generated.ks.clone(),
        ds: generated.ds.clone(),
        cells: reference.iter().map(|r| r.to_vec()).collect(),
    };
    println!("{}", reference_grid.to_markdown("k \\ D", digits));
    println!(
        "max |Δ| = {:.3}, max relative Δ = {:.1}%\n",
        generated.max_abs_diff(reference),
        generated.max_rel_diff(reference) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_empty() {
        assert_eq!(
            parse(""),
            Args {
                smoke: false,
                trials: None,
                seed: None,
                blocks: None
            }
        );
    }

    #[test]
    fn parses_all_flags() {
        let a = parse("--smoke --trials 50 --seed 9 --blocks 100");
        assert!(a.smoke);
        assert_eq!(a.trials, Some(50));
        assert_eq!(a.seed, Some(9));
        assert_eq!(a.blocks, Some(100));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse("--bogus");
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn rejects_missing_value() {
        parse("--trials");
    }
}
