//! **Experiment X3** (extension) — §8's deterministic variant: start
//! disks staggered (`d_r = ⌊rD/R⌋`) instead of random.  On average-case
//! inputs the paper expects comparable overhead; this binary measures
//! both placements side by side with the merge simulator.
//!
//! ```text
//! cargo run -p bench --release --bin deterministic [-- --smoke --trials N --blocks N --seed N]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_core::simulator::{estimate_overhead_v, SimPlacement};

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 2 } else { 5 });
    let blocks = args.blocks.unwrap_or(if args.smoke { 100 } else { 1000 });
    let seed = args.seed.unwrap_or(0x7AB1_E0D3);
    let cells: &[(usize, usize)] = if args.smoke {
        &[(5, 5), (5, 10)]
    } else {
        &[(5, 5), (5, 10), (5, 50), (10, 10), (10, 50), (50, 50)]
    };

    println!("# Deterministic stagger (§8) vs randomized placement\n");
    println!("(L={blocks} blocks/run, B=1000, trials={trials}, seed={seed:#x})\n");
    println!("| k | D | v randomized | v staggered |");
    println!("|---|---|--------------|-------------|");
    for &(k, d) in cells {
        let mut rng = SmallRng::seed_from_u64(seed);
        let random =
            estimate_overhead_v(k, d, blocks, 1000, SimPlacement::Random, trials, &mut rng)
                .expect("simulation");
        let mut rng = SmallRng::seed_from_u64(seed);
        let staggered =
            estimate_overhead_v(k, d, blocks, 1000, SimPlacement::Staggered, trials, &mut rng)
                .expect("simulation");
        println!(
            "| {k} | {d} | {:.3} ± {:.3} | {:.3} ± {:.3} |",
            random.mean,
            1.96 * random.std_err,
            staggered.mean,
            1.96 * staggered.std_err
        );
    }
    println!("\nExpected shape: the two columns agree to within noise on");
    println!("average-case inputs — the stagger only loses its guarantee on");
    println!("adversarial inputs (where randomization is provably needed).");
}
