//! **Experiment T1** — Table 1 of the paper: the read-overhead factor
//! `v(k, D) = C(kD, D)/k` estimated by classical-occupancy ball-throwing.
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --smoke --trials N --seed N]
//! ```

use analysis::paper;

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 100 } else { 1000 });
    let seed = args.seed.unwrap_or(0x7AB1_E001);
    let (ks, ds): (Vec<usize>, Vec<usize>) = if args.smoke {
        (vec![5, 10, 20, 50], vec![5, 10, 50])
    } else {
        (paper::TABLE12_KS.to_vec(), paper::TABLE12_DS.to_vec())
    };
    println!("# Table 1: v(k, D) = C(kD, D)/k  (trials={trials}, seed={seed:#x})\n");
    let grid = analysis::table1(&ks, &ds, trials, seed);
    let reference: Vec<&[f64]> = paper::TABLE1
        .iter()
        .take(ks.len())
        .map(|r| &r[..ds.len()])
        .collect();
    bench::print_comparison("Table 1 — overhead v(k, D)", &grid, &reference, 2);

    // Where kD <= 170 the cell is computable *exactly* (EGF method) —
    // settling the sampling noise in both our estimate and the paper's.
    println!("Exact values (no sampling), where kD <= 170:\n");
    println!("| k | D | exact v(k,D) | this run | paper |");
    println!("|---|---|--------------|----------|-------|");
    for (i, &k) in ks.iter().enumerate() {
        for (j, &d) in ds.iter().enumerate() {
            if k * d <= 170 {
                let exact = occupancy::exact_classical_max_egf((k * d) as u32, d) / k as f64;
                println!(
                    "| {k} | {d} | {exact:.4} | {:.2} | {} |",
                    grid.cells[i][j],
                    paper::TABLE1[i][j]
                );
            }
        }
    }
}
