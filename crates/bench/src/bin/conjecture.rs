//! **Experiment X2** (extension) — the §7.2 conjecture: the expected
//! maximum of the *dependent* occupancy problem never exceeds the
//! classical one with the same `N_b` and `D`.
//!
//! Sweeps chain-length mixes from all-singletons (classical) to few long
//! chains and reports both expectations.
//!
//! ```text
//! cargo run -p bench --release --bin conjecture [-- --smoke --trials N --seed N]
//! ```

use occupancy::DependentProblem;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 5_000 } else { 100_000 });
    let seed = args.seed.unwrap_or(0x7AB1_E0C2);
    let mut rng = SmallRng::seed_from_u64(seed);

    println!("# Section 7.2 conjecture: E[dependent max] <= E[classical max]\n");
    println!("(trials={trials}, seed={seed:#x})\n");
    println!("| D | N_b | chain mix | E[dependent] | E[classical] | holds |");
    println!("|---|-----|-----------|--------------|--------------|-------|");
    let configs: &[(usize, &[u64], &str)] = &[
        (4, &[4, 3, 2, 2, 1], "figure-1 mix"),
        (8, &[8; 8], "8 chains of D"),
        (8, &[4; 16], "16 chains of D/2"),
        (8, &[2; 32], "32 chains of 2"),
        (16, &[16, 16, 16, 16, 8, 8, 4, 4, 2, 2, 1, 1, 1, 1], "mixed"),
        (10, &[25, 25, 25, 25], "chains longer than D"),
        (32, &[3; 64], "length 3, D=32"),
    ];
    let mut all_hold = true;
    for &(d, chains, label) in configs {
        let dep = DependentProblem::new(d, chains.to_vec());
        let n_b = dep.total_balls();
        let cla = DependentProblem::classical(n_b as usize, d);
        let e_dep = dep.estimate_max(trials, &mut rng);
        let e_cla = cla.estimate_max(trials, &mut rng);
        // "holds" up to Monte-Carlo noise (3 combined standard errors).
        let holds = e_dep.mean <= e_cla.mean + 3.0 * (e_dep.std_err + e_cla.std_err);
        all_hold &= holds;
        println!(
            "| {d} | {n_b} | {label} | {:.3} ± {:.3} | {:.3} ± {:.3} | {} |",
            e_dep.mean,
            1.96 * e_dep.std_err,
            e_cla.mean,
            1.96 * e_cla.std_err,
            if holds { "yes" } else { "NO" }
        );
    }
    println!(
        "\nConjecture {} across all configurations tested.",
        if all_hold { "holds" } else { "FAILED" }
    );
}
