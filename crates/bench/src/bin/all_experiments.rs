//! Run every experiment binary in sequence, writing each one's report to
//! `results/<name>.txt` — the single command that regenerates the data
//! behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p bench --release --bin all_experiments [-- --smoke]
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "bound_tightness",
    "conjecture",
    "deterministic",
    "adversarial",
    "interleaving",
    "phases",
    "end_to_end",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    // Experiment binaries live next to this one.
    let bin_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let mut failures = 0;
    for name in EXPERIMENTS {
        let start = std::time::Instant::now();
        let output = Command::new(bin_dir.join(name))
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("spawn {name}: {e} (build with `cargo build -p bench --release --bins` first)"));
        let path = out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, &output.stdout).expect("write report");
        if output.status.success() {
            println!(
                "ok   {name:<16} {:>7.1?}  -> {}",
                start.elapsed(),
                path.display()
            );
        } else {
            failures += 1;
            println!(
                "FAIL {name:<16} {:>7.1?}  ({})",
                start.elapsed(),
                String::from_utf8_lossy(&output.stderr).lines().next().unwrap_or("?")
            );
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall {} experiments regenerated under results/", EXPERIMENTS.len());
}
