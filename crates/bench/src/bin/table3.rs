//! **Experiment T3** — Table 3 of the paper: the overhead `v(k, D)` from
//! simulating the SRM merge itself on average-case inputs (`R = kD` runs,
//! `L = 1000` blocks each, `B = 1000`; the paper's `N' = 1000·kDB`).
//!
//! ```text
//! cargo run -p bench --release --bin table3 [-- --smoke --trials N --blocks N --seed N]
//! ```

use analysis::paper;
use analysis::tables::Table3Params;
use srm_core::simulator::SimPlacement;

fn main() {
    let args = bench::Args::parse();
    let params = Table3Params {
        blocks_per_run: args.blocks.unwrap_or(if args.smoke { 100 } else { 1000 }),
        b: 1000,
        trials: args.trials.unwrap_or(if args.smoke { 1 } else { 3 }),
        seed: args.seed.unwrap_or(0x7AB1_E003),
        placement: SimPlacement::Random,
    };
    let (ks, ds): (Vec<usize>, Vec<usize>) = if args.smoke {
        (vec![5, 10], vec![5, 10])
    } else {
        (paper::TABLE34_KS.to_vec(), paper::TABLE34_DS.to_vec())
    };
    println!(
        "# Table 3: v(k, D) from SRM merge simulation  (L={} blocks/run, trials={}, seed={:#x})\n",
        params.blocks_per_run, params.trials, params.seed
    );
    let grid = analysis::table3(&ks, &ds, params);
    let reference: Vec<&[f64]> = paper::TABLE3
        .iter()
        .take(ks.len())
        .map(|r| &r[..ds.len()])
        .collect();
    bench::print_comparison("Table 3 — simulated overhead v(k, D)", &grid, &reference, 2);
}
