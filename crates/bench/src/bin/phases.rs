//! **Experiment X8** (extension) — the analysis chain of §6–§7, measured
//! link by link.
//!
//! For average-case merges of `R = kD` runs, compare:
//!
//! 1. the *measured* reads per phase (`total reads · R / total blocks`);
//! 2. the mean per-phase occupancy maximum `E[L'_i]` computed from the
//!    actual inputs (Definition 11 — the quantity Lemma 8 charges reads
//!    against);
//! 3. the dependent-occupancy Monte Carlo with matching chain shapes;
//! 4. the classical-occupancy value `C(kD, D)` that Table 1 tabulates.
//!
//! The paper's whole argument is `1 ≤ 2 ≈ 3 ≤ 4`; this binary prints all
//! four so the inequalities can be seen holding at once.
//!
//! ```text
//! cargo run -p bench --release --bin phases [-- --smoke --trials N --blocks N --seed N]
//! ```

use occupancy::DependentProblem;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_core::simulator::{MergeSim, SimInput, SimPlacement};

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 2 } else { 5 });
    let blocks = args.blocks.unwrap_or(if args.smoke { 100 } else { 500 });
    let seed = args.seed.unwrap_or(0x7AB1_E0B8);
    let cells: &[(usize, usize)] = if args.smoke {
        &[(2, 8)]
    } else {
        &[(1, 8), (2, 8), (5, 10), (5, 50), (10, 50)]
    };

    println!("# The analysis chain, measured (L={blocks} blocks/run, trials={trials})\n");
    println!("| k | D | reads/phase (measured) | mean L'_i (inputs) | dependent MC | classical C(kD,D) |");
    println!("|---|---|------------------------|--------------------|--------------|-------------------|");
    for &(k, d) in cells {
        let r = k * d;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut measured = 0.0;
        let mut mean_lprime = 0.0;
        for _ in 0..trials {
            let input = SimInput::average_case(r, blocks, 256, d, SimPlacement::Random, &mut rng);
            let stats = MergeSim::run(&input).expect("simulation");
            let phases = input.phase_occupancies();
            measured +=
                stats.schedule.total_reads() as f64 * r as f64 / input.total_blocks() as f64;
            mean_lprime += phases.iter().sum::<u64>() as f64 / phases.len() as f64;
        }
        measured /= trials as f64;
        mean_lprime /= trials as f64;

        // Dependent occupancy with the phase's chain shape: R blocks from
        // R runs — in the fully interleaved average case each run
        // contributes ≈ 1 block per phase, chains of ≈ length 1; but the
        // distribution matters, so sample chain multiplicities from the
        // same construction: uniform chains of length 1 understate
        // dependence, so instead use the exact L'_i machinery above and
        // a plain R-balls-in-D-bins reference for the classical column.
        let dep = DependentProblem::uniform_chains(r, 1, d)
            .estimate_max(20_000, &mut rng);
        let cla = occupancy::estimate_classical_max(r as u64, d, 20_000, &mut rng);
        println!(
            "| {k} | {d} | {measured:.2} | {mean_lprime:.2} | {:.2} | {:.2} |",
            dep.mean, cla.mean
        );
    }
    println!("\nReading the row: measured reads/phase ≤ mean L'_i (Lemmas 6+8's");
    println!("charge), and mean L'_i stays below the classical C(kD, D) that");
    println!("Table 1 uses as its worst-case-expected overhead — the paper's");
    println!("conjectured dependent ≤ classical ordering, live on merge inputs.");
}
