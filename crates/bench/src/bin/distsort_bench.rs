//! **Distributed-sort scaling benchmark** — wall-clock of `distsort`
//! across shard counts P = 1, 2, 4, 8 on the same input, plus the
//! recovery drill: how much a mid-sort node death (fence, respawn,
//! checkpoint resume) costs end to end.  Writes `BENCH_distsort.json`
//! at the repo root.
//!
//! ```text
//! cargo run -p bench --release --bin distsort_bench [-- --quick]
//!     [--out PATH] [--seed N] [--reps N] [--assert-scaling]
//! ```
//!
//! Shard counts are interleaved and each is timed as the minimum of
//! `--reps` runs (default 3), which filters host scheduling noise.  A
//! per-block service delay puts genuine I/O latency on every shard's
//! private disk cluster, so the shards have real waiting to overlap —
//! with a zero-cost disk the coordinator's splitter scan dominates and
//! P changes nothing.  Every run's digest is checked against the
//! centrally sorted oracle, and every P must produce the *same*
//! digest (the global output does not depend on the partitioning).
//!
//! `--assert-scaling` exits non-zero unless wall-clock improves
//! monotonically from P=1 through P=4 (the acceptance gate; P=8
//! typically oversubscribes CI hosts and is reported but not gated).
//!
//! The recovery drill reruns P ∈ {2, 4} with `--kill-node` at the
//! first merge-pass boundary and reports both the end-to-end overhead
//! against the clean run and the fence-to-replacement-ready time the
//! coordinator measured.

use srm_dist::{distsort, DistConfig, DistReport, KillPlan, KillPoint};
use srm_server::JobSpec;
use std::path::PathBuf;
use std::time::Duration;

/// One shard-count measurement (min over reps).
struct Scale {
    shards: u32,
    elapsed_ms: u64,
    digest: u64,
}

/// One kill-drill measurement.
struct Recovery {
    shards: u32,
    clean_ms: u64,
    killed_ms: u64,
    recovery_ms: u64,
    recoveries: u64,
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<PathBuf> = None;
    let mut seed: u64 = 0xD157_BE4C;
    let mut reps: usize = 3;
    let mut assert_scaling = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--assert-scaling" => assert_scaling = true,
            "--out" => {
                out_path = Some(PathBuf::from(it.next().expect("--out needs a path")));
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed: bad integer");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                reps = v.parse().expect("--reps: bad integer");
                assert!(reps >= 1, "--reps must be at least 1");
            }
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_distsort.json")
    });

    // One shard's cluster is d disks of b-record blocks; every shard
    // sees only its bucket, so per-shard work shrinks with P while the
    // service delay keeps each block honest.
    let (records, io_delay_us) = if quick { (20_000u64, 20u64) } else { (120_000, 40) };
    let spec = JobSpec {
        records,
        seed,
        d: 3,
        b: 16,
        m: 1024,
        ..JobSpec::default()
    };
    let delay = Duration::from_micros(io_delay_us);
    let shard_counts: &[u32] = &[1, 2, 4, 8];

    println!("# Distributed sort: wall-clock vs shard count\n");
    println!(
        "({} records, d={} b={} m={} per shard, {}us/block, min of {} reps)\n",
        records, spec.d, spec.b, spec.m, io_delay_us, reps
    );
    println!("| P | wall-clock | speedup vs P=1 | efficiency |");
    println!("|---|---|---|---|");

    // Interleave shard counts across reps (round-robin, not P-at-a-
    // time) so slow drift in host load cannot favor one P.
    let mut best: Vec<Option<Scale>> = shard_counts.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (i, &p) in shard_counts.iter().enumerate() {
            let report = run_clean(&spec, p, delay);
            let slot = &mut best[i];
            match slot {
                Some(prev) => {
                    assert_eq!(
                        prev.digest, report.digest,
                        "P={p} digest unstable across reps"
                    );
                    prev.elapsed_ms = prev.elapsed_ms.min(report.elapsed_ms);
                }
                None => {
                    *slot = Some(Scale {
                        shards: p,
                        elapsed_ms: report.elapsed_ms,
                        digest: report.digest,
                    })
                }
            }
        }
    }
    let scales: Vec<Scale> = best.into_iter().map(|s| s.expect("measured")).collect();
    for s in &scales {
        assert_eq!(
            s.digest, scales[0].digest,
            "the global output must not depend on the partitioning"
        );
    }

    let t1 = scales[0].elapsed_ms.max(1) as f64;
    for s in &scales {
        let speedup = t1 / s.elapsed_ms.max(1) as f64;
        println!(
            "| {} | {}ms | {:.2}x | {:.0}% |",
            s.shards,
            s.elapsed_ms,
            speedup,
            100.0 * speedup / f64::from(s.shards)
        );
    }

    // The recovery drill: same workload, kill one shard at its first
    // merge-pass boundary, measure the end-to-end cost of the fence +
    // respawn + checkpoint resume.
    println!("\n## Recovery after a node death (kill at pass 1)\n");
    println!("| P | clean | with kill | overhead | fence-to-ready |");
    println!("|---|---|---|---|---|");
    let mut recoveries: Vec<Recovery> = Vec::new();
    for &p in &[2u32, 4] {
        let clean_ms = scales
            .iter()
            .find(|s| s.shards == p)
            .expect("P measured above")
            .elapsed_ms;
        let mut killed: Option<DistReport> = None;
        for _ in 0..reps {
            let mut cfg = config(p, delay);
            cfg.kill = Some(KillPlan {
                shard: p - 1,
                point: KillPoint::Pass(1),
            });
            let report = run_one(&spec, cfg, p, "kill");
            assert_eq!(report.digest, scales[0].digest, "kill run digest diverged");
            assert!(report.recoveries >= 1, "the drill must cause a recovery");
            killed = Some(match killed.take() {
                Some(prev) if prev.elapsed_ms <= report.elapsed_ms => prev,
                _ => report,
            });
        }
        let killed = killed.expect("measured");
        let fence_to_ready = killed.recovery_ms.iter().copied().max().unwrap_or(0);
        println!(
            "| {} | {}ms | {}ms | +{}ms | {}ms |",
            p,
            clean_ms,
            killed.elapsed_ms,
            killed.elapsed_ms.saturating_sub(clean_ms),
            fence_to_ready
        );
        recoveries.push(Recovery {
            shards: p,
            clean_ms,
            killed_ms: killed.elapsed_ms,
            recovery_ms: fence_to_ready,
            recoveries: killed.recoveries,
        });
    }

    let json = render_json(&spec, io_delay_us, quick, reps, &scales, &recoveries);
    std::fs::write(&out_path, json).expect("write BENCH_distsort.json");
    println!("\nwrote {}", out_path.display());

    if assert_scaling {
        for pair in scales[..3].windows(2) {
            assert!(
                pair[1].elapsed_ms < pair[0].elapsed_ms,
                "wall-clock must improve monotonically P={} ({}ms) -> P={} ({}ms)",
                pair[0].shards,
                pair[0].elapsed_ms,
                pair[1].shards,
                pair[1].elapsed_ms
            );
        }
        println!("scaling gate: P=1 -> 2 -> 4 monotone ok");
    }
}

fn config(shards: u32, delay: Duration) -> DistConfig {
    let mut cfg = DistConfig::new(shards);
    cfg.io_delay = delay;
    cfg
}

fn run_clean(spec: &JobSpec, shards: u32, delay: Duration) -> DistReport {
    run_one(spec, config(shards, delay), shards, "clean")
}

fn run_one(spec: &JobSpec, cfg: DistConfig, shards: u32, tag: &str) -> DistReport {
    let dir = std::env::temp_dir().join(format!(
        "srm-distbench-{}-{tag}-{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let report = distsort(spec, &cfg, &dir).expect("distsort failed");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.oracle_ok, "P={shards} digest must match the oracle");
    for (s, shard) in report.per_shard.iter().enumerate() {
        assert!(shard.trace_clean, "P={shards} shard {s} trace dirty");
    }
    report
}

/// Hand-rolled JSON (the bench crate carries no serde).
fn render_json(
    spec: &JobSpec,
    io_delay_us: u64,
    quick: bool,
    reps: usize,
    scales: &[Scale],
    recoveries: &[Recovery],
) -> String {
    let t1 = scales[0].elapsed_ms.max(1) as f64;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"distsort\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!(
        "  \"records\": {}, \"d\": {}, \"b\": {}, \"m\": {}, \"io_delay_us\": {},\n",
        spec.records, spec.d, spec.b, spec.m, io_delay_us
    ));
    s.push_str(&format!("  \"digest\": \"{:#018x}\",\n", scales[0].digest));
    s.push_str("  \"scaling\": [\n");
    for (i, sc) in scales.iter().enumerate() {
        let speedup = t1 / sc.elapsed_ms.max(1) as f64;
        s.push_str(&format!(
            "    {{\"shards\": {}, \"elapsed_ms\": {}, \"speedup\": {:.4}, \
             \"efficiency\": {:.4}}}{}\n",
            sc.shards,
            sc.elapsed_ms,
            speedup,
            speedup / f64::from(sc.shards),
            if i + 1 == scales.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"clean_ms\": {}, \"killed_ms\": {}, \
             \"overhead_ms\": {}, \"fence_to_ready_ms\": {}, \"recoveries\": {}}}{}\n",
            r.shards,
            r.clean_ms,
            r.killed_ms,
            r.killed_ms.saturating_sub(r.clean_ms),
            r.recovery_ms,
            r.recoveries,
            if i + 1 == recoveries.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
