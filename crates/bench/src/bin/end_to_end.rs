//! **Experiment X4** (extension) — end-to-end accounting: full
//! record-level sorts with SRM and DSM on identical inputs and identical
//! memory budgets, compared against the closed-form predictions of
//! eq. (40)/(41).
//!
//! ```text
//! cargo run -p bench --release --bin end_to_end [-- --smoke --seed N]
//! ```

use dsm::{write_unsorted_stripes, DsmSorter};
use pdisk::{DiskArray as _, DiskModel, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::SrmSorter;

fn main() {
    let args = bench::Args::parse();
    let seed = args.seed.unwrap_or(0x7AB1_E0E4);
    // (k, D, B, N): table-style geometries scaled to record level.
    let configs: &[(usize, usize, usize, u64)] = if args.smoke {
        &[(2, 4, 16, 200_000)]
    } else {
        &[
            (2, 4, 16, 1_000_000),
            (2, 8, 16, 1_000_000),
            (4, 4, 32, 2_000_000),
            (8, 4, 32, 4_000_000),
        ]
    };
    let model = DiskModel::hdd_1996();

    println!("# End-to-end sorts: SRM vs DSM, measured vs predicted\n");
    println!("(seed={seed:#x}, disk model: 1996-era 9ms/5.6ms/6MBps)\n");
    println!("| k | D | B | N | SRM ops (meas) | SRM ops (eq.40, v=1.1) | DSM ops (meas) | DSM ops (eq.41) | meas ratio | SRM est time | DSM est time |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for &(k, d, b, n) in configs {
        let mut rng = SmallRng::seed_from_u64(seed);
        let geom = Geometry::for_table(k, d, b).expect("geometry");
        let keys: Vec<U64Record> = (0..n).map(|_| U64Record(rng.random())).collect();

        let mut srm_array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut srm_array, &keys).expect("stage input");
        srm_array.reset_stats();
        let (_, srm_report) = SrmSorter::default()
            .sort(&mut srm_array, &input)
            .expect("SRM sort");
        let srm_ops = srm_report.io.total_ops();

        let mut dsm_array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_stripes(&mut dsm_array, &keys).expect("stage input");
        dsm_array.reset_stats();
        let (_, dsm_report) = DsmSorter::default()
            .sort(&mut dsm_array, &input)
            .expect("DSM sort");
        let dsm_ops = dsm_report.io.total_ops();

        let srm_pred = analysis::srm_total_ios(n, geom.m as u64, d, b, k, 1.1);
        let dsm_pred = analysis::dsm_total_ios(n, geom.m as u64, d, b, k);
        let block_bytes = b * 8;
        println!(
            "| {k} | {d} | {b} | {n} | {srm_ops} | {srm_pred:.0} | {dsm_ops} | {dsm_pred:.0} | {:.2} | {:.1?} | {:.1?} |",
            srm_ops as f64 / dsm_ops as f64,
            model.estimate(&srm_report.io, block_bytes),
            model.estimate(&dsm_report.io, block_bytes),
        );
    }
    println!("\nExpected shape: the measured ratio column sits below 1 whenever");
    println!("both sorters need multiple merge passes (SRM's higher merge order");
    println!("saves passes), and the measured columns track the eq. 40/41");
    println!("predictions to within the formulas' no-ceiling simplification.");
}
