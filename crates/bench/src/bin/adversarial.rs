//! **Experiment X6** (extension) — the §3 motivation, quantified: what
//! striped merging costs *without* randomization on an adversarial input.
//!
//! The input is "lockstep": every run's block `i` participates before any
//! run's block `i+1`, so with all runs laid out from the same start disk
//! the `R` next-needed blocks always share one disk.  The paper argues
//! naive merging then degrades by a factor of `D`; SRM's forecast-and-
//! flush buffering softens that to ≈ `D/3` — still linear in `D` — while
//! random or staggered placement on the *identical* keys stays near 1.
//!
//! ```text
//! cargo run -p bench --release --bin adversarial [-- --smoke --blocks N --seed N]
//! ```

use pdisk::{DiskId, Geometry, MemDiskArray, StripedRun, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::simulator::{MergeSim, SimInput};
use srm_core::{merge_runs, naive_merge_count, RunWriter};

/// Record-level lockstep run set, all runs starting on one disk.
fn lockstep_runs(
    array: &mut MemDiskArray<U64Record>,
    geom: Geometry,
    n_runs: usize,
    len: u64,
) -> Vec<StripedRun> {
    (0..n_runs)
        .map(|j| {
            let mut w = RunWriter::new(geom, DiskId(0));
            for i in 0..len {
                w.push(array, U64Record(i * n_runs as u64 + j as u64)).unwrap();
            }
            w.finish(array).unwrap()
        })
        .collect()
}

fn main() {
    let args = bench::Args::parse();
    let blocks = args.blocks.unwrap_or(if args.smoke { 100 } else { 500 });
    let seed = args.seed.unwrap_or(0x7AB1_E0A6);
    let ds: &[usize] = if args.smoke { &[4, 8] } else { &[4, 8, 16, 32, 64] };

    println!("# Lockstep adversary vs placement policy (R = D runs, L = {blocks} blocks)\n");
    println!("| D | v same-disk (deterministic) | v staggered (§8) | v random (SRM) | Lemma-6 bound, same-disk |");
    println!("|---|------------------------------|------------------|----------------|--------------------------|");
    for &d in ds {
        let r = d;
        let same = SimInput::lockstep_adversarial(blocks, d, &vec![0u32; r]);
        let v_same = MergeSim::run(&same).expect("sim").overhead_v;
        let bound = same.phase_read_upper_bound() as f64
            / (same.total_blocks() as f64 / d as f64);

        let stagger: Vec<u32> = (0..r).map(|j| (j * d / r) as u32).collect();
        let v_stag = MergeSim::run(&SimInput::lockstep_adversarial(blocks, d, &stagger))
            .expect("sim")
            .overhead_v;

        let mut rng = SmallRng::seed_from_u64(seed);
        let random: Vec<u32> = (0..r).map(|_| rng.random_range(0..d as u32)).collect();
        let v_rand = MergeSim::run(&SimInput::lockstep_adversarial(blocks, d, &random))
            .expect("sim")
            .overhead_v;

        println!("| {d} | {v_same:.2} | {v_stag:.2} | {v_rand:.2} | {bound:.2} |");
    }
    println!("\nReading the table: the deterministic same-disk column grows");
    println!("linearly with D (the §3 disaster, softened ~3x by SRM's");
    println!("prefetch buffers); the stagger defeats *this* adversary by");
    println!("construction but an adversary who knows the stagger can build");
    println!("the analogous input against it — only the random column's");
    println!("guarantee (Theorem 1) holds for every input.");

    // Record-level coda: the *naive* demand-paged merger (no forecasting,
    // no flushing — §3's strawman) against SRM's full schedule, both at
    // record granularity on the same same-disk lockstep input.
    let rds: &[usize] = if args.smoke { &[4] } else { &[4, 8, 16] };
    let len = if args.smoke { 100 } else { 400 };
    println!("\n## Record-level: naive demand paging vs SRM (same-disk lockstep, R = D)\n");
    println!("| D | v naive | v SRM |");
    println!("|---|---------|-------|");
    for &d in rds {
        let geom = Geometry::new(d, 4, 10_000_000).expect("geometry");
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let runs = lockstep_runs(&mut a, geom, d, len);
        let blocks: u64 = runs.iter().map(|r| r.len_blocks).sum();
        let naive = naive_merge_count(&mut a, &runs).expect("naive merge");
        let mut b: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let runs = lockstep_runs(&mut b, geom, d, len);
        let srm = merge_runs(&mut b, &runs, DiskId(0)).expect("srm merge");
        println!(
            "| {d} | {:.2} | {:.2} |",
            naive.overhead_v(d, blocks),
            srm.stats.schedule.total_reads() as f64 / (blocks as f64 / d as f64)
        );
    }
    println!("\nForecast-and-flush consistently beats demand paging on its");
    println!("own worst case; randomizing the layout removes the rest.");
}
