//! **Experiment F1** — Figure 1 of the paper: one instance of the
//! dependent occupancy problem (chains deposited cyclically) next to the
//! classical problem (independent balls), `N_b = 12`, `C = 5`, `D = 4`.
//!
//! The paper's depicted maxima are 4 (dependent) and 5 (classical); this
//! binary renders the instance as ASCII, reproduces those maxima, and
//! then Monte-Carlo-averages both models to show the ordering
//! `E[dependent max] ≤ E[classical max]` behind the §7.2 conjecture.
//!
//! ```text
//! cargo run -p bench --release --bin figure1 [-- --trials N --seed N]
//! ```

use occupancy::{figure1_instance, DependentProblem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn render_bins(title: &str, occ: &[u64]) {
    println!("{title}");
    let max = occ.iter().copied().max().unwrap_or(0);
    for level in (1..=max).rev() {
        let row: String = occ
            .iter()
            .map(|&o| if o >= level { " [#] " } else { "     " })
            .collect();
        println!("  {row}");
    }
    let base: String = occ.iter().map(|_| "-----").collect();
    println!("  {base}");
    let labels: String = (0..occ.len()).map(|i| format!(" b{i:<3}")).collect();
    println!("  {labels}");
    println!("  maximum occupancy: {max}\n");
}

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 5_000 } else { 200_000 });
    let seed = args.seed.unwrap_or(0x7AB1_E00F);

    println!("# Figure 1: dependent vs classical occupancy (N_b=12, C=5, D=4)\n");
    let (problem, starts) = figure1_instance();
    println!(
        "chains: {:?} thrown at bins {:?}\n",
        problem.chains(),
        starts
    );
    let dep = problem.throw_at(&starts);
    render_bins("(a) dependent occupancy — balls deposited cyclically:", &dep);

    // The classical counterpart of the figure: the same 12 balls thrown
    // independently; the depicted instance reaches maximum 5.  We place
    // them to reproduce the figure's bin loads (5, 3, 2, 2).
    let classical = [5u64, 3, 2, 2];
    render_bins("(b) classical occupancy — independent balls:", &classical);

    println!("paper's depicted maxima: dependent=4, classical=5");
    println!("reproduced maxima:       dependent={}, classical={}\n", dep.iter().max().unwrap(), classical.iter().max().unwrap());

    // Monte-Carlo: the ordering in expectation.
    let mut rng = SmallRng::seed_from_u64(seed);
    let e_dep = problem.estimate_max(trials, &mut rng);
    let e_cla = DependentProblem::classical(12, 4).estimate_max(trials, &mut rng);
    println!("E[max] over {trials} trials (seed {seed:#x}):");
    println!("  dependent: {e_dep}");
    println!("  classical: {e_cla}");
    println!(
        "  ordering E[dep] <= E[classical]: {}",
        if e_dep.mean <= e_cla.mean { "holds" } else { "VIOLATED" }
    );
}
