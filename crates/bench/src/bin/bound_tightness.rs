//! **Experiment X1** (extension) — tightness of Theorem 2's bound.
//!
//! For each `(k, D)` cell of Table 1 this prints three numbers:
//!
//! * the Monte-Carlo expected maximum occupancy (the "truth");
//! * the numeric `ρ*` bound of eq. (26) (what the paper actually proves);
//! * the Case 1 closed-form expansion (what Theorem 2 states).
//!
//! ```text
//! cargo run -p bench --release --bin bound_tightness [-- --smoke --trials N --seed N]
//! ```

use occupancy::{
    estimate_classical_max, theorem2_case1, upper_bound_expected_max, BinOccupancyPgf,
    DependentProblem,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 200 } else { 2000 });
    let seed = args.seed.unwrap_or(0x7AB1_E0B1);
    let ks: &[usize] = if args.smoke { &[5, 50] } else { &[5, 10, 20, 50, 100] };
    let ds: &[usize] = if args.smoke { &[10, 50] } else { &[5, 10, 50, 100, 1000] };
    let mut rng = SmallRng::seed_from_u64(seed);

    println!("# Theorem 2 bound tightness (trials={trials}, seed={seed:#x})\n");
    println!("Four estimates of E[max occupancy] for kD balls in D bins, loosest to tightest:");
    println!("the Case 1 closed form (O-terms dropped), the numeric rho* bound of eq. 26,");
    println!("the exact-PGF bound (eqs. 5-18 without the step-12 simplification), and the");
    println!("Monte-Carlo truth.\n");
    println!("| k | D | MC E[max] | exact-PGF bound | rho* bound (eq.26) | Case 1 closed form | rho*/MC |");
    println!("|---|---|-----------|-----------------|--------------------|--------------------|---------|");
    for &k in ks {
        for &d in ds {
            let n_b = (k * d) as u64;
            let mc = estimate_classical_max(n_b, d, trials, &mut rng);
            let rho = upper_bound_expected_max(n_b, d);
            let pgf = BinOccupancyPgf::new(&DependentProblem::classical(n_b as usize, d))
                .expected_max_bound();
            let closed = theorem2_case1(k as f64, d);
            let ratio = rho / mc.mean;
            println!(
                "| {k} | {d} | {:.2} | {pgf:.2} | {rho:.2} | {closed:.2} | {ratio:.2} |",
                mc.mean
            );
            assert!(
                rho + 1e-9 >= mc.mean - 3.0 * mc.std_err,
                "rho* bound violated at k={k}, D={d}"
            );
            assert!(
                pgf + 1e-9 >= mc.mean - 3.0 * mc.std_err,
                "PGF bound violated at k={k}, D={d}"
            );
        }
    }
    println!("\nEvery bound dominates its Monte-Carlo estimate (asserted).");
}
