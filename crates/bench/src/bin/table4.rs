//! **Experiment T4** — Table 4 of the paper: `C'_SRM/C_DSM` where the
//! overhead `v` comes from the Table 3 merge simulation (average case)
//! rather than the Table 1 occupancy bound (expected worst case).
//!
//! ```text
//! cargo run -p bench --release --bin table4 [-- --smoke --trials N --blocks N --seed N]
//! ```

use analysis::paper;
use analysis::tables::Table3Params;
use srm_core::simulator::SimPlacement;

fn main() {
    let args = bench::Args::parse();
    let params = Table3Params {
        blocks_per_run: args.blocks.unwrap_or(if args.smoke { 100 } else { 1000 }),
        b: 1000,
        trials: args.trials.unwrap_or(if args.smoke { 1 } else { 3 }),
        seed: args.seed.unwrap_or(0x7AB1_E004),
        placement: SimPlacement::Random,
    };
    let (ks, ds): (Vec<usize>, Vec<usize>) = if args.smoke {
        (vec![5, 10], vec![5, 10])
    } else {
        (paper::TABLE34_KS.to_vec(), paper::TABLE34_DS.to_vec())
    };
    println!(
        "# Table 4: C'_SRM/C_DSM with simulated v  (L={} blocks/run, trials={}, seed={:#x})\n",
        params.blocks_per_run, params.trials, params.seed
    );
    let v = analysis::table3(&ks, &ds, params);
    let grid = analysis::table4(&v);
    let reference: Vec<&[f64]> = paper::TABLE4
        .iter()
        .take(ks.len())
        .map(|r| &r[..ds.len()])
        .collect();
    bench::print_comparison("Table 4 — C'_SRM/C_DSM", &grid, &reference, 2);
}
