//! **Experiment X7** (extension) — sensitivity to input skew.
//!
//! SRM's analysis is worst-case over inputs, and its average case (§9.3)
//! assumes fully interleaved runs.  Real data is often *partially*
//! sorted: runs cover overlapping-but-not-identical key ranges.  This
//! experiment sweeps the overlap fraction `θ` (1 = the paper's model,
//! 0 = disjoint runs) at the Table 3 corner where overhead is visible
//! (`k = 5, D = 50`), showing that less interleaving only helps.
//!
//! ```text
//! cargo run -p bench --release --bin interleaving [-- --smoke --trials N --blocks N --seed N]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_core::simulator::{MergeSim, SimInput, SimPlacement};

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 1 } else { 3 });
    let blocks = args.blocks.unwrap_or(if args.smoke { 100 } else { 1000 });
    let seed = args.seed.unwrap_or(0x7AB1_E0F7);
    let (k, d, b) = if args.smoke { (5usize, 16usize, 100u64) } else { (5, 50, 1000) };

    println!("# Overhead v as a function of run overlap θ  (k={k}, D={d}, L={blocks} blocks/run)\n");
    println!("| θ (overlap) | v(k, D) |");
    println!("|-------------|---------|");
    for theta in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..trials {
            let input = SimInput::overlapping_case(
                k * d,
                blocks,
                b,
                d,
                theta,
                SimPlacement::Random,
                &mut rng,
            );
            sum += MergeSim::run(&input).expect("simulation").overhead_v;
        }
        println!("| {theta:.2} | {:.3} |", sum / trials as f64);
    }
    println!("\nθ = 1.00 reproduces Table 3's cell; everything below it is");
    println!("easier: partially sorted inputs reduce simultaneous demand on");
    println!("any one disk, so SRM's overhead can only shrink.");
}
