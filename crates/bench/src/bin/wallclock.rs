//! **Wall-clock pipeline benchmark** — times the serial (blocking) and
//! pipelined (forecast-driven deep read-ahead + write-behind) engines of
//! SRM and DSM on the *file* backend, where disk latency is real, and
//! writes `BENCH_pipeline.json` at the repo root.
//!
//! ```text
//! cargo run -p bench --release --bin wallclock [-- --quick]
//!     [--assert-speedup MARGIN] [--assert-zero-delay MARGIN]
//!     [--out PATH] [--seed N] [--reps N]
//! ```
//!
//! Every case runs the same input through both engines and asserts the
//! outputs are byte-identical and the [`pdisk::IoStats`] exactly equal —
//! the pipeline moves waiting, never work (DESIGN.md §9, §14).  Engines
//! are interleaved and each is timed as the minimum of `--reps` runs
//! (default 3), which filters host scheduling noise.  Both engines run
//! with trusted reads on (first contact verifies the FNV checksum, a
//! pool-recycled re-read skips the rehash), so the comparison isolates
//! overlap, not checksum elision.  The headline case (SRM, `D = 8`,
//! realistic per-block delay, depth-3 read-ahead, 4 formation threads)
//! is additionally run under the tracing wrapper and replayed through
//! the modelcheck invariant checker.  `--assert-speedup 1.5` exits
//! non-zero unless the headline pipelined sort is at least 1.5x faster
//! than serial; `--assert-zero-delay 1.0` gates the `io_delay = 0` SRM
//! case the same way (the pipeline must never *cost* wall-clock even
//! with nothing to hide).
//!
//! The full matrix includes a read-ahead **depth sweep** over the
//! headline geometry (depth 0, 1, 3, 6), so the emitted JSON records
//! how speedup scales with prefetch depth.
//!
//! The emitted JSON is a flat object:
//!
//! ```json
//! { "bench": "pipeline", "quick": false, "headline_speedup": 1.62,
//!   "cases": [ { "algo": "srm", "d": 8, "b": 16, "m": 1792,
//!                "records": 120000, "io_delay_us": 60,
//!                "depth": 3, "threads": 4,
//!                "serial_ms": 2812.4, "pipelined_ms": 1731.0,
//!                "formation_ms": 402.1, "merge_ms": 1328.9,
//!                "speedup": 1.62, "read_ops": 3121, "write_ops": 2430,
//!                "stats_match": true, "output_match": true,
//!                "headline": true, "model_checked": true } ] }
//! ```
//!
//! `formation_ms` / `merge_ms` split the *pipelined* engine's best run
//! at the pass-0 boundary (run formation vs all merge passes); they sum
//! to `pipelined_ms` for SRM cases and are 0 for DSM (whose driver has
//! no pass observer).

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::trace::TracingDiskArray;
use pdisk::{DiskArray, FileDiskArray, Geometry, IoStats, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::run_formation::RunFormation;
use srm_core::sort::{write_unsorted_input, SrmConfig};
use srm_core::{read_run, SrmSorter};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark configuration.
struct Case {
    algo: &'static str,
    d: usize,
    b: usize,
    k: usize,
    records: u64,
    io_delay_us: u64,
    /// Forecast-driven read-ahead depth for the pipelined engine
    /// (0 = submit/complete only, no prefetch hints).
    depth: usize,
    /// Worker threads for run formation's internal sort (both engines).
    threads: usize,
    /// The acceptance-gate case: `D >= 4` with realistic latency.
    headline: bool,
}

/// One measured result.
struct Outcome {
    case: Case,
    m: usize,
    serial_ms: f64,
    pipelined_ms: f64,
    /// Pipelined best run, time up to the pass-0 boundary (SRM only).
    formation_ms: f64,
    /// Pipelined best run, time after the pass-0 boundary (SRM only).
    merge_ms: f64,
    io: IoStats,
    stats_match: bool,
    output_match: bool,
    model_checked: bool,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.pipelined_ms
    }
}

fn main() {
    let mut quick = false;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_zero_delay: Option<f64> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut seed: u64 = 0x01BE_11E5;
    let mut reps: usize = 3;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--assert-speedup" => {
                let v = it.next().expect("--assert-speedup needs a value");
                assert_speedup = Some(v.parse().expect("--assert-speedup: bad float"));
            }
            "--assert-zero-delay" => {
                let v = it.next().expect("--assert-zero-delay needs a value");
                assert_zero_delay = Some(v.parse().expect("--assert-zero-delay: bad float"));
            }
            "--out" => {
                out_path = Some(PathBuf::from(it.next().expect("--out needs a path")));
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed: bad integer");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                reps = v.parse().expect("--reps: bad integer");
                assert!(reps >= 1, "--reps must be at least 1");
            }
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
    });

    // (algo, D, B, k, records, delay_us, depth, threads, headline).
    // `--quick` keeps one SRM, one zero-delay SRM, and one DSM case at
    // reduced scale for CI smoke.
    //
    // Delays are SSD-class per-block service times; 60us sits where disk
    // time and engine compute are comparable, which is where overlap has
    // something to hide.  (With ms-class delays both engines are purely
    // disk-bound and the ratio tends to 1; at 0 the pipeline hides only
    // filesystem latency — the zero-delay case is the "never slower"
    // gate, not a speedup showcase.)  The depth sweep holds the headline
    // geometry fixed and varies only the read-ahead depth.
    let cases: Vec<Case> = if quick {
        vec![
            case("srm", 4, 16, 4, 30_000, 60, 3, 1, true),
            case("srm", 4, 16, 4, 30_000, 0, 3, 1, false),
            case("dsm", 4, 16, 4, 30_000, 60, 0, 1, false),
        ]
    } else {
        vec![
            // Depth sweep over the headline geometry.
            case("srm", 8, 16, 4, 120_000, 60, 0, 4, false),
            case("srm", 8, 16, 4, 120_000, 60, 1, 4, false),
            case("srm", 8, 16, 4, 120_000, 60, 3, 4, true),
            case("srm", 8, 16, 4, 120_000, 60, 6, 4, false),
            // Breadth: other geometries, block sizes, memory factors.
            case("srm", 2, 16, 4, 60_000, 60, 3, 1, false),
            case("srm", 4, 32, 4, 100_000, 60, 3, 1, false),
            case("srm", 4, 64, 4, 100_000, 60, 3, 1, false),
            case("srm", 4, 32, 2, 100_000, 60, 3, 1, false),
            // Zero-delay floor: overlap machinery must not cost time.
            case("srm", 4, 32, 4, 100_000, 0, 3, 1, false),
            case("dsm", 4, 32, 4, 100_000, 60, 0, 1, false),
            case("dsm", 2, 16, 4, 60_000, 60, 0, 1, false),
        ]
    };

    println!("# Wall-clock: serial vs pipelined engines (file backend)\n");
    println!("(seed={seed:#x}; every case asserts identical output bytes and identical IoStats)\n");
    println!("| algo | D | B | M | records | delay | depth | thr | serial | pipelined | form | merge | speedup |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    let mut outcomes: Vec<Outcome> = Vec::new();
    for case in cases {
        let o = run_case(case, seed, reps);
        println!(
            "| {} | {} | {} | {} | {} | {}us | {} | {} | {:.1}ms | {:.1}ms | {:.1}ms | {:.1}ms | {:.2}x |",
            o.case.algo,
            o.case.d,
            o.case.b,
            o.m,
            o.case.records,
            o.case.io_delay_us,
            o.case.depth,
            o.case.threads,
            o.serial_ms,
            o.pipelined_ms,
            o.formation_ms,
            o.merge_ms,
            o.speedup()
        );
        assert!(o.output_match, "pipelined output diverged from serial");
        assert!(o.stats_match, "pipelined IoStats diverged from serial");
        outcomes.push(o);
    }

    let headline = outcomes
        .iter()
        .find(|o| o.case.headline)
        .expect("a headline case must be configured");
    println!(
        "\nheadline (SRM D={} B={} delay={}us depth={} threads={}): {:.2}x speedup, model check {}",
        headline.case.d,
        headline.case.b,
        headline.case.io_delay_us,
        headline.case.depth,
        headline.case.threads,
        headline.speedup(),
        if headline.model_checked { "clean" } else { "SKIPPED" },
    );
    assert!(headline.model_checked, "headline trace must model-check");

    let json = render_json(&outcomes, quick, headline.speedup());
    std::fs::write(&out_path, json).expect("write BENCH_pipeline.json");
    println!("wrote {}", out_path.display());

    if let Some(margin) = assert_speedup {
        assert!(
            headline.speedup() >= margin,
            "headline speedup {:.3}x below required {margin}x",
            headline.speedup()
        );
        println!("speedup gate: {:.2}x >= {margin}x ok", headline.speedup());
    }
    if let Some(margin) = assert_zero_delay {
        let zero = outcomes
            .iter()
            .find(|o| o.case.algo == "srm" && o.case.io_delay_us == 0)
            .expect("--assert-zero-delay requires an io_delay=0 SRM case");
        assert!(
            zero.speedup() >= margin,
            "zero-delay speedup {:.3}x below required {margin}x",
            zero.speedup()
        );
        println!("zero-delay gate: {:.2}x >= {margin}x ok", zero.speedup());
    }
}

#[allow(clippy::too_many_arguments)]
fn case(
    algo: &'static str,
    d: usize,
    b: usize,
    k: usize,
    records: u64,
    io_delay_us: u64,
    depth: usize,
    threads: usize,
    headline: bool,
) -> Case {
    Case { algo, d, b, k, records, io_delay_us, depth, threads, headline }
}

/// The SRM sorter for a case: formation threads and read-ahead depth
/// applied identically regardless of engine (the serial engine ignores
/// the depth), so the two timed runs differ *only* in pipelining.
fn srm_sorter(case: &Case) -> SrmSorter {
    let config = if case.threads > 1 {
        SrmConfig {
            run_formation: RunFormation::ParallelMemoryLoad {
                fraction: 0.5,
                threads: case.threads,
            },
            ..SrmConfig::default()
        }
    } else {
        SrmConfig::default()
    };
    SrmSorter::new(config).with_read_ahead(case.depth)
}

/// Stage `data` on a fresh file array in `dir`, switch on the service
/// delay, time one sort, then return (sorted output, total elapsed,
/// formation elapsed, IoStats).  Trusted reads are on for both engines.
fn timed_sort(
    dir: &std::path::Path,
    geom: Geometry,
    delay: Duration,
    data: &[U64Record],
    case: &Case,
    pipeline: bool,
) -> (Vec<U64Record>, Duration, Duration, IoStats) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("bench dir");
    let mut array: FileDiskArray<U64Record> = FileDiskArray::create(geom, dir).expect("array");
    array.set_trusted_reads(true);
    let (output, elapsed, formation, io) = match case.algo {
        "srm" => {
            let input = write_unsorted_input(&mut array, data).expect("stage");
            array.set_io_delay(delay);
            array.reset_stats();
            let start = Instant::now();
            let formation = std::cell::Cell::new(Duration::ZERO);
            let (sorted, _) = srm_sorter(case)
                .with_pipeline(pipeline)
                .sort_observed(&mut array, &input, None, |pass, _a: &mut _| {
                    if pass == 0 {
                        formation.set(start.elapsed());
                    }
                    Ok(())
                })
                .expect("srm sort");
            let elapsed = start.elapsed();
            let io = array.stats();
            array.set_io_delay(Duration::ZERO);
            if pipeline && std::env::var_os("WALLCLOCK_DEBUG").is_some() {
                eprintln!(
                    "prefetch: {:?} / blocks_read {} ops r{} w{}",
                    array.prefetch_stats(),
                    io.blocks_read,
                    io.read_ops,
                    io.write_ops
                );
            }
            (
                read_run(&mut array, &sorted).expect("read output"),
                elapsed,
                formation.get(),
                io,
            )
        }
        "dsm" => {
            let input = write_unsorted_stripes(&mut array, data).expect("stage");
            array.set_io_delay(delay);
            array.reset_stats();
            let start = Instant::now();
            let (sorted, _) = DsmSorter::default()
                .with_pipeline(pipeline)
                .sort(&mut array, &input)
                .expect("dsm sort");
            let elapsed = start.elapsed();
            let io = array.stats();
            array.set_io_delay(Duration::ZERO);
            (
                read_logical_run(&mut array, &sorted).expect("read output"),
                elapsed,
                Duration::ZERO,
                io,
            )
        }
        other => panic!("unknown algo {other}"),
    };
    drop(array);
    let _ = std::fs::remove_dir_all(dir);
    (output, elapsed, formation, io)
}

fn run_case(case: Case, seed: u64, reps: usize) -> Outcome {
    let geom = Geometry::for_table(case.k, case.d, case.b).expect("geometry");
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<U64Record> = (0..case.records).map(|_| U64Record(rng.random())).collect();
    let delay = Duration::from_micros(case.io_delay_us);
    let base = std::env::temp_dir().join(format!(
        "srm-wallclock-{}-{}-{}-{}-{}",
        std::process::id(),
        case.algo,
        case.d,
        case.io_delay_us,
        case.depth
    ));

    // Interleave engines and keep each one's *minimum* over `reps`
    // repetitions: min-of-N filters host scheduling noise, which on a
    // shared machine easily exceeds the effect under measurement.  The
    // phase split follows the best pipelined repetition.
    let (serial_out, mut serial_t, _, serial_io) =
        timed_sort(&base, geom, delay, &data, &case, false);
    let (pipe_out, mut pipe_t, mut pipe_form, pipe_io) =
        timed_sort(&base, geom, delay, &data, &case, true);
    for _ in 1..reps {
        let (o, t, _, io) = timed_sort(&base, geom, delay, &data, &case, false);
        assert_eq!(o, serial_out, "serial output unstable across reps");
        assert_eq!(io, serial_io, "serial IoStats unstable across reps");
        serial_t = serial_t.min(t);
        let (o, t, form, io) = timed_sort(&base, geom, delay, &data, &case, true);
        assert_eq!(o, pipe_out, "pipelined output unstable across reps");
        assert_eq!(io, pipe_io, "pipelined IoStats unstable across reps");
        if t < pipe_t {
            pipe_t = t;
            pipe_form = form;
        }
    }

    let mut sorted = data.clone();
    sorted.sort_unstable_by_key(|r| r.0);
    assert_eq!(serial_out, sorted, "serial output unsorted or corrupt");

    // The headline case must also hold up in front of the invariant
    // checker: replay a traced pipelined sort (untimed, no delay), at
    // the case's full depth and thread count.
    let model_checked = if case.headline && case.algo == "srm" {
        let dir = base.with_extension("trace");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("trace dir");
        let file: FileDiskArray<U64Record> = FileDiskArray::create(geom, &dir).expect("array");
        let mut traced = TracingDiskArray::new(file);
        let input = write_unsorted_input(&mut traced, &data).expect("stage");
        srm_sorter(&case)
            .with_pipeline(true)
            .sort(&mut traced, &input)
            .expect("traced sort");
        let trace = traced.take_trace();
        modelcheck::check_trace(geom, &trace)
            .unwrap_or_else(|v| panic!("model-rule violation: {v}"));
        modelcheck::check_stats(&trace, &traced.stats())
            .unwrap_or_else(|v| panic!("trace/stats drift: {v}"));
        drop(traced);
        let _ = std::fs::remove_dir_all(&dir);
        true
    } else {
        false
    };

    let pipelined_ms = pipe_t.as_secs_f64() * 1e3;
    let formation_ms = pipe_form.as_secs_f64() * 1e3;
    Outcome {
        m: geom.m,
        serial_ms: serial_t.as_secs_f64() * 1e3,
        pipelined_ms,
        formation_ms,
        merge_ms: (pipelined_ms - formation_ms).max(0.0),
        stats_match: serial_io == pipe_io,
        output_match: serial_out == pipe_out,
        io: pipe_io,
        model_checked,
        case,
    }
}

/// Hand-rolled JSON (the bench crate carries no serde).
fn render_json(outcomes: &[Outcome], quick: bool, headline_speedup: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"pipeline\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"headline_speedup\": {headline_speedup:.4},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"algo\": \"{}\", \"d\": {}, \"b\": {}, \"m\": {}, \"records\": {}, \
             \"io_delay_us\": {}, \"depth\": {}, \"threads\": {}, \
             \"serial_ms\": {:.3}, \"pipelined_ms\": {:.3}, \
             \"formation_ms\": {:.3}, \"merge_ms\": {:.3}, \
             \"speedup\": {:.4}, \"read_ops\": {}, \"write_ops\": {}, \
             \"stats_match\": {}, \"output_match\": {}, \"headline\": {}, \
             \"model_checked\": {}}}{}\n",
            o.case.algo,
            o.case.d,
            o.case.b,
            o.m,
            o.case.records,
            o.case.io_delay_us,
            o.case.depth,
            o.case.threads,
            o.serial_ms,
            o.pipelined_ms,
            o.formation_ms,
            o.merge_ms,
            o.speedup(),
            o.io.read_ops,
            o.io.write_ops,
            o.stats_match,
            o.output_match,
            o.case.headline,
            o.model_checked,
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
