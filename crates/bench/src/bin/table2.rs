//! **Experiment T2** — Table 2 of the paper: the ratio `C_SRM/C_DSM`
//! computed from eq. (40)/(41) with `v` estimated as in Table 1
//! (`B = 1000`, `M = (2k+4)DB + kD²`).
//!
//! ```text
//! cargo run -p bench --release --bin table2 [-- --smoke --trials N --seed N]
//! ```

use analysis::paper;

fn main() {
    let args = bench::Args::parse();
    let trials = args.trials.unwrap_or(if args.smoke { 100 } else { 1000 });
    let seed = args.seed.unwrap_or(0x7AB1_E002);
    let (ks, ds): (Vec<usize>, Vec<usize>) = if args.smoke {
        (vec![5, 10, 20, 50], vec![5, 10, 50])
    } else {
        (paper::TABLE12_KS.to_vec(), paper::TABLE12_DS.to_vec())
    };
    println!("# Table 2: C_SRM/C_DSM with worst-case-expected v  (trials={trials}, seed={seed:#x})\n");
    let v = analysis::table1(&ks, &ds, trials, seed);
    let grid = analysis::table2(&v);
    let reference: Vec<&[f64]> = paper::TABLE2
        .iter()
        .take(ks.len())
        .map(|r| &r[..ds.len()])
        .collect();
    bench::print_comparison("Table 2 — C_SRM/C_DSM", &grid, &reference, 2);
    let below_one = grid.cells.iter().flatten().all(|&x| x < 1.0);
    println!(
        "SRM beats DSM in every cell: {}",
        if below_one { "yes" } else { "NO — check" }
    );
}
