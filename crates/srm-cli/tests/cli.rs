//! End-to-end tests of the `srm` binary via `std::process`.

use std::process::{Command, Output};

fn srm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srm"))
        .args(args)
        .output()
        .expect("spawn srm binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    for args in [&["help"][..], &["--help"][..], &[][..]] {
        let out = srm(args);
        assert!(out.status.success());
        assert!(stdout(&out).contains("USAGE"));
        assert!(stdout(&out).contains("srm sort"));
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = srm(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn sort_both_algorithms_mem_backend() {
    let out = srm(&[
        "sort", "--records", "20000", "--d", "2", "--b", "8", "--k", "2", "--algo", "both",
        "--seed", "7",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("SRM: sorted & verified"));
    assert!(text.contains("DSM: sorted & verified"));
    assert!(text.contains("merge order"));
    assert!(text.contains("memory partition"));
    assert!(text.contains("overlapped"));
}

#[test]
fn sort_file_backend_cleans_up() {
    let dir = std::env::temp_dir().join(format!("srm-cli-test-{}", std::process::id()));
    let out = srm(&[
        "sort", "--records", "5000", "--d", "2", "--b", "8", "--k", "2", "--algo", "srm",
        "--backend", "file", "--dir", dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("file backend"));
    assert!(!dir.exists(), "directory must be removed without --keep");
}

#[test]
fn sort_staggered_replacement_selection() {
    let out = srm(&[
        "sort", "--records", "8000", "--d", "3", "--b", "8", "--k", "2", "--algo", "srm",
        "--placement", "staggered", "--formation", "rs",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("SRM: sorted & verified"));
}

#[test]
fn occupancy_subcommand() {
    let out = srm(&["occupancy", "--k", "5", "--d", "10", "--trials", "200"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("v(5, 10)"));
    assert!(text.contains("rho*"));
}

#[test]
fn occupancy_requires_k_and_d() {
    let out = srm(&["occupancy", "--d", "10"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--k"));
}

#[test]
fn simulate_subcommand() {
    let out = srm(&[
        "simulate", "--k", "2", "--d", "4", "--blocks", "50", "--trials", "1",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("simulated v(2, 4)"));
}

#[test]
fn bad_flag_value_reports_cleanly() {
    let out = srm(&["sort", "--records", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--records"));
}
