//! End-to-end drills of `srm distsort` as a subprocess, including the
//! `--procs` path where shard nodes are real child processes and the
//! kill drill is a genuine SIGKILL, plus the `srm client` connect-retry
//! contract against a late-starting server.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_srm"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-distcli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Run `srm distsort` with the shared small workload plus `extra`
/// flags; returns captured output after asserting a zero exit.
fn distsort(name: &str, extra: &[&str]) -> String {
    let dir = scratch(name);
    let mut cmd = bin();
    cmd.args([
        "distsort", "--shards", "2", "--records", "4000", "--d", "2", "--b", "8", "--m", "256",
        "--seed", "42",
    ]);
    cmd.arg("--dir").arg(&dir);
    cmd.args(extra);
    let out = cmd.output().expect("run srm distsort");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        out.status.success(),
        "distsort {extra:?} failed\nstdout: {}\nstderr: {}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    stdout(&out)
}

/// Pull the `global digest 0x...` value out of the report text.
fn digest(report: &str) -> String {
    report
        .lines()
        .find_map(|l| l.trim().strip_prefix("global digest "))
        .and_then(|rest| rest.split(':').next())
        .unwrap_or_else(|| panic!("no digest line in report:\n{report}"))
        .to_string()
}

#[test]
fn distsort_thread_and_procs_modes_agree() {
    let threads = distsort("threads", &[]);
    assert!(threads.contains("matches the central oracle"), "{threads}");
    assert!(threads.contains("thread mode"), "{threads}");

    let procs = distsort("procs", &["--procs"]);
    assert!(procs.contains("matches the central oracle"), "{procs}");
    assert!(procs.contains("process mode"), "{procs}");

    assert_eq!(
        digest(&threads),
        digest(&procs),
        "both execution modes must produce the identical global output"
    );
}

/// The headline drill: `--procs --kill-node` SIGKILLs a real child
/// process mid-sort; the respawned replacement resumes from its
/// checkpoint and the output is byte-identical to the clean run.
#[test]
fn procs_mode_sigkill_drill_is_byte_identical() {
    let clean = distsort("procs-clean", &["--procs"]);
    let killed = distsort("procs-kill", &["--procs", "--kill-node", "1@1"]);
    assert!(killed.contains("matches the central oracle"), "{killed}");
    assert!(
        killed.contains("recoveries: 1 total"),
        "the drill must cause exactly one recovery:\n{killed}"
    );
    assert_eq!(digest(&clean), digest(&killed));
}

#[test]
fn distsort_kill_requires_valid_shard() {
    let dir = scratch("badkill");
    let out = bin()
        .args([
            "distsort", "--shards", "2", "--records", "100", "--kill-node", "9@0",
        ])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("run srm distsort");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("out of range"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Satellite drill: a client racing a still-booting server.  The
/// client is launched against a port nobody is listening on yet; the
/// server binds that port ~200 ms later.  With connect retries the
/// client must win anyway.
#[test]
fn client_retries_until_late_server_appears() {
    // Reserve a free port, then release it so the server can bind it.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        listener.local_addr().expect("local addr").port()
    };

    let client = bin()
        .args([
            "client",
            "--port",
            &port.to_string(),
            "--send",
            "PING",
            "--connect-retries",
            "40",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn srm client");

    // Let the client eat a few connection-refused rounds first.
    std::thread::sleep(Duration::from_millis(200));

    let root = scratch("lateserver");
    std::fs::create_dir_all(&root).expect("create server dir");
    let mut server = bin()
        .args(["serve", "--workers", "1", "--port", &port.to_string()])
        .arg("--dir")
        .arg(&root)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn srm serve");
    let mut reader = BufReader::new(server.stdout.take().expect("server stdout"));
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read server stdout") == 0 {
            panic!("server exited before listening");
        }
        if line.contains("listening on") {
            break;
        }
    }
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });

    let out = client.wait_with_output().expect("client exits");
    assert_eq!(
        out.status.code(),
        Some(0),
        "client stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout(&out).contains("OK pong"),
        "client stdout: {}",
        stdout(&out)
    );

    server.kill().expect("stop server");
    server.wait().expect("reap server");
    let _ = std::fs::remove_dir_all(&root);
}

/// Without a server ever appearing, the retry loop must give up with a
/// typed complaint that names the attempt budget.
#[test]
fn client_gives_up_after_retry_budget() {
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        listener.local_addr().expect("local addr").port()
    };
    let out = bin()
        .args([
            "client",
            "--port",
            &port.to_string(),
            "--send",
            "PING",
            "--connect-retries",
            "2",
        ])
        .output()
        .expect("run srm client");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2 attempts"), "stderr: {err}");
}
