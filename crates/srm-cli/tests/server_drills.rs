//! End-to-end drills of the `srm` binary itself, as subprocesses:
//!
//! * the graceful-interrupt contract of `srm sort` — interrupt at a
//!   pass boundary, exit 130 with the checkpoint journaled, resume on
//!   rerun and finish byte-identically;
//! * the crash-recovery contract of `srm serve` — `kill -9` mid-run,
//!   restart on the same job store, every unfinished job resumes and
//!   completes with the digest an uninterrupted sort would produce.

use srm_server::{expected_digest, JobSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_srm"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-drill-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_for(mut done: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn sort_interrupt_exits_130_and_rerun_resumes() {
    let root = scratch("interrupt");
    let disks = root.join("disks");
    let manifest = root.join("manifest");
    let run = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.args([
            "sort", "--records", "2000", "--d", "2", "--b", "4", "--m", "96", "--algo", "srm",
            "--backend", "file", "--keep",
        ]);
        cmd.arg("--dir").arg(&disks);
        cmd.arg("--resume").arg(&manifest);
        cmd.args(extra);
        cmd.output().expect("run srm sort")
    };

    // The hidden test hook trips the same flag a SIGINT would; the CLI
    // must exit 130 (= 128 + SIGINT) with the checkpoint journaled.
    let out = run(&["--interrupt-after-pass", "1"]);
    assert_eq!(
        out.status.code(),
        Some(130),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checkpoint journaled"),
        "stderr should point at the resume path"
    );
    assert!(manifest.exists(), "interrupt must leave a manifest behind");

    // Rerunning with the same flags resumes from the boundary and
    // finishes; the retired manifest is the proof the sort completed.
    let out = run(&[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("resuming from"), "stdout: {text}");
    assert!(text.contains("sorted & verified"), "stdout: {text}");
    assert!(!manifest.exists(), "completion must retire the manifest");
    let _ = std::fs::remove_dir_all(&root);
}

/// Spawn `srm serve` on `dir` and return the child plus the ephemeral
/// port parsed from its `listening on` line.  A drain thread keeps the
/// stdout pipe from filling up.
fn spawn_server(dir: &PathBuf, io_delay_us: &str) -> (Child, u16) {
    let mut child = bin()
        .args(["serve", "--workers", "2", "--io-delay-us", io_delay_us])
        .arg("--dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn srm serve");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    let port = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read server stdout") == 0 {
            panic!("server exited before announcing its port");
        }
        if let Some(rest) = line.trim().strip_prefix("listening on 127.0.0.1:") {
            break rest.parse().expect("parse port");
        }
    };
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    (child, port)
}

/// One request over a fresh connection; returns every response line.
fn request(port: u16, line: &str) -> Vec<String> {
    let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to server");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(format!("{line}\nQUIT\n").as_bytes())
        .expect("send request");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read response"))
        .collect()
}

/// Pull `key=` out of a response line of `key=value` fields.
fn field(line: &str, key: &str) -> Option<String> {
    line.split_whitespace()
        .find_map(|part| part.strip_prefix(&format!("{key}=")).map(str::to_string))
}

#[test]
fn server_killed_dash_nine_resumes_every_job_on_restart() {
    let root = scratch("kill9");
    let seeds: [u64; 3] = [11, 12, 13];
    let spec_for = |seed: u64| JobSpec {
        records: 1500,
        seed,
        d: 2,
        b: 4,
        m: 96,
        ..JobSpec::default()
    };

    // Phase 1: a deliberately slow server (per-I/O delay) so SIGKILL
    // lands while jobs are genuinely mid-sort.
    let (mut child, port) = spawn_server(&root, "500");
    for seed in seeds {
        let resp = request(port, &format!("SUBMIT records=1500 d=2 b=4 m=96 seed={seed}"));
        assert!(
            resp.first().is_some_and(|l| l.starts_with("OK id=")),
            "submit response: {resp:?}"
        );
    }
    wait_for(
        || {
            let stats = request(port, "STATS");
            stats.first().and_then(|l| field(l, "running")) == Some("2".into())
        },
        "two jobs running",
    );
    std::thread::sleep(Duration::from_millis(200));

    // SIGKILL: no drain, no checkpoint-on-exit — whatever the last pass
    // boundary journaled is all the restart gets.
    child.kill().expect("kill -9 the server");
    child.wait().expect("reap the server");

    // Phase 2: restart on the same job store at full speed.  The stale
    // lock names a dead pid, so the new server claims the store, re-runs
    // every unfinished job from its manifest (or from scratch if the
    // kill landed before the first snapshot), and finishes them all.
    let (mut child, port) = spawn_server(&root, "0");
    wait_for(
        || {
            let stats = request(port, "STATS");
            stats.first().and_then(|l| field(l, "done")) == Some("3".into())
        },
        "all three jobs done after restart",
    );

    // Byte-identity proxy: each job's digest equals the digest of the
    // sorted input computed independently in host memory.
    for (id, seed) in seeds.iter().enumerate() {
        let resp = request(port, &format!("STATUS {}", id + 1));
        let line = resp.first().expect("status line");
        assert_eq!(field(line, "state").as_deref(), Some("done"), "{line}");
        let want = expected_digest(&spec_for(*seed)).to_string();
        assert_eq!(field(line, "digest"), Some(want), "{line}");
    }

    // Drain through the one-shot client binary for coverage of
    // `srm client`, then the server must exit 0.
    let out = bin()
        .args(["client", "--port", &port.to_string(), "--send", "DRAIN"])
        .output()
        .expect("run srm client");
    assert_eq!(
        out.status.code(),
        Some(0),
        "client stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK draining"));
    let status = child.wait().expect("server exits after drain");
    assert_eq!(status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&root);
}
