//! Subcommand implementations.

use crate::args::Flags;
use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::trace::TracingDiskArray;
use pdisk::{
    ArrayTiming, CrashClock, CrashingDiskArray, DiskArray, DiskId, DiskModel, FaultModel,
    FaultyDiskArray, FileDiskArray, Geometry, InterruptFlag, MemDiskArray, ParityDiskArray, Record,
    RetryPolicy, RetryingDiskArray, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::simulator::{estimate_overhead_v, SimPlacement};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, Placement, RunFormation, SrmSorter};
use srm_server::{EngineKind, JobServer, JobSpec, ServerConfig};
use std::path::Path;

/// CLI-level error: either a message for stderr (exit 2) or a graceful
/// interruption (exit 130 = 128 + SIGINT, the shell convention), which
/// is *not* a failure — the checkpoint is journaled and a rerun with the
/// same flags resumes byte-identically.
enum CliError {
    Msg(String),
    Interrupted(Option<std::path::PathBuf>),
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Msg(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Msg(m.into())
    }
}

/// Exit code for a graceful interrupt (`128 + SIGINT`).
pub const EXIT_INTERRUPTED: i32 = 130;

/// Top-level usage text.
pub const USAGE: &str = "\
srm — Simple Randomized Mergesort on parallel disks (SPAA '96 reproduction)

USAGE:
  srm sort [--records N] [--d D] [--b B] [--k K | --m M] [--algo srm|dsm|both]
           [--backend mem|file] [--dir PATH] [--seed S]
           [--placement random|staggered] [--formation load|parload|rs]
           [--threads N] [--pipeline] [--read-ahead K] [--keep]
           [--fault-rate R] [--fault-seed S] [--resume MANIFEST]
           [--parity] [--kill-disk D@PASS] [--slow-disk D:F[,D:F...]]
           [--hedge-after MULT] [--check-model]
           [--crash-at K] [--crash-points]
      Generate N random records, stage them on the simulated disk array,
      sort, verify, and print the I/O accounting (one parallel operation
      moves up to one block per disk) plus estimated wall times under a
      1996-era disk model and an SSD model.

      --pipeline switches both sorters to the split-phase engine: the
      next scheduled read is in flight while the merge drains the
      current buffers, and output stripes are written behind the merge
      (DESIGN.md §9).  The operation sequence, I/O accounting, and
      output bytes are identical to the blocking engine — only the
      waiting overlaps — so --check-model and --resume work unchanged.
      --read-ahead K additionally hints the next K forecast-predicted
      blocks per disk to the backend as speculative reads (DESIGN.md
      §14; SRM pipelined engine only, default 0).
      --threads N sizes parallel run formation (and implies
      --formation parload when --formation is not given).

      --fault-rate R injects transient faults on reads and writes with
      per-disk probability R (0 <= R < 1, seeded by --fault-seed) and
      absorbs them with the bounded-retry wrapper; retry counts appear in
      the I/O line.  --resume MANIFEST checkpoints the sort to MANIFEST
      after every pass and, when the file already exists, resumes from it
      (with --backend file the disk files are reopened, not truncated —
      a killed sort picks up from its last completed pass).

      --parity adds rotating-parity redundancy (RAID-5 style): the array
      survives one permanent disk death, serving the dead disk's blocks by
      reconstruction from the surviving disks (reconstruction reads and
      parity writes are counted separately so the logical schedule stays
      comparable).  --kill-disk D@PASS is the failure drill: disk D dies
      permanently right after pass PASS (0 = run formation) and the sort
      completes degraded, byte-identical to the failure-free run.
      --slow-disk D:F marks disk D as F times slower than nominal;
      --hedge-after MULT (default 4) reads around any disk at least
      MULT times slower than the fastest via parity reconstruction
      instead of waiting for it.  Checkpoint manifests record the parity
      geometry and dead-disk set, so --resume works from a degraded
      array.  --kill-disk, --slow-disk, and --hedge-after require
      --parity.

      --crash-points numbers every I/O boundary of the SRM sort with a
      counting crash clock and reports the total N after success;
      --crash-at K then kills the process state at boundary K exactly
      (including torn parallel writes where only a prefix of the stripe
      lands) and exits nonzero.  Rerun without --crash-at (keeping
      --resume MANIFEST and, with --backend file, the same --dir) to
      recover from the last durable checkpoint.  Both flags apply to the
      SRM sort only (--algo srm) and cannot be combined with --kill-disk.

      --check-model records the structured I/O trace of each sort and
      replays it through the modelcheck invariant checker (one block per
      disk per parallel I/O, forecast-minimal fetching, flush discipline,
      buffer budgets, striped output runs, parity placement — DESIGN.md
      §8).  Any violation aborts with a typed, located error naming the
      pass, disk, and block involved.

      Ctrl-C (SIGINT) or SIGTERM interrupts the sort gracefully: with
      --resume MANIFEST the current pass finishes, the checkpoint is
      journaled, and the process exits with code 130; rerunning with the
      same flags resumes byte-identically from that boundary.  (The
      hidden --interrupt-after-pass K flag trips the same path from
      tests without a signal.)

  srm occupancy --k K --d D [--trials N] [--seed S]
      Estimate Table 1's overhead v(k, D) = C(kD, D)/k by ball-throwing.

  srm simulate --k K --d D [--blocks L] [--trials N] [--seed S]
           [--placement random|staggered]
      Estimate Table 3's overhead v(k, D) by simulating the SRM merge of
      kD runs of L blocks on average-case input.

  srm scrub --dir PATH --manifest MANIFEST [--parity]
      Walk every live run recorded in a sort's checkpoint manifest,
      verify block checksums, and (with --parity) self-heal latent
      corruption by parity reconstruction.  Geometry and the dead-disk
      set come from the manifest; disk files are reopened from --dir.
      Exits 0 when every block verified clean or was repaired, 1 when
      any block is unrepairable.

  srm crash-matrix [--records N] [--d D] [--b B] [--k K | --m M]
           [--seed S] [--pipeline] [--read-ahead K] [--parity]
           [--backend mem|file] [--dir PATH] [--no-check]
      Exhaustive crash-point exploration: dry-run a small checkpointed
      sort to number its N I/O boundaries, then for every K in 0..N
      crash at boundary K, reboot (only the disks and sidecar files
      survive), recover, and require byte-identical sorted output.
      Each recovery's own I/O trace is replayed through the model
      checker unless --no-check is given.

  srm serve --dir PATH [--port P] [--capacity M] [--workers N]
           [--queue-depth Q] [--io-delay-us U] [--check-model]
           [--store-nospace-after N]
      Sort-as-a-service: a job server on a loopback TCP line protocol.
      Jobs are priced by their Definition-3 memory partition and admitted
      only while the sum of running budgets fits --capacity (records of
      server memory M); the wait queue is bounded by --queue-depth and
      SUBMIT is refused explicitly beyond either limit.  Every job lives
      in a durable directory under --dir, checkpointing after each merge
      pass.  SIGINT/SIGTERM (or the DRAIN verb) drain gracefully: stop
      admitting, checkpoint every running job at its next pass boundary,
      exit; a restarted server on the same --dir resumes every
      unfinished job byte-identically.  --port 0 (default) picks an
      ephemeral port, announced as `listening on ADDR`.
      --store-nospace-after N is a chaos-drill hook: the job store's
      disk reports ENOSPC after N record-writes, so the overflowing
      SUBMIT is refused with the typed `no-space` admission error while
      the server keeps serving (no wedged slot, clean drain).

      Protocol verbs, one request per line:
        SUBMIT key=value ...   (records=N d=D b=B m=M engine=srm|dsm
                                seed=S deadline-ms=T fault-rate=R ...)
        STATUS ID | WATCH ID | CANCEL ID | LIST | STATS | DRAIN |
        PING | QUIT

  srm client --port P --send \"REQUEST\" [--connect-retries N]
      One-shot client for `srm serve`: sends REQUEST, prints the
      response lines (WATCH streams until the job settles), exits 1 if
      the server answered with an error.  Connection refused/reset is
      retried up to N times (default 8) with capped exponential
      backoff, so a client racing a still-booting server wins.

  srm distsort [--shards P] [--records N] [--d D] [--b B] [--m M]
           [--seed S] [--pipeline] [--placement random|staggered]
           [--parity] [--dir PATH] [--keep] [--procs]
           [--heartbeat-ms H] [--timeout-ms T] [--io-delay-us U]
           [--kill-node S@PASS | --kill-node S@merge:K]
           [--corrupt-disk D] [--net-seed S] [--net-drop R]
           [--net-dup R] [--net-delay R] [--net-max-delay K]
           [--partition NODE:FROM:UNTIL]
      Distributed sort that survives node death: a coordinator samples
      P-1 splitters, routes records to P shard nodes over a
      fault-injectable message channel, each shard runs a checkpointed
      SRM sort over its own disk cluster (traces model-checked), and a
      striped cross-shard merge produces the global output.  Shards are
      threads by default; --procs spawns real `srm` child processes so
      the node-death drill is a genuine SIGKILL.  A heartbeat failure
      detector (--heartbeat-ms / --timeout-ms) declares silent nodes
      dead, fences the old epoch (its in-flight I/O fails, its stale
      messages are discarded), and boots a replacement that resumes
      from the shard's last checkpoint manifest.  --kill-node S@PASS is
      the drill: kill shard S at pass boundary PASS (or S@merge:K after
      K merge blocks served); with --parity, --corrupt-disk D also
      trashes disk D of the victim's cluster so the replacement must
      rebuild from parity before resuming.  The merge degrades
      gracefully: it stalls on a dead shard and resumes when the
      replacement serves again.  --net-* and --partition inject seeded
      channel faults (drop/duplicate/delay/partition windows).  The
      final digest is checked against a centrally sorted oracle; any
      mismatch exits nonzero.

  srm chaos [--target local|distsort|server|all] [--seed S] [--trials N]
           [--records N] [--d D] [--b B] [--m M] [--pipeline]
           [--read-ahead K] [--shards P] [--jobs J] [--no-minimize]
           [--plant-bug] [--dir PATH] [--keep]
  srm chaos --replay FILE [--dir PATH] [--expect-violation CODE]
      Chaos campaign engine: N trials, each drawing a seeded randomized
      fault schedule that composes the workspace's injectors —
      transient/permanent/corruption disk faults, disk-full (ENOSPC),
      fsync failure, crash points, interrupts, network
      drop/dup/delay/partition, node kills, server kill -9 — and
      running it against the chosen target: `local` (the in-process
      checkpointed sort behind the full tracing/crash/retry/parity
      stack), `distsort` (the sharded sort with failure detection), or
      `server` (a real `srm serve` child on a durable store, killed
      with SIGKILL and restarted).  After every trial a standing oracle
      checks: output identical to the failure-free run, model-checker-
      clean traces, no panic, no unexpected error, no wedged recovery,
      no leaked temp or journal files.  Schedules are a pure function
      of (target, seed, trial): reruns are bit-identical.

      On a violation the delta-debugging minimizer shrinks the
      schedule to a 1-minimal failing subset and writes a
      deterministic reproducer (chaos-repro-N.json) into --dir;
      `srm chaos --replay FILE` re-executes it exactly, and
      --expect-violation CODE makes the replay exit 0 only when it
      reproduces that violation (for CI regression fixtures).
      --plant-bug arms a deliberate retry-classification bug (ENOSPC
      relabelled transient, so recovery spins) — the engine's own
      end-to-end fixture: the campaign must catch it, shrink it to the
      single disk-full event, and replay it.  Exit 0 iff the campaign
      had zero violations.

  srm help
      This text.
";

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// `srm sort`
pub fn sort(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), CliError> {
        let records: u64 = flags.get_or("records", 1_000_000)?;
        let d: usize = flags.get_or("d", 4)?;
        let b: usize = flags.get_or("b", 64)?;
        let seed: u64 = flags.get_or("seed", 0xC11_5EED)?;
        let geom = match flags.get::<usize>("m")? {
            Some(m) => Geometry::new(d, b, m).map_err(|e| e.to_string())?,
            None => {
                let k: usize = flags.get_or("k", 4)?;
                Geometry::for_table(k, d, b).map_err(|e| e.to_string())?
            }
        };
        let algo = flags.get_str("algo").unwrap_or("both");
        let backend = flags.get_str("backend").unwrap_or("mem");
        let placement = match flags.get_str("placement").unwrap_or("random") {
            "random" => Placement::Random,
            "staggered" => Placement::Staggered,
            other => return Err(format!("unknown placement `{other}`").into()),
        };
        // `--threads N` alone opts into parallel run formation.
        let threads: Option<usize> = flags.get("threads")?;
        let default_formation = if threads.is_some() { "parload" } else { "load" };
        let formation = match flags.get_str("formation").unwrap_or(default_formation) {
            "load" => RunFormation::MemoryLoad { fraction: 0.5 },
            "parload" => RunFormation::ParallelMemoryLoad {
                fraction: 0.5,
                threads: threads.unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(4, |p| p.get())
                }),
            },
            "rs" => RunFormation::ReplacementSelection,
            other => return Err(format!("unknown formation `{other}`").into()),
        };
        let pipeline = flags.has("pipeline");
        let read_ahead: usize = flags.get_or("read-ahead", 0)?;
        let fault_rate: f64 = flags.get_or("fault-rate", 0.0)?;
        if !(0.0..1.0).contains(&fault_rate) {
            return Err(format!("--fault-rate {fault_rate} outside [0, 1)").into());
        }
        let fault_seed: u64 = flags.get_or("fault-seed", 0xFA_017)?;
        let resume = flags.get_str("resume").map(std::path::PathBuf::from);
        let check_model = flags.has("check-model");

        // Crash drills: a counting clock numbers the boundaries, an
        // armed clock kills the process state at one of them.
        let crash_at: Option<u64> = flags.get("crash-at")?;
        let crash_points = flags.has("crash-points");
        let crash = match crash_at {
            Some(kk) => Some(CrashClock::crash_at(kk)),
            None if crash_points => Some(CrashClock::counting()),
            None => None,
        };

        let parity = flags.has("parity");
        let kill = flags.get_str("kill-disk").map(parse_kill_spec).transpose()?;
        let slow = flags
            .get_str("slow-disk")
            .map(parse_slow_spec)
            .transpose()?
            .unwrap_or_default();
        let hedge_after: f64 = flags.get_or("hedge-after", 4.0)?;
        if !parity && (kill.is_some() || !slow.is_empty() || flags.get_str("hedge-after").is_some())
        {
            return Err("--kill-disk, --slow-disk, and --hedge-after require --parity".into());
        }
        if parity && geom.d < 2 {
            return Err("--parity needs at least 2 disks".into());
        }
        if hedge_after <= 0.0 {
            return Err(format!("--hedge-after {hedge_after} must be positive").into());
        }
        for disk in kill.iter().map(|&(d, _)| d).chain(slow.iter().map(|&(d, _)| d)) {
            if disk as usize >= geom.d {
                return Err(format!("disk {disk} out of range for D={}", geom.d).into());
            }
        }
        let popts = parity.then_some(ParityOpts {
            kill,
            slow,
            hedge_after,
        });
        if crash.is_some() {
            if algo != "srm" {
                return Err("--crash-at / --crash-points require --algo srm".into());
            }
            if popts.as_ref().is_some_and(|p| p.kill.is_some()) {
                return Err("--crash-at / --crash-points cannot be combined with --kill-disk".into());
            }
        }

        println!(
            "geometry: D={} disks, B={} records/block, M={} records ({} blocks of memory)",
            geom.d,
            geom.b,
            geom.m,
            geom.memory_blocks()
        );
        if let Ok(budget) = analysis::MemoryBudget::for_geometry(geom) {
            println!("SRM memory partition (Definition 3): {}", budget.render());
        }
        println!("input: {records} random u64 records (seed {seed:#x})\n");
        // One construction path everywhere: the CLI builds the same
        // JobSpec the job server and the crash-matrix harness use, so
        // `srm sort`, `srm serve`, and `srm crash-matrix` can never
        // drift in how they wire a sorter or generate input.
        let spec = JobSpec {
            engine: EngineKind::Srm,
            records,
            seed,
            d: geom.d,
            b: geom.b,
            m: geom.m,
            placement,
            formation,
            pipeline,
            read_ahead,
            fault_rate,
            fault_seed,
            ..JobSpec::default()
        };
        let data = spec.input_records();

        // Graceful interruption: SIGINT/SIGTERM (or the test hook
        // --interrupt-after-pass K) trip this flag; the sorter stops at
        // the next pass boundary *after* journaling its checkpoint, and
        // the process exits with code 130.  Without --resume there is no
        // manifest to journal, so the sort simply stops early.
        let interrupt = InterruptFlag::new();
        srm_repro::signals::install();
        srm_repro::signals::watch(interrupt.clone(), || false);
        let trip: Option<(InterruptFlag, u64)> = flags
            .get::<u64>("interrupt-after-pass")?
            .map(|k| (interrupt.clone(), k));

        if algo == "srm" || algo == "both" {
            let sorter = spec.srm_sorter().with_interrupt(interrupt.clone());
            if pipeline {
                println!("engine: pipelined (split-phase reads + write-behind)");
            }
            match backend {
                "mem" => {
                    let array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                    srm_with_faults(
                        array,
                        &data,
                        sorter.clone(),
                        geom,
                        fault_rate,
                        fault_seed,
                        resume.as_deref(),
                        popts.as_ref(),
                        None,
                        check_model,
                        crash.clone(),
                        trip.clone(),
                    )?;
                }
                "file" => {
                    let dir = flags
                        .get_str("dir")
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| {
                            std::env::temp_dir().join(format!("srm-cli-{}", std::process::id()))
                        });
                    println!("file backend at {}", dir.display());
                    // Resuming from a manifest means the disk files hold
                    // prior progress: reopen them instead of truncating.
                    // The generation-aware load also accepts a torn
                    // current manifest whose journaled predecessor is
                    // still valid.
                    let resuming = match resume.as_deref() {
                        Some(path) => srm_core::SortManifest::load_latest(path)
                            .map_err(|e| e.to_string())?
                            .is_some(),
                        None => false,
                    };
                    let array: FileDiskArray<U64Record> = if resuming {
                        println!("resuming from {}", resume.as_deref().unwrap().display());
                        FileDiskArray::open(geom, &dir).map_err(|e| e.to_string())?
                    } else {
                        FileDiskArray::create(geom, &dir).map_err(|e| e.to_string())?
                    };
                    // Parity frames persist next to the disk files so a
                    // degraded sort can be resumed after a crash.  A
                    // fresh sort truncates the disks, so any sidecar
                    // left by an earlier (crashed) run is stale and
                    // must go with them.
                    let store = popts.as_ref().map(|_| dir.join("parity.store"));
                    if !resuming {
                        if let Some(s) = &store {
                            let _ = std::fs::remove_file(s);
                        }
                    }
                    srm_with_faults(
                        array,
                        &data,
                        sorter,
                        geom,
                        fault_rate,
                        fault_seed,
                        resume.as_deref(),
                        popts.as_ref(),
                        store.as_deref(),
                        check_model,
                        crash.clone(),
                        trip.clone(),
                    )?;
                    if !flags.has("keep") {
                        let _ = std::fs::remove_dir_all(&dir);
                    } else {
                        println!("disk files kept at {}", dir.display());
                    }
                }
                other => return Err(format!("unknown backend `{other}`").into()),
            }
            if crash_points {
                if let Some(c) = &crash {
                    println!("crash boundaries numbered: {} (explore with --crash-at 0..{})",
                        c.points(), c.points());
                }
            }
        }
        if algo == "dsm" || algo == "both" {
            if backend != "mem" {
                println!("(DSM runs on the in-memory backend)");
            }
            let array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            dsm_with_faults(
                array,
                &data,
                spec.dsm_sorter().with_interrupt(interrupt.clone()),
                geom,
                fault_rate,
                fault_seed,
                popts.as_ref(),
                check_model,
            )?;
        }
        if algo != "srm" && algo != "dsm" && algo != "both" {
            return Err(format!("unknown algo `{algo}`").into());
        }
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(CliError::Interrupted(manifest)) => {
            match manifest {
                Some(m) => eprintln!(
                    "interrupted: checkpoint journaled; rerun with the same flags to resume from {}",
                    m.display()
                ),
                None => eprintln!(
                    "interrupted: no --resume manifest, so nothing was checkpointed; rerun to start over"
                ),
            }
            EXIT_INTERRUPTED
        }
        Err(CliError::Msg(e)) => fail(e),
    }
}

fn print_io(label: &str, io: &pdisk::IoStats, geom: Geometry, cpu: std::time::Duration) {
    println!("  {label}: {io}");
    for (name, model) in [
        ("1996 HDD array", DiskModel::hdd_1996()),
        ("modern SSD array", DiskModel::ssd()),
    ] {
        let bytes = geom.b * U64Record::ENCODED_LEN;
        let t = model.estimate(io, bytes);
        println!(
            "    {name}: {:.2}s I/O ({:.1} MB/s); with compute overlapped {:.2}s, serialized {:.2}s",
            t.as_secs_f64(),
            model.achieved_bandwidth(io, bytes),
            model.overlapped_estimate(io, bytes, cpu).as_secs_f64(),
            model.serial_estimate(io, bytes, cpu).as_secs_f64(),
        );
    }
}

/// Redundancy drill options parsed from `--parity` and friends.
#[derive(Debug, Clone)]
struct ParityOpts {
    /// `--kill-disk D@PASS`: disk D dies permanently right after PASS.
    kill: Option<(u32, u64)>,
    /// `--slow-disk D:F`: per-disk slowdown factors.
    slow: Vec<(u32, f64)>,
    /// `--hedge-after MULT`: hedge reads off disks this much slower than
    /// the fastest.
    hedge_after: f64,
}

fn parse_kill_spec(s: &str) -> Result<(u32, u64), String> {
    let (d, pass) = s
        .split_once('@')
        .ok_or_else(|| format!("--kill-disk {s}: expected D@PASS"))?;
    Ok((
        d.parse().map_err(|_| format!("--kill-disk {s}: bad disk id"))?,
        pass.parse()
            .map_err(|_| format!("--kill-disk {s}: bad pass number"))?,
    ))
}

fn parse_slow_spec(s: &str) -> Result<Vec<(u32, f64)>, String> {
    s.split(',')
        .map(|part| {
            let (d, f) = part
                .split_once(':')
                .ok_or_else(|| format!("--slow-disk {part}: expected D:FACTOR"))?;
            let disk: u32 = d.parse().map_err(|_| format!("--slow-disk {part}: bad disk id"))?;
            let factor: f64 = f.parse().map_err(|_| format!("--slow-disk {part}: bad factor"))?;
            if factor < 1.0 {
                return Err(format!("--slow-disk {part}: factor must be >= 1"));
            }
            Ok((disk, factor))
        })
        .collect()
}

/// The fully protected stack, bottom to top: scriptable faults, rotating
/// parity, bounded retry (see `pdisk` docs for why this order).
type ProtectedStack<A> =
    RetryingDiskArray<U64Record, ParityDiskArray<U64Record, FaultyDiskArray<U64Record, A>>>;

/// Pass-boundary callback handed down to the sorter (the `--kill-disk`
/// injection point).
type SrmObserver<'a, A> = Option<Box<dyn FnMut(u64, &mut A) -> srm_core::Result<()> + 'a>>;
type DsmObserver<'a, A> = Option<Box<dyn FnMut(u64, &mut A) -> Result<(), dsm::DsmError> + 'a>>;

/// Build the parity layer for either sorter: wrap `array` in fault
/// injection + rotating parity, attach the sidecar store, configure
/// hedging, and re-mark any disks a resumed manifest recorded as dead.
#[allow(clippy::too_many_arguments)]
fn build_parity_stack<A: DiskArray<U64Record>>(
    array: A,
    geom: Geometry,
    fault_rate: f64,
    fault_seed: u64,
    opts: &ParityOpts,
    store: Option<&Path>,
    dead_from_manifest: &[DiskId],
    crash: Option<&CrashClock>,
) -> Result<ProtectedStack<A>, String> {
    println!(
        "parity: rotating parity over {} disks ({} of every {} blocks usable); survives one disk death",
        geom.d,
        geom.d - 1,
        geom.d
    );
    let faulty = FaultyDiskArray::new(array, FaultModel::random(fault_seed).with_rate(fault_rate));
    let mut pa = ParityDiskArray::new(faulty).map_err(|e| e.to_string())?;
    if let Some(path) = store {
        pa = pa.with_store(path).map_err(|e| e.to_string())?;
    }
    if !opts.slow.is_empty() {
        let mut timing = ArrayTiming::uniform(DiskModel::hdd_modern(), geom.d);
        for &(disk, f) in &opts.slow {
            println!(
                "straggler: disk {disk} at {f}x nominal service time (hedging reads past {}x the fastest)",
                opts.hedge_after
            );
            timing = timing.with_slowdown(DiskId(disk), f);
        }
        pa.set_hedging(timing, opts.hedge_after);
    }
    for &dd in dead_from_manifest {
        println!("manifest records disk {} dead; resuming degraded", dd.0);
        pa.fail_disk(dd).map_err(|e| e.to_string())?;
    }
    // Crash drills also number the parity layer's read-modify-write
    // boundaries, so --crash-at can land between a data write and its
    // parity commit.
    if let Some(c) = crash {
        pa.set_crash_clock(c.clone());
    }
    Ok(RetryingDiskArray::new(pa, RetryPolicy::default()))
}

/// Run SRM on `array`, optionally behind the fault-injection + retry
/// stack (`--fault-rate`), the rotating-parity layer (`--parity`), and
/// checkpointing (`--resume`).
#[allow(clippy::too_many_arguments)]
fn srm_with_faults<A: DiskArray<U64Record>>(
    array: A,
    data: &[U64Record],
    sorter: SrmSorter,
    geom: Geometry,
    fault_rate: f64,
    fault_seed: u64,
    resume: Option<&Path>,
    parity: Option<&ParityOpts>,
    store: Option<&Path>,
    check_model: bool,
    crash: Option<CrashClock>,
    trip: Option<(InterruptFlag, u64)>,
) -> Result<(), CliError> {
    let policy = RetryPolicy::default();
    if fault_rate > 0.0 {
        println!(
            "fault injection: transient rate {fault_rate} per disk (seed {fault_seed:#x}), up to {} attempts per op",
            policy.max_attempts
        );
    }
    // The sorter ticks its own manifest-write boundaries on the same
    // clock the array layers use, so boundary numbering is total.
    let sorter = match &crash {
        Some(c) => sorter.with_crash_clock(c.clone()),
        None => sorter,
    };
    match parity {
        Some(p) => {
            // A degraded resume must re-mark the manifest's dead disks
            // *before* the sorter validates redundancy.  The
            // generation-aware load tolerates a torn current manifest.
            let mut dead = Vec::new();
            if let Some(path) = resume {
                if let Some(m) =
                    srm_core::SortManifest::load_latest(path).map_err(|e| e.to_string())?
                {
                    if let Some(red) = &m.redundancy {
                        dead = red.dead.clone();
                    }
                }
            }
            let wrapped = build_parity_stack(
                array, geom, fault_rate, fault_seed, p, store, &dead, crash.as_ref(),
            )?;
            if let Some(c) = crash {
                // Crash drills exclude --kill-disk (validated at parse
                // time), so no observer is needed on this path.
                let arr = CrashingDiskArray::new(wrapped, c);
                return run_srm(arr, data, sorter, geom, resume, check_model, None, trip);
            }
            let kill = p.kill;
            let observer: SrmObserver<'_, ProtectedStack<A>> = Some(Box::new(move |pass, a| {
                if let Some((disk, at)) = kill {
                    if pass == at {
                        println!("drill: disk {disk} dies permanently after pass {pass}");
                        a.inner_mut().fail_disk(DiskId(disk))?;
                    }
                }
                Ok(())
            }));
            run_srm(wrapped, data, sorter.clone(), geom, resume, check_model, observer, trip)
        }
        None if fault_rate > 0.0 => {
            let faulty =
                FaultyDiskArray::new(array, FaultModel::random(fault_seed).with_rate(fault_rate));
            let wrapped = RetryingDiskArray::new(faulty, policy);
            match crash {
                Some(c) => {
                    let arr = CrashingDiskArray::new(wrapped, c);
                    run_srm(arr, data, sorter, geom, resume, check_model, None, trip)
                }
                None => {
                    run_srm(wrapped, data, sorter.clone(), geom, resume, check_model, None, trip)
                }
            }
        }
        None => match crash {
            Some(c) => {
                let arr = CrashingDiskArray::new(array, c);
                run_srm(arr, data, sorter, geom, resume, check_model, None, trip)
            }
            None => run_srm(array, data, sorter, geom, resume, check_model, None, trip),
        },
    }
}

/// Replay a traced sort's event stream through the model checker and
/// report the verdict (the CLI's `--check-model` back end).
fn report_model_check<A: DiskArray<U64Record>>(
    geom: Geometry,
    traced: &TracingDiskArray<U64Record, A>,
) -> Result<(), String> {
    let trace = traced.take_trace();
    let summary = modelcheck::check_trace(geom, &trace)
        .map_err(|v| format!("model-rule violation: {v}"))?;
    modelcheck::check_stats(&trace, &traced.stats())
        .map_err(|v| format!("trace/stats drift: {v}"))?;
    println!(
        "  model check: clean — {} events replayed ({} scheduled reads, {} blocks flushed, \
         {} runs written, {} parity commits, {} reconstructions)",
        summary.events,
        summary.sched_reads,
        summary.flushed_blocks,
        summary.runs_written,
        summary.parity_commits,
        summary.reconstructs,
    );
    Ok(())
}

/// Dispatch a sort to [`run_srm_on`], optionally under the tracing
/// wrapper + invariant checker (`--check-model`).
#[allow(clippy::too_many_arguments)]
fn run_srm<A: DiskArray<U64Record>>(
    array: A,
    data: &[U64Record],
    sorter: SrmSorter,
    geom: Geometry,
    resume: Option<&Path>,
    check_model: bool,
    observer: SrmObserver<'_, A>,
    trip: Option<(InterruptFlag, u64)>,
) -> Result<(), CliError> {
    if check_model {
        let mut traced = TracingDiskArray::new(array);
        let mut obs = observer;
        let adapted: SrmObserver<'_, TracingDiskArray<U64Record, A>> =
            Some(Box::new(move |pass, t| match obs.as_deref_mut() {
                Some(f) => f(pass, t.inner_mut()),
                None => Ok(()),
            }));
        run_srm_on(&mut traced, data, sorter, geom, resume, adapted, trip)?;
        Ok(report_model_check(geom, &traced)?)
    } else {
        let mut array = array;
        run_srm_on(&mut array, data, sorter, geom, resume, observer, trip)
    }
}

fn run_srm_on<A: DiskArray<U64Record>>(
    array: &mut A,
    data: &[U64Record],
    sorter: SrmSorter,
    geom: Geometry,
    resume: Option<&Path>,
    observer: SrmObserver<'_, A>,
    trip: Option<(InterruptFlag, u64)>,
) -> Result<(), CliError> {
    let input = write_unsorted_input(array, data).map_err(|e| e.to_string())?;
    let staged = array.stats();
    let start = std::time::Instant::now();
    let mut obs = observer;
    let result = sorter
        .sort_observed(array, &input, resume, |pass, a| {
            // The --interrupt-after-pass test hook stands in for a human
            // Ctrl-C: the observer runs at the boundary *before* the
            // snapshot and the interrupt check, so tripping here drains
            // at this very pass.
            if let Some((flag, after)) = &trip {
                if pass >= *after {
                    flag.trigger();
                }
            }
            match obs.as_deref_mut() {
                Some(f) => f(pass, a),
                None => Ok(()),
            }
        })
        .map_err(|e| match (&e, resume) {
            (srm_core::SrmError::Interrupted, m) => {
                CliError::Interrupted(m.map(Path::to_path_buf))
            }
            // A bad manifest will fail the same way on every rerun — the
            // only way out is to discard it.
            (srm_core::SrmError::Checkpoint(_), Some(m)) => CliError::Msg(format!(
                "{e}; delete {} to start a fresh sort",
                m.display()
            )),
            (_, Some(m)) => CliError::Msg(format!(
                "{e}; rerun with the same flags to resume from {}",
                m.display()
            )),
            _ => CliError::Msg(e.to_string()),
        });
    let (sorted, report) = result?;
    let elapsed = start.elapsed();
    verify_sorted(
        &read_run(array, &sorted).map_err(|e| e.to_string())?,
        data,
    )?;
    println!("SRM: sorted & verified in {elapsed:.2?} (host time)");
    println!(
        "  merge order R={}, runs formed={}, merge passes={}, flushes={} ({} blocks)",
        report.merge_order,
        report.runs_formed,
        report.merge_passes,
        report.schedule.flush_ops,
        report.schedule.blocks_flushed
    );
    if let Some(red) = array.redundancy() {
        if !red.dead.is_empty() {
            let ids: Vec<u32> = red.dead.iter().map(|d| d.0).collect();
            println!(
                "  degraded: completed with disk(s) {ids:?} dead; output identical to the failure-free run"
            );
        }
    }
    let io = array.stats().since(&staged);
    print_io("I/O (sort only)", &io, geom, elapsed);
    println!();
    Ok(())
}

/// Run DSM on `array`, optionally behind the same protective stack as SRM.
#[allow(clippy::too_many_arguments)]
fn dsm_with_faults<A: DiskArray<U64Record>>(
    array: A,
    data: &[U64Record],
    sorter: DsmSorter,
    geom: Geometry,
    fault_rate: f64,
    fault_seed: u64,
    parity: Option<&ParityOpts>,
    check_model: bool,
) -> Result<(), CliError> {
    let policy = RetryPolicy::default();
    if fault_rate > 0.0 {
        println!(
            "fault injection: transient rate {fault_rate} per disk (seed {fault_seed:#x}), up to {} attempts per op",
            policy.max_attempts
        );
    }
    match parity {
        Some(p) => {
            let wrapped =
                build_parity_stack(array, geom, fault_rate, fault_seed, p, None, &[], None)?;
            let kill = p.kill;
            let observer: DsmObserver<'_, ProtectedStack<A>> = Some(Box::new(move |pass, a| {
                if let Some((disk, at)) = kill {
                    if pass == at {
                        println!("drill: disk {disk} dies permanently after pass {pass}");
                        a.inner_mut().fail_disk(DiskId(disk))?;
                    }
                }
                Ok(())
            }));
            run_dsm(wrapped, data, sorter, geom, check_model, observer)
        }
        None if fault_rate > 0.0 => {
            let faulty =
                FaultyDiskArray::new(array, FaultModel::random(fault_seed).with_rate(fault_rate));
            let wrapped = RetryingDiskArray::new(faulty, policy);
            run_dsm(wrapped, data, sorter, geom, check_model, None)
        }
        None => run_dsm(array, data, sorter, geom, check_model, None),
    }
}

/// Dispatch a DSM sort to [`run_dsm_on`], optionally under the tracing
/// wrapper + invariant checker (`--check-model`).
fn run_dsm<A: DiskArray<U64Record>>(
    array: A,
    data: &[U64Record],
    sorter: DsmSorter,
    geom: Geometry,
    check_model: bool,
    observer: DsmObserver<'_, A>,
) -> Result<(), CliError> {
    if check_model {
        let mut traced = TracingDiskArray::new(array);
        let mut obs = observer;
        let adapted: DsmObserver<'_, TracingDiskArray<U64Record, A>> =
            Some(Box::new(move |pass, t| match obs.as_deref_mut() {
                Some(f) => f(pass, t.inner_mut()),
                None => Ok(()),
            }));
        run_dsm_on(&mut traced, data, sorter, geom, adapted)?;
        Ok(report_model_check(geom, &traced)?)
    } else {
        let mut array = array;
        run_dsm_on(&mut array, data, sorter, geom, observer)
    }
}

fn run_dsm_on<A: DiskArray<U64Record>>(
    array: &mut A,
    data: &[U64Record],
    sorter: DsmSorter,
    geom: Geometry,
    observer: DsmObserver<'_, A>,
) -> Result<(), CliError> {
    let input = write_unsorted_stripes(array, data).map_err(|e| e.to_string())?;
    let staged = array.stats();
    let start = std::time::Instant::now();
    let mut obs = observer;
    let (sorted, report) = sorter
        .sort_observed(array, &input, None, |pass, a| match obs.as_deref_mut() {
            Some(f) => f(pass, a),
            None => Ok(()),
        })
        .map_err(|e| match &e {
            // DSM has no CLI checkpoint path: an interrupt just stops the
            // sort early (nothing to resume), but it is still exit 130.
            dsm::DsmError::Interrupted => CliError::Interrupted(None),
            _ => CliError::Msg(e.to_string()),
        })?;
    let elapsed = start.elapsed();
    verify_sorted(
        &read_logical_run(array, &sorted).map_err(|e| e.to_string())?,
        data,
    )?;
    println!("DSM: sorted & verified in {elapsed:.2?} (host time)");
    println!(
        "  merge order R={}, runs formed={}, merge passes={}",
        report.merge_order, report.runs_formed, report.merge_passes
    );
    if let Some(red) = array.redundancy() {
        if !red.dead.is_empty() {
            let ids: Vec<u32> = red.dead.iter().map(|d| d.0).collect();
            println!(
                "  degraded: completed with disk(s) {ids:?} dead; output identical to the failure-free run"
            );
        }
    }
    let io = array.stats().since(&staged);
    print_io("I/O (sort only)", &io, geom, elapsed);
    println!();
    Ok(())
}

fn verify_sorted(got: &[U64Record], original: &[U64Record]) -> Result<(), String> {
    if got.len() != original.len() {
        return Err(format!(
            "output holds {} records, input had {}",
            got.len(),
            original.len()
        ));
    }
    if !got.windows(2).all(|w| w[0].key() <= w[1].key()) {
        return Err("output is not sorted".into());
    }
    let mut expected: Vec<u64> = original.iter().map(|r| r.0).collect();
    expected.sort_unstable();
    if got.iter().map(|r| r.0).ne(expected.iter().copied()) {
        return Err("output is not a permutation of the input".into());
    }
    Ok(())
}

/// `srm scrub`
pub fn scrub(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<bool, String> {
        let dir = flags
            .get_str("dir")
            .map(std::path::PathBuf::from)
            .ok_or("`srm scrub` requires --dir")?;
        let manifest = flags
            .get_str("manifest")
            .map(std::path::PathBuf::from)
            .ok_or("`srm scrub` requires --manifest")?;
        let parity = flags.has("parity");
        let m = srm_core::SortManifest::load_latest(&manifest)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no valid manifest at {}", manifest.display()))?;
        let geom = m.geometry;
        println!(
            "scrubbing {} live runs ({} blocks) from {} (D={} disks, B={} records/block)",
            m.runs.len(),
            m.runs.iter().map(|r| r.len_blocks).sum::<u64>(),
            manifest.display(),
            geom.d,
            geom.b
        );
        let fa: FileDiskArray<U64Record> =
            FileDiskArray::open(geom, &dir).map_err(|e| e.to_string())?;
        let report = if parity {
            let mut pa = ParityDiskArray::new(fa)
                .map_err(|e| e.to_string())?
                .with_store(dir.join("parity.store"))
                .map_err(|e| e.to_string())?;
            if let Some(red) = &m.redundancy {
                for &dd in &red.dead {
                    println!("manifest records disk {} dead; scrubbing degraded", dd.0);
                    pa.fail_disk(dd).map_err(|e| e.to_string())?;
                }
            }
            srm_core::scrub_runs(&mut pa, &m.runs).map_err(|e| e.to_string())?
        } else {
            let mut fa = fa;
            srm_core::scrub_runs(&mut fa, &m.runs).map_err(|e| e.to_string())?
        };
        println!("{report}");
        for f in &report.failures {
            println!("  unrepairable: {f}");
        }
        Ok(report.is_healthy())
    };
    match inner() {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => fail(e),
    }
}

/// `srm crash-matrix`
pub fn crash_matrix(argv: &[String]) -> i32 {
    use srm_repro::crashmat::{run_matrix, Backend, MatrixConfig};
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let records: u64 = flags.get_or("records", 600)?;
        let d: usize = flags.get_or("d", 4)?;
        let b: usize = flags.get_or("b", 4)?;
        let seed: u64 = flags.get_or("seed", 0xC4A5)?;
        let geom = match flags.get::<usize>("m")? {
            Some(m) => Geometry::new(d, b, m),
            None => match flags.get::<usize>("k")? {
                Some(k) => Geometry::for_table(k, d, b),
                // Small enough for an exhaustive sweep, big enough
                // (with the default record count) for two merge passes.
                None => Geometry::new(d, b, 8 * d * b),
            },
        }
        .map_err(|e| e.to_string())?;
        let backend = match flags.get_str("backend").unwrap_or("mem") {
            "mem" => Backend::Mem,
            "file" => Backend::File,
            other => return Err(format!("unknown backend `{other}`")),
        };
        let scratch = flags
            .get_str("dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("srm-crash-matrix-{}", std::process::id()))
            });
        let cfg = MatrixConfig {
            geom,
            seed,
            pipeline: flags.has("pipeline"),
            read_ahead: flags.get_or("read-ahead", 0)?,
            parity: flags.has("parity"),
            backend,
            check_recovery: !flags.has("no-check"),
            scratch: scratch.clone(),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<U64Record> = (0..records).map(|_| U64Record(rng.random())).collect();
        println!(
            "crash matrix: {records} records on D={} B={} M={} ({} engine, parity {}, {} backend)",
            geom.d,
            geom.b,
            geom.m,
            if cfg.pipeline { "pipelined" } else { "serial" },
            if cfg.parity { "on" } else { "off" },
            if backend == Backend::Mem { "mem" } else { "file" },
        );
        let start = std::time::Instant::now();
        let report = run_matrix(&cfg, &data, |kk, n| {
            if kk % 100 == 0 {
                println!("  exploring crash point {kk}/{n}");
            }
        })?;
        println!(
            "explored {} crash points in {:.2?}: {} resumed from a checkpoint, {} restarted \
             fresh; every recovery was byte-identical to the baseline{}",
            report.points,
            start.elapsed(),
            report.resumed_from_checkpoint,
            report.fresh_restarts,
            if cfg.check_recovery {
                " with a checker-clean I/O trace"
            } else {
                ""
            },
        );
        let _ = std::fs::remove_dir_all(&scratch);
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `srm occupancy`
pub fn occupancy(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let k: u64 = flags
            .get("k")?
            .ok_or("`srm occupancy` requires --k")?;
        let d: usize = flags.get("d")?.ok_or("`srm occupancy` requires --d")?;
        let trials: u64 = flags.get_or("trials", 1000)?;
        let seed: u64 = flags.get_or("seed", 0xC11_0CC)?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = ::occupancy::overhead_v(k, d, trials, &mut rng);
        println!("v({k}, {d}) = C({}, {d})/{k} = {v}", k * d as u64);
        println!(
            "analytic rho* upper bound on E[max]/k: {:.4}",
            ::occupancy::upper_bound_expected_max(k * d as u64, d) / k as f64
        );
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `srm simulate`
pub fn simulate(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let k: usize = flags.get("k")?.ok_or("`srm simulate` requires --k")?;
        let d: usize = flags.get("d")?.ok_or("`srm simulate` requires --d")?;
        let blocks: u64 = flags.get_or("blocks", 1000)?;
        let trials: u64 = flags.get_or("trials", 3)?;
        let seed: u64 = flags.get_or("seed", 0x000C_1151)?;
        let placement = match flags.get_str("placement").unwrap_or("random") {
            "random" => SimPlacement::Random,
            "staggered" => SimPlacement::Staggered,
            other => return Err(format!("unknown placement `{other}`")),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = estimate_overhead_v(k, d, blocks, 1000, placement, trials, &mut rng)
            .map_err(|e| e.to_string())?;
        println!(
            "simulated v({k}, {d}) over {trials} merges of {} runs x {blocks} blocks: {v}",
            k * d
        );
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `srm serve`
pub fn serve(argv: &[String]) -> i32 {
    use std::io::Write as _;
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let dir = flags
            .get_str("dir")
            .map(std::path::PathBuf::from)
            .ok_or("`srm serve` requires --dir (the durable job store)")?;
        let port: u16 = flags.get_or("port", 0)?;
        let mut cfg = ServerConfig::new(&dir);
        cfg.capacity = flags.get_or("capacity", cfg.capacity)?;
        cfg.workers = flags.get_or("workers", cfg.workers)?;
        cfg.queue_depth = flags.get_or("queue-depth", cfg.queue_depth)?;
        cfg.io_delay =
            std::time::Duration::from_micros(flags.get_or::<u64>("io-delay-us", 0)?);
        cfg.check_model = flags.has("check-model");
        // Fault-injection hook for chaos drills: the job store starts
        // refusing writes (typed no-space admission error) after N
        // record-writes.  A restarted server gets a fresh "disk".
        cfg.store_nospace_after = flags.get("store-nospace-after")?;

        let server =
            std::sync::Arc::new(JobServer::open(cfg).map_err(|e| e.to_string())?);
        let listener = std::net::TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;

        // SIGINT/SIGTERM trigger the same drain as the DRAIN verb:
        // stop admitting, checkpoint every running job at its next pass
        // boundary, exit.  A restarted server resumes them all.
        let shutdown = server.shutdown_flag();
        srm_repro::signals::install();
        srm_repro::signals::watch(shutdown.interrupt_flag(), || false);

        let stats = server.stats();
        println!(
            "serving jobs from {} (capacity {} records, {} workers, queue depth {})",
            dir.display(),
            stats.capacity,
            server.config().workers,
            server.config().queue_depth
        );
        if stats.queued > 0 || stats.suspended > 0 {
            println!(
                "restart recovery: {} queued and {} suspended job(s) picked up from disk",
                stats.queued, stats.suspended
            );
        }
        // Tests and scripts parse this line for the ephemeral port.
        println!("listening on {addr}");
        let _ = std::io::stdout().flush();

        let report = srm_server::serve(server, listener).map_err(|e| e.to_string())?;
        println!("{report}");
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// Connect to the local job server, absorbing a refused or reset
/// connection with capped exponential backoff — the server may still be
/// binding its listener (restart races are routine when a supervisor
/// respawns `srm serve` and clients reconnect immediately).
fn connect_with_retry(
    port: u16,
    attempts: u32,
    base: std::time::Duration,
) -> Result<std::net::TcpStream, String> {
    let cap = std::time::Duration::from_millis(500);
    let mut wait = base;
    let mut last = None;
    for attempt in 1..=attempts {
        match std::net::TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                last = Some(e);
                if attempt < attempts {
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(cap);
                }
            }
            Err(e) => return Err(format!("connect 127.0.0.1:{port}: {e}")),
        }
    }
    Err(format!(
        "connect 127.0.0.1:{port}: {} (after {attempts} attempts)",
        last.map_or_else(|| "no attempt made".into(), |e| e.to_string())
    ))
}

/// `srm client`
pub fn client(argv: &[String]) -> i32 {
    use std::io::{BufRead as _, Write as _};
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<bool, String> {
        let port: u16 = flags
            .get("port")?
            .ok_or("`srm client` requires --port")?;
        let request = flags
            .get_str("send")
            .ok_or("`srm client` requires --send \"REQUEST\"")?;
        let attempts: u32 = flags.get_or("connect-retries", 8)?;
        let stream =
            connect_with_retry(port, attempts.max(1), std::time::Duration::from_millis(10))?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        // The server handles one request per line in order, so writing
        // the request followed by QUIT streams the full response (all
        // WATCH events included) and then closes the connection.
        writer
            .write_all(format!("{request}\nQUIT\n").as_bytes())
            .map_err(|e| e.to_string())?;
        let mut ok = true;
        for line in std::io::BufReader::new(stream).lines() {
            let line = line.map_err(|e| e.to_string())?;
            if line.starts_with("ERR ") {
                ok = false;
            }
            println!("{line}");
        }
        Ok(ok)
    };
    match inner() {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(e) => fail(e),
    }
}

/// `srm distsort`
pub fn distsort(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let mut spec = JobSpec {
            records: flags.get_or("records", 100_000)?,
            seed: flags.get_or("seed", 0xC11_5EED)?,
            d: flags.get_or("d", 4)?,
            b: flags.get_or("b", 64)?,
            pipeline: flags.has("pipeline"),
            ..JobSpec::default()
        };
        spec.m = match flags.get::<usize>("m")? {
            Some(m) => m,
            // No explicit memory: size M for a k-way SRM merge on this
            // D and B, exactly as `srm sort` does.
            None => {
                let k: usize = flags.get_or("k", 4)?;
                Geometry::for_table(k, spec.d, spec.b)
                    .map_err(|e| e.to_string())?
                    .m
            }
        };
        spec.placement = match flags.get_str("placement").unwrap_or("random") {
            "random" => Placement::Random,
            "staggered" => Placement::Staggered,
            other => return Err(format!("unknown placement `{other}`")),
        };

        let shards: u32 = flags.get_or("shards", 4)?;
        let mut cfg = srm_dist::DistConfig::new(shards);
        cfg.parity = flags.has("parity");
        cfg.heartbeat =
            std::time::Duration::from_millis(flags.get_or("heartbeat-ms", 15)?);
        cfg.timeout = std::time::Duration::from_millis(flags.get_or("timeout-ms", 250)?);
        cfg.io_delay =
            std::time::Duration::from_micros(flags.get_or::<u64>("io-delay-us", 0)?);
        cfg.kill = flags
            .get_str("kill-node")
            .map(srm_dist::parse_kill_node)
            .transpose()
            .map_err(|e| e.to_string())?;
        cfg.corrupt_disk = flags.get("corrupt-disk")?;

        let net_seed: u64 = flags.get_or("net-seed", 0x0DD_5EED)?;
        let drop: f64 = flags.get_or("net-drop", 0.0)?;
        let dup: f64 = flags.get_or("net-dup", 0.0)?;
        let delay: f64 = flags.get_or("net-delay", 0.0)?;
        if drop > 0.0 || dup > 0.0 || delay > 0.0 || flags.get_str("partition").is_some() {
            let mut model = pdisk::NetFaultModel::seeded(net_seed)
                .with_drop_rate(drop)
                .with_dup_rate(dup)
                .with_delay_rate(delay)
                .with_max_delay(flags.get_or("net-max-delay", 8)?);
            if let Some(s) = flags.get_str("partition") {
                let parts: Vec<&str> = s.split(':').collect();
                let bad =
                    || format!("bad --partition `{s}` (want NODE:FROM:UNTIL in global sends)");
                let [node, from, until] = parts[..] else { return Err(bad()) };
                model = model.partition(
                    node.parse().map_err(|_| bad())?,
                    from.parse().map_err(|_| bad())?,
                    until.parse().map_err(|_| bad())?,
                );
            }
            cfg.net = model;
        }

        let dir = flags
            .get_str("dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("srm-distsort-{}", std::process::id()))
            });
        let keep = flags.has("keep") || flags.get_str("dir").is_some();

        let report = if flags.has("procs") {
            let bin = std::env::current_exe()
                .map_err(|e| format!("current_exe: {e}"))?;
            srm_dist::run_procs(&spec, &cfg, &dir, &bin)
        } else {
            srm_dist::distsort(&spec, &cfg, &dir)
        }
        .map_err(|e| e.to_string())?;
        if !keep {
            let _ = std::fs::remove_dir_all(&dir);
        }

        println!(
            "distsort: {} records over {} shards in {} ms ({} mode)",
            report.records,
            report.shards,
            report.elapsed_ms,
            if flags.has("procs") { "process" } else { "thread" }
        );
        println!(
            "  splitters: {:?}",
            report.splitters.iter().map(|k| format!("{k:#x}")).collect::<Vec<_>>()
        );
        for (s, shard) in report.per_shard.iter().enumerate() {
            println!(
                "  shard {s}: {} records, {} blocks, {} passes, trace {} ({} events), {} recoveries, {} repaired",
                shard.records,
                shard.blocks,
                shard.passes,
                if shard.trace_clean { "clean" } else { "DIRTY" },
                shard.trace_events,
                shard.recoveries,
                shard.repaired
            );
        }
        println!(
            "  recoveries: {} total, merge stalls: {}, recovery wall-clock: {:?} ms",
            report.recoveries, report.merge_stalls, report.recovery_ms
        );
        println!(
            "  net: {} sent, {} delivered, {} dropped, {} duplicated, {} delayed",
            report.net.sent,
            report.net.delivered,
            report.net.dropped,
            report.net.duplicated,
            report.net.delayed
        );
        println!(
            "  global digest {:#018x}: {}",
            report.digest,
            if report.oracle_ok {
                "matches the central oracle"
            } else {
                "MISMATCH against the central oracle"
            }
        );
        if !report.oracle_ok {
            return Err("global output digest mismatch".into());
        }
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// The hidden `srm shard-run` subcommand: one shard child of a
/// `--procs` distributed sort (see `srm_dist::procs`).  Not advertised —
/// it is an implementation detail of `srm distsort --procs`, spawned
/// with plan files already on disk.
pub fn shard_run(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let root = flags
            .get_str("root")
            .map(std::path::PathBuf::from)
            .ok_or("`srm shard-run` requires --root")?;
        let shard: u32 = flags
            .get("shard")?
            .ok_or("`srm shard-run` requires --shard")?;
        let arm_kill: Option<u64> = flags.get("arm-kill")?;
        srm_dist::shard_run_standalone(&root, shard, arm_kill).map_err(|e| e.to_string())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => {
            // The parent parses stdout; report the failure there too so a
            // child that dies before its monitor sees ERR is still
            // diagnosable.
            println!("ERR {e}");
            fail(e)
        }
    }
}

/// `srm chaos`
pub fn chaos(argv: &[String]) -> i32 {
    use srm_chaos::{replay, run_campaign, CampaignConfig, ReproArtifact, Target};
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<i32, String> {
        let scratch = match flags.get_str("dir") {
            Some(d) => std::path::PathBuf::from(d),
            None => std::env::temp_dir().join(format!("srm-chaos-{}", std::process::id())),
        };
        let keep = flags.has("keep") || flags.get_str("dir").is_some();

        // --replay FILE: re-execute one reproducer artifact exactly.
        if let Some(file) = flags.get_str("replay") {
            let artifact = ReproArtifact::load(Path::new(file)).map_err(|e| e.to_string())?;
            println!(
                "replaying {} (target {}, campaign seed {:#x}, trial {}, {} event(s), recorded violation `{}`)",
                file,
                artifact.target.slug(),
                artifact.seed,
                artifact.trial,
                artifact.events.len(),
                artifact.violation,
            );
            let server_bin = server_bin_for(artifact.target.slug())?;
            let outcome =
                replay(&artifact, &scratch, server_bin).map_err(|e| e.to_string())?;
            if !keep {
                let _ = std::fs::remove_dir_all(&scratch);
            }
            let expect = flags.get_str("expect-violation");
            return Ok(match (&outcome.violation, expect) {
                (Some(v), Some(code)) if v.code() == code => {
                    println!("reproduced: {v} ({} attempt(s))", outcome.attempts);
                    0
                }
                (Some(v), Some(code)) => {
                    eprintln!("violation mismatch: expected `{code}`, got `{}`: {v}", v.code());
                    1
                }
                (Some(v), None) => {
                    eprintln!("violation reproduced: {v} ({} attempt(s))", outcome.attempts);
                    1
                }
                (None, Some(code)) => {
                    eprintln!("replay did NOT reproduce the expected `{code}` violation");
                    1
                }
                (None, None) => {
                    println!(
                        "clean: no violation ({} attempt(s), {} resumed)",
                        outcome.attempts, outcome.resumed
                    );
                    0
                }
            });
        }

        let target_flag = flags.get_str("target").unwrap_or("local");
        let targets: Vec<Target> = match target_flag {
            "all" => vec![Target::Local, Target::Dist, Target::Server],
            slug => vec![Target::from_slug(slug)
                .ok_or_else(|| format!("unknown chaos target `{slug}`"))?],
        };
        let seed: u64 = flags.get_or("seed", 0xC405_5EED)?;
        let trials: u32 = flags.get_or("trials", 20)?;

        let mut total_violations = 0usize;
        for target in targets {
            let mut cfg = CampaignConfig::new(target, seed, scratch.join(target.slug()));
            cfg.trials = trials;
            cfg.records = flags.get_or("records", cfg.records)?;
            cfg.d = flags.get_or("d", cfg.d)?;
            cfg.b = flags.get_or("b", cfg.b)?;
            cfg.m = flags.get_or("m", cfg.m)?;
            cfg.pipeline = flags.has("pipeline");
            cfg.read_ahead = flags.get_or("read-ahead", cfg.read_ahead)?;
            cfg.shards = flags.get_or("shards", cfg.shards)?;
            cfg.server_jobs = flags.get_or("jobs", cfg.server_jobs)?;
            cfg.plant_bug = flags.has("plant-bug");
            cfg.minimize = !flags.has("no-minimize");
            cfg.server_bin = server_bin_for(target.slug())?;

            println!(
                "chaos campaign: target {}, seed {:#x}, {} trial(s)",
                target.slug(),
                seed,
                trials
            );
            let report = run_campaign(&cfg, |trial, total| {
                if trial % 10 == 0 && trial > 0 {
                    println!("  ... trial {trial}/{total}");
                }
            })
            .map_err(|e| e.to_string())?;
            println!(
                "  {} trial(s), {} incarnation(s) ({} resumed from checkpoints), {} violation(s)",
                report.trials,
                report.attempts,
                report.resumed,
                report.violations.len()
            );
            for v in &report.violations {
                println!(
                    "  trial {}: {} — schedule minimized {} -> {} event(s)",
                    v.trial, v.violation, v.events_total, v.events_min
                );
                for ev in &v.schedule {
                    println!("    - {ev}");
                }
                if let Some(p) = &v.artifact {
                    println!("    reproducer: {} (rerun: srm chaos --replay {0})", p.display());
                }
            }
            total_violations += report.violations.len();
        }
        // Violations leave their reproducers behind even without --keep.
        if !keep && total_violations == 0 {
            let _ = std::fs::remove_dir_all(&scratch);
        }
        Ok(i32::from(total_violations > 0))
    };
    match inner() {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}

/// The server chaos target spawns this very binary as `srm serve`.
fn server_bin_for(target_slug: &str) -> Result<Option<std::path::PathBuf>, String> {
    if target_slug != "server" {
        return Ok(None);
    }
    std::env::current_exe()
        .map(Some)
        .map_err(|e| format!("cannot locate the srm binary for the server target: {e}"))
}
