//! Subcommand implementations.

use crate::args::Flags;
use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::{
    DiskArray, DiskModel, FaultModel, FaultyDiskArray, FileDiskArray, Geometry, MemDiskArray,
    Record, RetryPolicy, RetryingDiskArray, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::simulator::{estimate_overhead_v, SimPlacement};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, Placement, RunFormation, SrmConfig, SrmSorter};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
srm — Simple Randomized Mergesort on parallel disks (SPAA '96 reproduction)

USAGE:
  srm sort [--records N] [--d D] [--b B] [--k K | --m M] [--algo srm|dsm|both]
           [--backend mem|file] [--dir PATH] [--seed S]
           [--placement random|staggered] [--formation load|parload|rs]
           [--threads N] [--keep]
           [--fault-rate R] [--fault-seed S] [--resume MANIFEST]
      Generate N random records, stage them on the simulated disk array,
      sort, verify, and print the I/O accounting (one parallel operation
      moves up to one block per disk) plus estimated wall times under a
      1996-era disk model and an SSD model.

      --fault-rate R injects transient faults on reads and writes with
      per-disk probability R (0 <= R < 1, seeded by --fault-seed) and
      absorbs them with the bounded-retry wrapper; retry counts appear in
      the I/O line.  --resume MANIFEST checkpoints the sort to MANIFEST
      after every pass and, when the file already exists, resumes from it
      (with --backend file the disk files are reopened, not truncated —
      a killed sort picks up from its last completed pass).

  srm occupancy --k K --d D [--trials N] [--seed S]
      Estimate Table 1's overhead v(k, D) = C(kD, D)/k by ball-throwing.

  srm simulate --k K --d D [--blocks L] [--trials N] [--seed S]
           [--placement random|staggered]
      Estimate Table 3's overhead v(k, D) by simulating the SRM merge of
      kD runs of L blocks on average-case input.

  srm help
      This text.
";

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// `srm sort`
pub fn sort(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let records: u64 = flags.get_or("records", 1_000_000)?;
        let d: usize = flags.get_or("d", 4)?;
        let b: usize = flags.get_or("b", 64)?;
        let seed: u64 = flags.get_or("seed", 0xC11_5EED)?;
        let geom = match flags.get::<usize>("m")? {
            Some(m) => Geometry::new(d, b, m).map_err(|e| e.to_string())?,
            None => {
                let k: usize = flags.get_or("k", 4)?;
                Geometry::for_table(k, d, b).map_err(|e| e.to_string())?
            }
        };
        let algo = flags.get_str("algo").unwrap_or("both");
        let backend = flags.get_str("backend").unwrap_or("mem");
        let placement = match flags.get_str("placement").unwrap_or("random") {
            "random" => Placement::Random,
            "staggered" => Placement::Staggered,
            other => return Err(format!("unknown placement `{other}`")),
        };
        let formation = match flags.get_str("formation").unwrap_or("load") {
            "load" => RunFormation::MemoryLoad { fraction: 0.5 },
            "parload" => RunFormation::ParallelMemoryLoad {
                fraction: 0.5,
                threads: flags.get_or(
                    "threads",
                    std::thread::available_parallelism().map_or(4, |p| p.get()),
                )?,
            },
            "rs" => RunFormation::ReplacementSelection,
            other => return Err(format!("unknown formation `{other}`")),
        };
        let fault_rate: f64 = flags.get_or("fault-rate", 0.0)?;
        if !(0.0..1.0).contains(&fault_rate) {
            return Err(format!("--fault-rate {fault_rate} outside [0, 1)"));
        }
        let fault_seed: u64 = flags.get_or("fault-seed", 0xFA_017)?;
        let resume = flags.get_str("resume").map(std::path::PathBuf::from);

        println!(
            "geometry: D={} disks, B={} records/block, M={} records ({} blocks of memory)",
            geom.d,
            geom.b,
            geom.m,
            geom.memory_blocks()
        );
        if let Ok(budget) = analysis::MemoryBudget::for_geometry(geom) {
            println!("SRM memory partition (Definition 3): {}", budget.render());
        }
        println!("input: {records} random u64 records (seed {seed:#x})\n");
        let mut rng = SmallRng::seed_from_u64(seed);
        let data: Vec<U64Record> = (0..records).map(|_| U64Record(rng.random())).collect();

        if algo == "srm" || algo == "both" {
            let config = SrmConfig {
                placement,
                run_formation: formation,
                seed,
            };
            match backend {
                "mem" => {
                    let array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                    srm_with_faults(array, &data, config, geom, fault_rate, fault_seed, resume.as_deref())?;
                }
                "file" => {
                    let dir = flags
                        .get_str("dir")
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| {
                            std::env::temp_dir().join(format!("srm-cli-{}", std::process::id()))
                        });
                    println!("file backend at {}", dir.display());
                    // Resuming from a manifest means the disk files hold
                    // prior progress: reopen them instead of truncating.
                    let resuming = resume.as_deref().is_some_and(Path::exists);
                    let array: FileDiskArray<U64Record> = if resuming {
                        println!("resuming from {}", resume.as_deref().unwrap().display());
                        FileDiskArray::open(geom, &dir).map_err(|e| e.to_string())?
                    } else {
                        FileDiskArray::create(geom, &dir).map_err(|e| e.to_string())?
                    };
                    srm_with_faults(array, &data, config, geom, fault_rate, fault_seed, resume.as_deref())?;
                    if !flags.has("keep") {
                        let _ = std::fs::remove_dir_all(&dir);
                    } else {
                        println!("disk files kept at {}", dir.display());
                    }
                }
                other => return Err(format!("unknown backend `{other}`")),
            }
        }
        if algo == "dsm" || algo == "both" {
            if backend != "mem" {
                println!("(DSM runs on the in-memory backend)");
            }
            let array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            if fault_rate > 0.0 {
                let policy = RetryPolicy::default();
                println!(
                    "fault injection: transient rate {fault_rate} per disk (seed {fault_seed:#x}), up to {} attempts per op",
                    policy.max_attempts
                );
                let faulty =
                    FaultyDiskArray::new(array, FaultModel::random(fault_seed).with_rate(fault_rate));
                let mut wrapped = RetryingDiskArray::new(faulty, policy);
                run_dsm(&mut wrapped, &data, geom)?;
            } else {
                let mut array = array;
                run_dsm(&mut array, &data, geom)?;
            }
        }
        if algo != "srm" && algo != "dsm" && algo != "both" {
            return Err(format!("unknown algo `{algo}`"));
        }
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

fn print_io(label: &str, io: &pdisk::IoStats, geom: Geometry, cpu: std::time::Duration) {
    println!("  {label}: {io}");
    for (name, model) in [
        ("1996 HDD array", DiskModel::hdd_1996()),
        ("modern SSD array", DiskModel::ssd()),
    ] {
        let bytes = geom.b * U64Record::ENCODED_LEN;
        let t = model.estimate(io, bytes);
        println!(
            "    {name}: {:.2}s I/O ({:.1} MB/s); with compute overlapped {:.2}s, serialized {:.2}s",
            t.as_secs_f64(),
            model.achieved_bandwidth(io, bytes),
            model.overlapped_estimate(io, bytes, cpu).as_secs_f64(),
            model.serial_estimate(io, bytes, cpu).as_secs_f64(),
        );
    }
}

/// Run SRM on `array`, optionally behind the fault-injection + retry
/// stack (`--fault-rate`) and optionally checkpointed (`--resume`).
#[allow(clippy::too_many_arguments)]
fn srm_with_faults<A: DiskArray<U64Record>>(
    array: A,
    data: &[U64Record],
    config: SrmConfig,
    geom: Geometry,
    fault_rate: f64,
    fault_seed: u64,
    resume: Option<&Path>,
) -> Result<(), String> {
    if fault_rate > 0.0 {
        let policy = RetryPolicy::default();
        println!(
            "fault injection: transient rate {fault_rate} per disk (seed {fault_seed:#x}), up to {} attempts per op",
            policy.max_attempts
        );
        let faulty = FaultyDiskArray::new(array, FaultModel::random(fault_seed).with_rate(fault_rate));
        let mut wrapped = RetryingDiskArray::new(faulty, policy);
        run_srm(&mut wrapped, data, config, geom, resume)
    } else {
        let mut array = array;
        run_srm(&mut array, data, config, geom, resume)
    }
}

fn run_srm<A: DiskArray<U64Record>>(
    array: &mut A,
    data: &[U64Record],
    config: SrmConfig,
    geom: Geometry,
    resume: Option<&Path>,
) -> Result<(), String> {
    let input = write_unsorted_input(array, data).map_err(|e| e.to_string())?;
    let staged = array.stats();
    let start = std::time::Instant::now();
    let sorter = SrmSorter::new(config);
    let result = match resume {
        Some(manifest) => sorter.sort_checkpointed(array, &input, manifest).map_err(|e| match e {
            // A bad manifest will fail the same way on every rerun — the
            // only way out is to discard it.
            srm_core::SrmError::Checkpoint(_) => {
                format!("{e}; delete {} to start a fresh sort", manifest.display())
            }
            _ => format!("{e}; rerun with the same flags to resume from {}", manifest.display()),
        }),
        None => sorter.sort(array, &input).map_err(|e| e.to_string()),
    };
    let (sorted, report) = result?;
    let elapsed = start.elapsed();
    verify_sorted(
        &read_run(array, &sorted).map_err(|e| e.to_string())?,
        data,
    )?;
    println!("SRM: sorted & verified in {elapsed:.2?} (host time)");
    println!(
        "  merge order R={}, runs formed={}, merge passes={}, flushes={} ({} blocks)",
        report.merge_order,
        report.runs_formed,
        report.merge_passes,
        report.schedule.flush_ops,
        report.schedule.blocks_flushed
    );
    let io = array.stats().since(&staged);
    print_io("I/O (sort only)", &io, geom, elapsed);
    println!();
    Ok(())
}

fn run_dsm<A: DiskArray<U64Record>>(
    array: &mut A,
    data: &[U64Record],
    geom: Geometry,
) -> Result<(), String> {
    let input = write_unsorted_stripes(array, data).map_err(|e| e.to_string())?;
    let staged = array.stats();
    let start = std::time::Instant::now();
    let (sorted, report) = DsmSorter::default()
        .sort(array, &input)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    verify_sorted(
        &read_logical_run(array, &sorted).map_err(|e| e.to_string())?,
        data,
    )?;
    println!("DSM: sorted & verified in {elapsed:.2?} (host time)");
    println!(
        "  merge order R={}, runs formed={}, merge passes={}",
        report.merge_order, report.runs_formed, report.merge_passes
    );
    let io = array.stats().since(&staged);
    print_io("I/O (sort only)", &io, geom, elapsed);
    println!();
    Ok(())
}

fn verify_sorted(got: &[U64Record], original: &[U64Record]) -> Result<(), String> {
    if got.len() != original.len() {
        return Err(format!(
            "output holds {} records, input had {}",
            got.len(),
            original.len()
        ));
    }
    if !got.windows(2).all(|w| w[0].key() <= w[1].key()) {
        return Err("output is not sorted".into());
    }
    let mut expected: Vec<u64> = original.iter().map(|r| r.0).collect();
    expected.sort_unstable();
    if got.iter().map(|r| r.0).ne(expected.iter().copied()) {
        return Err("output is not a permutation of the input".into());
    }
    Ok(())
}

/// `srm occupancy`
pub fn occupancy(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let k: u64 = flags
            .get("k")?
            .ok_or("`srm occupancy` requires --k")?;
        let d: usize = flags.get("d")?.ok_or("`srm occupancy` requires --d")?;
        let trials: u64 = flags.get_or("trials", 1000)?;
        let seed: u64 = flags.get_or("seed", 0xC11_0CC)?;
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = ::occupancy::overhead_v(k, d, trials, &mut rng);
        println!("v({k}, {d}) = C({}, {d})/{k} = {v}", k * d as u64);
        println!(
            "analytic rho* upper bound on E[max]/k: {:.4}",
            ::occupancy::upper_bound_expected_max(k * d as u64, d) / k as f64
        );
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}

/// `srm simulate`
pub fn simulate(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let inner = || -> Result<(), String> {
        let k: usize = flags.get("k")?.ok_or("`srm simulate` requires --k")?;
        let d: usize = flags.get("d")?.ok_or("`srm simulate` requires --d")?;
        let blocks: u64 = flags.get_or("blocks", 1000)?;
        let trials: u64 = flags.get_or("trials", 3)?;
        let seed: u64 = flags.get_or("seed", 0x000C_1151)?;
        let placement = match flags.get_str("placement").unwrap_or("random") {
            "random" => SimPlacement::Random,
            "staggered" => SimPlacement::Staggered,
            other => return Err(format!("unknown placement `{other}`")),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = estimate_overhead_v(k, d, blocks, 1000, placement, trials, &mut rng)
            .map_err(|e| e.to_string())?;
        println!(
            "simulated v({k}, {d}) over {trials} merges of {} runs x {blocks} blocks: {v}",
            k * d
        );
        Ok(())
    };
    match inner() {
        Ok(()) => 0,
        Err(e) => fail(e),
    }
}
