//! Minimal flag parsing (no external dependency).

use std::collections::HashMap;

/// Parsed `--key value` flags plus boolean switches.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse, treating every `--key` followed by a non-flag token as a
    /// valued flag and everything else as a switch.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(name) = token.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{token}`"));
            };
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                flags.values.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// Valued flag lookup with parsing.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("--{name} {raw}: {e}")),
        }
    }

    /// Valued flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Raw string flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Boolean switch presence.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Flags {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        Flags::parse(&argv).unwrap()
    }

    #[test]
    fn values_and_switches() {
        let f = parse("--records 1000 --verify --algo srm");
        assert_eq!(f.get::<u64>("records").unwrap(), Some(1000));
        assert_eq!(f.get_str("algo"), Some("srm"));
        assert!(f.has("verify"));
        assert!(!f.has("missing"));
    }

    #[test]
    fn defaults() {
        let f = parse("");
        assert_eq!(f.get_or("d", 4usize).unwrap(), 4);
    }

    #[test]
    fn bad_value_is_an_error() {
        let f = parse("--records abc");
        assert!(f.get::<u64>("records").is_err());
    }

    #[test]
    fn positional_rejected() {
        let argv = vec!["stray".to_string()];
        assert!(Flags::parse(&argv).is_err());
    }
}
