//! `srm` — command-line driver for the SRM reproduction.
//!
//! Subcommands:
//!
//! * `srm sort` — generate records, sort them with SRM and/or DSM on the
//!   in-memory or real-file backend, verify, and print the I/O accounting
//!   plus estimated wall times under a disk service-time model;
//! * `srm occupancy` — quick `v(k, D)` estimate by ball-throwing (Table 1
//!   cells on demand);
//! * `srm simulate` — quick `v(k, D)` estimate by simulating the SRM
//!   merge itself (Table 3 cells on demand);
//! * `srm scrub` — walk a checkpointed sort's live runs, verify block
//!   checksums, and heal latent corruption via parity reconstruction;
//! * `srm crash-matrix` — exhaustively crash a small checkpointed sort at
//!   every I/O boundary and prove byte-identical recovery;
//! * `srm serve` — the sort-as-a-service job server: concurrent jobs over
//!   a loopback line protocol, Definition-3 admission control, graceful
//!   drain on SIGINT/SIGTERM, crash-resumable restarts;
//! * `srm client` — one-shot line-protocol client for `srm serve`;
//! * `srm distsort` — sharded SRM across simulated nodes with failure
//!   detection, node-death drills, and a degraded cross-shard merge;
//! * `srm chaos` — seeded campaigns of composed randomized fault
//!   schedules against the local, dist, and server targets, with a
//!   standing oracle, delta-debugging reproducer minimization, and
//!   deterministic `--replay`.
//!
//! Run `srm help` for flags.

#![forbid(unsafe_code)]

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("sort") => commands::sort(&argv[1..]),
        Some("occupancy") => commands::occupancy(&argv[1..]),
        Some("simulate") => commands::simulate(&argv[1..]),
        Some("scrub") => commands::scrub(&argv[1..]),
        Some("crash-matrix") => commands::crash_matrix(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("client") => commands::client(&argv[1..]),
        Some("distsort") => commands::distsort(&argv[1..]),
        Some("chaos") => commands::chaos(&argv[1..]),
        Some("shard-run") => commands::shard_run(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
