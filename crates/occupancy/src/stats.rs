//! Running statistics for Monte-Carlo estimators.

use serde::{Deserialize, Serialize};

/// Welford single-pass accumulator for mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation seen (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freeze into an [`Estimate`].
    pub fn estimate(&self) -> Estimate {
        Estimate {
            mean: self.mean(),
            std_err: self.std_err(),
            trials: self.n,
        }
    }
}

/// A Monte-Carlo point estimate with its uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Number of trials behind the estimate.
    pub trials: u64,
}

impl Estimate {
    /// 95% normal-approximation confidence interval `(lo, hi)`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err;
        (self.mean - half, self.mean + half)
    }

    /// Scale the estimate (and its error) by a constant — e.g. `C(kD,D)/k`.
    pub fn scaled(&self, factor: f64) -> Estimate {
        Estimate {
            mean: self.mean * factor,
            std_err: self.std_err * factor.abs(),
            trials: self.trials,
        }
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, 1.96 * self.std_err, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample (unbiased) variance of that classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_single_observation_edge_cases() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn ci95_brackets_mean_symmetrically() {
        let e = Estimate {
            mean: 10.0,
            std_err: 0.5,
            trials: 100,
        };
        let (lo, hi) = e.ci95();
        assert!((hi - 10.0 - (10.0 - lo)).abs() < 1e-12);
        assert!((hi - lo - 2.0 * 1.96 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_propagates_error() {
        let e = Estimate {
            mean: 4.0,
            std_err: 0.2,
            trials: 7,
        };
        let s = e.scaled(0.5);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_err, 0.1);
        assert_eq!(s.trials, 7);
    }

    #[test]
    fn display_contains_ci_halfwidth() {
        let e = Estimate {
            mean: 1.0,
            std_err: 1.0,
            trials: 4,
        };
        assert!(e.to_string().contains("1.9600"));
    }
}
