//! Dependent occupancy: chains of balls deposited cyclically into bins
//! (§7.1 of the paper, illustrated by its Figure 1).
//!
//! A chain of length `ℓ` "thrown into bin `s`" puts ball `i` into bin
//! `(s + i) mod D`.  This is exactly how the blocks a merge phase needs are
//! distributed over disks: each run contributes a *chain* of consecutive
//! blocks, cyclically striped, whose start disk is uniformly random
//! (Lemma 7).

use crate::stats::{Estimate, RunningStats};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An instance of the dependent occupancy problem: `D` bins and a multiset
/// of chain lengths.
///
/// # Examples
///
/// ```
/// use occupancy::DependentProblem;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// // Figure 1's shape: 12 balls in 5 chains over 4 bins.
/// let p = DependentProblem::new(4, vec![4, 3, 2, 2, 1]);
/// assert_eq!(p.total_balls(), 12);
///
/// // Chains deposit cyclically: a throw conserves balls.
/// let mut rng = SmallRng::seed_from_u64(1);
/// assert_eq!(p.throw_once(&mut rng).iter().sum::<u64>(), 12);
///
/// // Dependent spreading beats independent balls in expectation
/// // (the §7.2 conjecture; exact on instances this small).
/// let classical = DependentProblem::classical(12, 4);
/// assert!(p.exact_expected_max() <= classical.exact_expected_max());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependentProblem {
    d: usize,
    chains: Vec<u64>,
}

impl DependentProblem {
    /// Build an instance.
    ///
    /// # Panics
    /// Panics if `d == 0` or any chain is empty.
    pub fn new(d: usize, chains: Vec<u64>) -> Self {
        assert!(d > 0, "at least one bin");
        assert!(chains.iter().all(|&c| c > 0), "chains must be non-empty");
        DependentProblem { d, chains }
    }

    /// `C` equal chains of length `len` — the shape arising from a merge
    /// phase in which every run contributes equally.
    pub fn uniform_chains(c: usize, len: u64, d: usize) -> Self {
        DependentProblem::new(d, vec![len; c])
    }

    /// The classical problem as a dependent instance: `n` chains of 1.
    pub fn classical(n_balls: usize, d: usize) -> Self {
        DependentProblem::new(d, vec![1; n_balls])
    }

    /// Number of bins `D`.
    pub fn bins(&self) -> usize {
        self.d
    }

    /// Chain lengths.
    pub fn chains(&self) -> &[u64] {
        &self.chains
    }

    /// Total number of balls `N_b`.
    pub fn total_balls(&self) -> u64 {
        self.chains.iter().sum()
    }

    /// Lemma 9 normalization: replace every chain of length `aD + b`
    /// (`a ≥ 1`) by `a` chains of length `D` and, if `b > 0`, one chain of
    /// length `b`.  The occupancy distribution — hence the expected maximum
    /// — is unchanged.
    pub fn normalized(&self) -> DependentProblem {
        let d = self.d as u64;
        let mut chains = Vec::with_capacity(self.chains.len());
        for &len in &self.chains {
            let (a, b) = (len / d, len % d);
            chains.extend(std::iter::repeat_n(d, a as usize));
            if b > 0 {
                chains.push(b);
            }
        }
        DependentProblem { d: self.d, chains }
    }

    /// Throw every chain into a uniformly random bin; return the full
    /// occupancy vector.
    ///
    /// Cost is `O(C + D)` per call via a cyclic difference array — chains
    /// longer than `D` contribute whole laps in O(1).
    pub fn throw_once<RN: Rng + ?Sized>(&self, rng: &mut RN) -> Vec<u64> {
        let d = self.d;
        let mut full_laps = 0u64;
        let mut diff = vec![0i64; d + 1];
        for &len in &self.chains {
            let s = rng.random_range(0..d);
            full_laps += len / d as u64;
            let rem = (len % d as u64) as usize;
            if rem > 0 {
                // Add 1 to bins s .. s+rem-1 cyclically.
                let end = s + rem;
                if end <= d {
                    diff[s] += 1;
                    diff[end] -= 1;
                } else {
                    diff[s] += 1;
                    diff[d] -= 1;
                    diff[0] += 1;
                    diff[end - d] -= 1;
                }
            }
        }
        let mut occ = Vec::with_capacity(d);
        let mut acc = 0i64;
        for &delta in diff.iter().take(d) {
            acc += delta;
            occ.push(full_laps + acc as u64);
        }
        occ
    }

    /// One trial's maximum occupancy.
    pub fn max_occupancy_once<RN: Rng + ?Sized>(&self, rng: &mut RN) -> u64 {
        self.throw_once(rng).into_iter().max().unwrap_or(0)
    }

    /// Monte-Carlo estimate of the expected maximum occupancy
    /// `E[X_max]` of this instance.
    pub fn estimate_max<RN: Rng + ?Sized>(&self, trials: u64, rng: &mut RN) -> Estimate {
        let mut acc = RunningStats::new();
        for _ in 0..trials {
            acc.push(self.max_occupancy_once(rng) as f64);
        }
        acc.estimate()
    }

    /// Deterministic throw with given start bins (for rendering Figure 1
    /// and for exact tests).  `starts[i]` is chain `i`'s bin.
    pub fn throw_at(&self, starts: &[usize]) -> Vec<u64> {
        assert_eq!(starts.len(), self.chains.len());
        let mut occ = vec![0u64; self.d];
        for (&len, &s) in self.chains.iter().zip(starts) {
            assert!(s < self.d);
            for i in 0..len {
                occ[(s + i as usize) % self.d] += 1;
            }
        }
        occ
    }

    /// **Exact** expected maximum occupancy by enumerating all `D^C`
    /// start-bin assignments.
    ///
    /// # Panics
    /// Panics when `D^C` exceeds 10⁸ outcomes — use
    /// [`DependentProblem::estimate_max`] beyond that.
    pub fn exact_expected_max(&self) -> f64 {
        let d = self.d as u64;
        let c = self.chains.len() as u32;
        let outcomes = d.checked_pow(c).filter(|&o| o <= 100_000_000).unwrap_or_else(|| {
            panic!("exact enumeration infeasible: {d}^{c} outcomes") // lint:allow(panic) documented # Panics contract
        });
        let mut total = 0u64;
        let mut starts = vec![0usize; self.chains.len()];
        for code in 0..outcomes {
            let mut x = code;
            for s in starts.iter_mut() {
                *s = (x % d) as usize;
                x /= d;
            }
            total += self.throw_at(&starts).into_iter().max().unwrap_or(0);
        }
        total as f64 / outcomes as f64
    }
}

/// The instance depicted in the paper's Figure 1: `N_b = 12` balls in
/// `C = 5` chains over `D = 4` bins, together with the start bins that
/// realize the figure's dependent maximum occupancy of 4 (and, thrown as
/// independent balls at the positions shown, a classical maximum of 5).
pub fn figure1_instance() -> (DependentProblem, Vec<usize>) {
    // Chain lengths sum to 12; the figure links blocks into chains of
    // lengths 4, 3, 2, 2, 1.
    let problem = DependentProblem::new(4, vec![4, 3, 2, 2, 1]);
    // Start bins chosen so the second bin reaches occupancy 4.
    let starts = vec![0, 1, 1, 3, 1];
    (problem, starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_of_full_laps_is_deterministically_flat() {
        // One chain of length 3D covers every bin exactly 3 times.
        let p = DependentProblem::new(5, vec![15]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            let occ = p.throw_once(&mut rng);
            assert!(occ.iter().all(|&o| o == 3), "{occ:?}");
        }
    }

    #[test]
    fn partial_lap_adds_one_to_exactly_rem_bins() {
        let p = DependentProblem::new(4, vec![2 * 4 + 3]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let occ = p.throw_once(&mut rng);
            let threes = occ.iter().filter(|&&o| o == 3).count();
            let twos = occ.iter().filter(|&&o| o == 2).count();
            assert_eq!((threes, twos), (3, 1), "{occ:?}");
        }
    }

    #[test]
    fn throw_once_conserves_balls() {
        let p = DependentProblem::new(7, vec![1, 2, 3, 9, 14, 30]);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let occ = p.throw_once(&mut rng);
            assert_eq!(occ.iter().sum::<u64>(), p.total_balls());
        }
    }

    #[test]
    fn normalization_splits_long_chains_only() {
        let p = DependentProblem::new(4, vec![11, 4, 2]);
        let n = p.normalized();
        // 11 = 2*4 + 3 -> chains 4,4,3; 4 -> 4; 2 -> 2.
        assert_eq!(n.chains(), &[4, 4, 3, 4, 2]);
        assert_eq!(n.total_balls(), p.total_balls());
        assert!(n.chains().iter().all(|&c| c <= 4));
    }

    /// Lemma 9: the expected maximum is unchanged by normalization.
    /// (Statistical test with generous Monte-Carlo margins.)
    #[test]
    fn lemma9_preserves_expected_max() {
        let p = DependentProblem::new(5, vec![13, 7, 22, 3]);
        let n = p.normalized();
        let mut rng = SmallRng::seed_from_u64(3);
        let ep = p.estimate_max(30_000, &mut rng);
        let en = n.estimate_max(30_000, &mut rng);
        let tol = 5.0 * (ep.std_err + en.std_err);
        assert!(
            (ep.mean - en.mean).abs() < tol,
            "original {} vs normalized {} (tol {tol})",
            ep.mean,
            en.mean
        );
    }

    /// §7.2 conjecture, checked empirically: dependent expected max is at
    /// most the classical expected max for the same N_b, D.
    #[test]
    fn dependent_max_below_classical_max() {
        let d = 8;
        let chains = DependentProblem::uniform_chains(16, 4, d); // N_b = 64
        let classical = DependentProblem::classical(64, d);
        let mut rng = SmallRng::seed_from_u64(4);
        let dep = chains.estimate_max(20_000, &mut rng);
        let cla = classical.estimate_max(20_000, &mut rng);
        assert!(
            dep.mean < cla.mean,
            "dependent {} should be below classical {}",
            dep.mean,
            cla.mean
        );
    }

    #[test]
    fn classical_special_case_matches_classical_module() {
        let d = 6;
        let p = DependentProblem::classical(30, d);
        let mut rng = SmallRng::seed_from_u64(5);
        let dep = p.estimate_max(30_000, &mut rng);
        let cla = crate::classical::estimate_classical_max(30, d, 30_000, &mut rng);
        let tol = 5.0 * (dep.std_err + cla.std_err);
        assert!((dep.mean - cla.mean).abs() < tol);
    }

    #[test]
    fn figure1_reproduces_paper_maxima() {
        let (p, starts) = figure1_instance();
        assert_eq!(p.total_balls(), 12);
        assert_eq!(p.chains().len(), 5);
        assert_eq!(p.bins(), 4);
        let occ = p.throw_at(&starts);
        assert_eq!(occ.iter().max(), Some(&4), "dependent max of Figure 1(a) is 4: {occ:?}");
        assert_eq!(occ.iter().sum::<u64>(), 12);
    }

    #[test]
    fn throw_at_matches_throw_once_support() {
        // throw_at with every start must give occupancies summing to N_b.
        let p = DependentProblem::new(3, vec![2, 5]);
        for s0 in 0..3 {
            for s1 in 0..3 {
                let occ = p.throw_at(&[s0, s1]);
                assert_eq!(occ.iter().sum::<u64>(), 7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_chain_rejected() {
        let _ = DependentProblem::new(3, vec![2, 0]);
    }

    /// Lemma 9, **exactly**: enumerating both the original problem and
    /// its normalization gives identical expected maxima (not merely
    /// statistically indistinguishable ones).
    #[test]
    fn lemma9_exact_equality() {
        for chains in [vec![7u64, 2], vec![9, 3, 1], vec![11]] {
            let p = DependentProblem::new(3, chains);
            let n = p.normalized();
            let ep = p.exact_expected_max();
            let en = n.exact_expected_max();
            assert!(
                (ep - en).abs() < 1e-12,
                "chains {:?}: exact {ep} vs normalized {en}",
                p.chains()
            );
        }
    }

    /// Exact enumeration agrees with the classical exact path when all
    /// chains are singletons.
    #[test]
    fn exact_matches_classical_special_case() {
        let p = DependentProblem::classical(4, 3);
        let dep = p.exact_expected_max();
        let cla = crate::classical::exact_classical_max(4, 3);
        assert!((dep - cla).abs() < 1e-12, "{dep} vs {cla}");
    }

    /// Monte Carlo converges to the exact value.
    #[test]
    fn monte_carlo_matches_exact() {
        let p = DependentProblem::new(4, vec![3, 2, 2, 1]);
        let exact = p.exact_expected_max();
        let mut rng = SmallRng::seed_from_u64(9);
        let mc = p.estimate_max(100_000, &mut rng);
        assert!(
            (mc.mean - exact).abs() < 5.0 * mc.std_err.max(1e-3),
            "MC {} vs exact {exact}",
            mc.mean
        );
    }

    /// The §7.2 conjecture holds *exactly* on every small instance we can
    /// enumerate: dependent <= classical with the same N_b, D.
    #[test]
    fn conjecture_exact_on_small_instances() {
        for (d, chains) in [
            (3usize, vec![2u64, 2]),
            (3, vec![3, 1]),
            (4, vec![2, 2, 2]),
            (4, vec![3, 2, 1]),
            (5, vec![4, 3]),
            (2, vec![2, 1, 1]),
        ] {
            let p = DependentProblem::new(d, chains.clone());
            let n_b = p.total_balls() as usize;
            let cla = DependentProblem::classical(n_b, d);
            let e_dep = p.exact_expected_max();
            let e_cla = cla.exact_expected_max();
            assert!(
                e_dep <= e_cla + 1e-12,
                "D={d} chains {chains:?}: dependent {e_dep} > classical {e_cla}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn exact_enumeration_guard() {
        let p = DependentProblem::uniform_chains(64, 1, 64);
        let _ = p.exact_expected_max();
    }
}
