//! Gamma sampling (Marsaglia–Tsang), implemented in-repo so the workspace
//! needs no probability-distribution dependency.
//!
//! The Table 3 simulator needs sums of `B` i.i.d. `Exp(1)` variables — i.e.
//! `Gamma(B, 1)` draws — to jump between every `B`-th order statistic of a
//! run's record positions (see [`crate::order_stats`]).  Summing `B`
//! exponentials directly would reintroduce the very `O(records)` cost the
//! trick avoids, so we use the Marsaglia–Tsang squeeze method, which draws a
//! `Gamma(a, 1)` variate in `O(1)` expected time for any shape `a ≥ 1`.
//!
//! Reference: G. Marsaglia and W. W. Tsang, "A simple method for generating
//! gamma variables", ACM TOMS 26(3), 2000.

use rand::Rng;

/// Sampler for `Gamma(shape, 1)` with fixed shape `a ≥ 1`.
///
/// Precomputes the method's `d` and `c` constants, so per-draw cost is a
/// couple of transcendental calls.
#[derive(Debug, Clone, Copy)]
pub struct GammaSampler {
    shape: f64,
    d: f64,
    c: f64,
}

impl GammaSampler {
    /// Build a sampler for shape `a`.
    ///
    /// # Panics
    /// Panics if `a < 1` (the boost trick for `a < 1` is not needed in this
    /// repository; block sizes are ≥ 1).
    pub fn new(shape: f64) -> Self {
        assert!(shape >= 1.0, "GammaSampler requires shape >= 1, got {shape}");
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        GammaSampler { shape, d, c }
    }

    /// The shape parameter this sampler draws for.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draw one `Gamma(shape, 1)` variate.
    pub fn sample<RN: Rng + ?Sized>(&self, rng: &mut RN) -> f64 {
        loop {
            // Standard normal via Box–Muller (two uniforms); polar form
            // would also do, but this keeps the loop branch-free.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();

            let v = 1.0 + self.c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            // Squeeze test (fast accept), then full log test.
            if u < 1.0 - 0.0331 * (z * z) * (z * z) {
                return self.d * v3;
            }
            if u.ln() < 0.5 * z * z + self.d * (1.0 - v3 + v3.ln()) {
                return self.d * v3;
            }
        }
    }
}

/// Draw one `Exp(1)` variate (a `Gamma(1,1)`), used for single-record gaps.
#[inline]
pub fn sample_exp1<RN: Rng + ?Sized>(rng: &mut RN) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mean of Gamma(a,1) is a, variance is a: check both within Monte
    /// Carlo tolerance for several shapes.
    #[test]
    fn moments_match_gamma_distribution() {
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        for &shape in &[1.0, 2.0, 7.5, 64.0, 1000.0] {
            let g = GammaSampler::new(shape);
            let n = 40_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..n {
                let x = g.sample(&mut rng);
                assert!(x > 0.0);
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / n as f64;
            let var = sumsq / n as f64 - mean * mean;
            // SEM of the mean is sqrt(a/n); allow 5 sigma.
            let tol_mean = 5.0 * (shape / n as f64).sqrt();
            assert!(
                (mean - shape).abs() < tol_mean,
                "shape {shape}: mean {mean} (tol {tol_mean})"
            );
            // Variance is noisier; 10% relative tolerance is ample at n=40k.
            assert!(
                (var - shape).abs() < 0.1 * shape,
                "shape {shape}: var {var}"
            );
        }
    }

    #[test]
    fn exp1_has_unit_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| sample_exp1(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = GammaSampler::new(8.0);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut a), g.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "shape >= 1")]
    fn sub_one_shape_rejected() {
        let _ = GammaSampler::new(0.5);
    }

    /// Gamma(1,1) must coincide with Exp(1) in distribution: compare CDF at
    /// a few points empirically.
    #[test]
    fn shape_one_is_exponential() {
        let g = GammaSampler::new(1.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 30_000;
        let draws: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        for &t in &[0.5, 1.0, 2.0] {
            let emp = draws.iter().filter(|&&x| x <= t).count() as f64 / n as f64;
            let exact = 1.0 - (-t).exp();
            assert!((emp - exact).abs() < 0.02, "t={t}: emp {emp} vs {exact}");
        }
    }
}
