//! Classical maximum occupancy: `N_b` balls thrown independently and
//! uniformly into `D` bins.
//!
//! Table 1 of the paper estimates `v(k, D) = C(kD, D)/k` — the expected
//! maximum occupancy of `kD` balls in `D` bins, normalized by the average
//! load `k` — "by repeated ball-throwing experiments".  This module is that
//! experiment.

use crate::stats::{Estimate, RunningStats};
use rand::Rng;

/// Throw `n_balls` balls uniformly into `d` bins once; return the maximum
/// bin load.
pub fn max_occupancy_once<RN: Rng + ?Sized>(n_balls: u64, d: usize, rng: &mut RN) -> u64 {
    debug_assert!(d > 0);
    let mut bins = vec![0u64; d];
    for _ in 0..n_balls {
        bins[rng.random_range(0..d)] += 1;
    }
    bins.into_iter().max().unwrap_or(0)
}

/// Monte-Carlo estimate of the expected maximum occupancy `C(n_balls, d)`.
pub fn estimate_classical_max<RN: Rng + ?Sized>(
    n_balls: u64,
    d: usize,
    trials: u64,
    rng: &mut RN,
) -> Estimate {
    let mut acc = RunningStats::new();
    for _ in 0..trials {
        acc.push(max_occupancy_once(n_balls, d, rng) as f64);
    }
    acc.estimate()
}

/// Table 1's overhead factor: `v(k, D) = C(kD, D) / k`.
pub fn overhead_v<RN: Rng + ?Sized>(k: u64, d: usize, trials: u64, rng: &mut RN) -> Estimate {
    estimate_classical_max(k * d as u64, d, trials, rng).scaled(1.0 / k as f64)
}

/// Exact expected maximum occupancy via exponential generating functions.
///
/// `Pr{max ≤ m} = N!·[x^N] (Σ_{i≤m} x^i/i!)^D / D^N`, so
/// `E[max] = Σ_{m≥0} (1 − Pr{max ≤ m})`.  Polynomial arithmetic in `f64`
/// with the `N!/D^N` factor applied in log space; exact up to floating
/// rounding for `n_balls ≤ 170`.
///
/// This makes the small-`(k, D)` corner of Table 1 *exactly* computable —
/// e.g. `v(5,5) = exact_classical_max_egf(25, 5)/5` — instead of
/// Monte-Carlo estimated.
pub fn exact_classical_max_egf(n_balls: u32, d: usize) -> f64 {
    assert!(d >= 1);
    assert!(n_balls <= 170, "EGF method limited to N <= 170 in f64");
    let n = n_balls as usize;
    if n == 0 {
        return 0.0;
    }
    // ln(N!) − N·ln(D)
    let ln_scale: f64 = (1..=n).map(|k| (k as f64).ln()).sum::<f64>() - n as f64 * (d as f64).ln();
    // 1/i! for i ≤ N.
    let mut inv_fact = vec![1.0f64; n + 1];
    for i in 1..=n {
        inv_fact[i] = inv_fact[i - 1] / i as f64;
    }
    let mut expectation = 0.0;
    for m in 0..n {
        // f(x) = Σ_{i≤m} x^i/i!; coefficient N of f^D, truncated at N.
        let base: Vec<f64> = inv_fact[..=m.min(n)].to_vec();
        let mut pow = vec![0.0f64; n + 1];
        pow[0] = 1.0;
        for _ in 0..d {
            let mut next = vec![0.0f64; n + 1];
            for (i, &a) in pow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (j, &b) in base.iter().enumerate() {
                    if i + j > n {
                        break;
                    }
                    next[i + j] += a * b;
                }
            }
            pow = next;
        }
        let p_le_m = if pow[n] <= 0.0 {
            0.0
        } else {
            (pow[n].ln() + ln_scale).exp().clamp(0.0, 1.0)
        };
        expectation += 1.0 - p_le_m;
        if 1.0 - p_le_m < 1e-15 {
            break;
        }
    }
    expectation
}

/// Exact expected maximum occupancy by enumeration over all `d^n` outcomes.
///
/// Exponential in `n_balls`; intended for validating the Monte-Carlo path
/// on tiny instances in tests.
pub fn exact_classical_max(n_balls: u32, d: usize) -> f64 {
    assert!(
        (d as f64).powi(n_balls as i32) <= 2e8,
        "exact enumeration infeasible for {d}^{n_balls} outcomes"
    );
    let outcomes = (d as u64).pow(n_balls);
    let mut total = 0u64;
    let mut bins = vec![0u32; d];
    for code in 0..outcomes {
        bins.iter_mut().for_each(|b| *b = 0);
        let mut c = code;
        for _ in 0..n_balls {
            bins[(c % d as u64) as usize] += 1;
            c /= d as u64;
        }
        total += bins.iter().max().map_or(0, |&b| b as u64);
    }
    total as f64 / outcomes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_bin_gets_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(max_occupancy_once(17, 1, &mut rng), 17);
    }

    #[test]
    fn zero_balls_zero_occupancy() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(max_occupancy_once(0, 4, &mut rng), 0);
    }

    #[test]
    fn max_is_at_least_average_and_at_most_total() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let m = max_occupancy_once(40, 8, &mut rng);
            assert!(m >= 5, "max {m} below average load");
            assert!(m <= 40);
        }
    }

    /// Exact value for 2 balls / 2 bins: max is 2 w.p. 1/2, else 1 -> 1.5.
    #[test]
    fn exact_enumeration_two_by_two() {
        assert!((exact_classical_max(2, 2) - 1.5).abs() < 1e-12);
    }

    /// Exact value for 3 balls / 3 bins: E[max] = (3*3 + 18*2 + 6*1)/27
    /// outcomes: all-same 3 ways (max 3), 2+1 split 18 ways (max 2),
    /// 1+1+1 6 ways (max 1) -> (9 + 36 + 6)/27 = 51/27.
    #[test]
    fn exact_enumeration_three_by_three() {
        assert!((exact_classical_max(3, 3) - 51.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_exact_small_case() {
        let mut rng = SmallRng::seed_from_u64(3);
        let est = estimate_classical_max(3, 3, 60_000, &mut rng);
        let exact = exact_classical_max(3, 3);
        assert!(
            (est.mean - exact).abs() < 6.0 * est.std_err.max(1e-3),
            "MC {} vs exact {exact}",
            est.mean
        );
    }

    /// EGF path agrees with brute-force enumeration wherever both run.
    #[test]
    fn egf_matches_enumeration() {
        for &(n, d) in &[(2u32, 2usize), (3, 3), (4, 3), (5, 2), (6, 4), (8, 2)] {
            let egf = exact_classical_max_egf(n, d);
            let brute = exact_classical_max(n, d);
            assert!(
                (egf - brute).abs() < 1e-10,
                "N={n} D={d}: EGF {egf} vs enumeration {brute}"
            );
        }
    }

    /// Table 1's (k=5, D=5) cell, exactly: v = E[max of 25 balls in 5
    /// bins]/5.  The exact value is 1.5432…; our Monte Carlo (1.53) agrees,
    /// while the paper prints 1.6 — i.e. the paper's own estimate carries
    /// ~0.06 of sampling/rounding slack, which the EGF computation settles.
    #[test]
    fn table1_corner_exact() {
        let v = exact_classical_max_egf(25, 5) / 5.0;
        assert!((v - 1.5432).abs() < 0.001, "exact v(5,5) = {v}");
        // And Monte Carlo converges to it.
        let mut rng = SmallRng::seed_from_u64(8);
        let mc = estimate_classical_max(25, 5, 60_000, &mut rng);
        assert!(
            (mc.mean - exact_classical_max_egf(25, 5)).abs() < 5.0 * mc.std_err,
            "MC {} vs exact {}",
            mc.mean,
            exact_classical_max_egf(25, 5)
        );
    }

    #[test]
    fn egf_monotone_in_balls_and_bins() {
        assert!(exact_classical_max_egf(30, 5) > exact_classical_max_egf(20, 5));
        // More bins spread fewer balls per bin but raise the max's
        // selection pressure: for fixed N the max decreases with D.
        assert!(exact_classical_max_egf(30, 10) < exact_classical_max_egf(30, 5));
    }

    #[test]
    fn egf_edge_cases() {
        assert_eq!(exact_classical_max_egf(0, 4), 0.0);
        assert!((exact_classical_max_egf(7, 1) - 7.0).abs() < 1e-9);
        // One ball: max is exactly 1.
        assert!((exact_classical_max_egf(1, 9) - 1.0).abs() < 1e-12);
    }

    /// The headline sanity anchor from Table 1: v(1000, D) ≈ 1 for any D
    /// (heavy average load concentrates the maximum near the mean).
    #[test]
    fn large_k_overhead_approaches_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = overhead_v(1000, 5, 30, &mut rng);
        assert!(v.mean > 1.0 && v.mean < 1.1, "v = {}", v.mean);
    }

    /// Small k, moderate D: overhead must be clearly above 1 (Table 1 shows
    /// 1.6–2.7 across its D range for k = 5).
    #[test]
    fn small_k_overhead_clearly_above_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = overhead_v(5, 50, 200, &mut rng);
        assert!(v.mean > 1.5, "v = {}", v.mean);
    }

    #[test]
    fn overhead_decreases_in_k_for_fixed_d() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v5 = overhead_v(5, 10, 400, &mut rng).mean;
        let v50 = overhead_v(50, 10, 400, &mut rng).mean;
        assert!(v5 > v50, "v(5,10)={v5} should exceed v(50,10)={v50}");
    }
}
