//! The probability-generating-function machinery of §7.2.
//!
//! For a dependent occupancy problem, the occupancy `X` of one fixed bin
//! has PGF (eq. 6)
//!
//! ```text
//! G_X(z) = Π_{1≤j≤D} (1 − j/D + jz/D)^{n_j}
//! ```
//!
//! after Lemma 9 normalization (`n_j` chains of length `j ≤ D`; a chain
//! of length `j` covers the bin with probability `j/D`).  The residue /
//! saddle-point argument of eqs. (7)–(13) turns this into the tail bound
//!
//! ```text
//! Pr{X > m} ≤ G_X(P) / ((P − 1)·P^m)        for any P > 1,   (eq. 18)
//! ```
//!
//! and summing tails gives `E[X_max] ≤ T + D·Σ_{m≥T} Pr{X > m}` (eq. 5).
//! This module evaluates the *exact* per-chain product (the paper
//! simplifies it to `(1 + (P−1)/D)^{N_b}` in step 12, which is always ≥
//! the product), optimizing `P` and `T` numerically — a strictly tighter
//! finite-size version of Theorem 2's bound.

use crate::dependent::DependentProblem;

/// The PGF of one bin's occupancy for a (normalized) dependent problem.
#[derive(Debug, Clone)]
pub struct BinOccupancyPgf {
    /// `(coverage probability j/D, multiplicity n_j)` per distinct length.
    factors: Vec<(f64, u64)>,
    d: usize,
    n_b: u64,
}

impl BinOccupancyPgf {
    /// Build from a problem (normalizing per Lemma 9 first).
    pub fn new(problem: &DependentProblem) -> Self {
        let norm = problem.normalized();
        let d = norm.bins();
        let mut counts = vec![0u64; d + 1];
        for &len in norm.chains() {
            counts[len as usize] += 1;
        }
        let factors = counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &n)| n > 0)
            .map(|(j, &n)| (j as f64 / d as f64, n))
            .collect();
        BinOccupancyPgf {
            factors,
            d,
            n_b: norm.total_balls(),
        }
    }

    /// Evaluate `G_X(z)` (for `z ≥ 0`; all coefficients are probabilities).
    pub fn eval(&self, z: f64) -> f64 {
        self.factors
            .iter()
            .map(|&(p, n)| (1.0 - p + p * z).powf(n as f64))
            .product()
    }

    /// `ln G_X(z)`, numerically stable for large problems.
    pub fn ln_eval(&self, z: f64) -> f64 {
        self.factors
            .iter()
            .map(|&(p, n)| n as f64 * (1.0 - p + p * z).ln())
            .sum()
    }

    /// Mean occupancy of the bin: `G'_X(1) = N_b/D`.
    pub fn mean(&self) -> f64 {
        self.n_b as f64 / self.d as f64
    }

    /// Eq. (18) with the exact product, optimized over `P > 1`:
    /// an upper bound on `Pr{X > m}`.
    pub fn tail_bound(&self, m: u64) -> f64 {
        // ln bound(P) = ln G(P) − ln(P−1) − m·ln P; scan + golden refine
        // over ln(P−1).
        let ln_bound = |t: f64| -> f64 {
            let p = 1.0 + t.exp();
            self.ln_eval(p) - t - m as f64 * p.ln()
        };
        let mut best = f64::INFINITY;
        let mut best_t = 0.0;
        for i in 0..=160 {
            let t = -14.0 + 28.0 * i as f64 / 160.0;
            let v = ln_bound(t);
            if v < best {
                best = v;
                best_t = t;
            }
        }
        let (mut lo, mut hi) = (best_t - 0.25, best_t + 0.25);
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..60 {
            let m1 = hi - phi * (hi - lo);
            let m2 = lo + phi * (hi - lo);
            if ln_bound(m1) <= ln_bound(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        ln_bound(0.5 * (lo + hi)).min(best).exp().min(1.0)
    }

    /// Eq. (5) assembled: `E[X_max] ≤ min_T (T + D·Σ_{m≥T} Pr{X > m})`,
    /// with each tail from [`BinOccupancyPgf::tail_bound`].
    pub fn expected_max_bound(&self) -> f64 {
        let mean = self.mean();
        let mut best = f64::INFINITY;
        // T below the mean is useless; tails decay geometrically, so a
        // generous truncation horizon suffices.
        let t_lo = mean.floor() as u64;
        let t_hi = (t_lo + 1).max((4.0 * mean) as u64 + 8 * self.d as u64 + 40);
        for t in t_lo..=t_hi {
            let mut sum = 0.0;
            let mut m = t;
            loop {
                let tail = self.tail_bound(m);
                sum += tail;
                m += 1;
                if tail < 1e-12 || m > t_hi + 200 {
                    break;
                }
            }
            let bound = t as f64 + self.d as f64 * sum;
            if bound < best {
                best = bound;
            } else if bound > best + self.d as f64 {
                // Past the minimum and climbing: stop scanning.
                break;
            }
        }
        best.min(self.n_b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::upper_bound_expected_max;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn problem() -> DependentProblem {
        DependentProblem::new(8, vec![5, 3, 3, 2, 2, 1, 1, 1, 14])
    }

    #[test]
    fn pgf_is_a_probability_distribution() {
        let g = BinOccupancyPgf::new(&problem());
        assert!((g.eval(1.0) - 1.0).abs() < 1e-12, "G(1) = 1");
        // G(0) = Pr(X = 0); the length-14 chain normalizes to a full lap
        // of length D that covers every bin, so Pr(X = 0) = 0 exactly.
        assert_eq!(g.eval(0.0), 0.0);
        let no_laps = BinOccupancyPgf::new(&DependentProblem::new(8, vec![3, 2, 1]));
        assert!(no_laps.eval(0.0) > 0.0 && no_laps.eval(0.0) < 1.0);
        // Numeric derivative at 1 equals the mean N_b/D.
        let h = 1e-6;
        let deriv = (g.eval(1.0 + h) - g.eval(1.0 - h)) / (2.0 * h);
        assert!((deriv - g.mean()).abs() < 1e-4, "{deriv} vs {}", g.mean());
    }

    #[test]
    fn ln_eval_consistent_with_eval() {
        let g = BinOccupancyPgf::new(&problem());
        for z in [0.3, 1.0, 2.5, 7.0] {
            assert!((g.ln_eval(z) - g.eval(z).ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn tail_bound_dominates_monte_carlo_tails() {
        let p = problem();
        let g = BinOccupancyPgf::new(&p);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 40_000;
        // Empirical tail of bin 0's occupancy.
        let mut exceed = [0u64; 24];
        for _ in 0..trials {
            let occ = p.throw_once(&mut rng)[0];
            for (m, slot) in exceed.iter_mut().enumerate() {
                if occ > m as u64 {
                    *slot += 1;
                }
            }
        }
        for (m, &count) in exceed.iter().enumerate() {
            let emp = count as f64 / trials as f64;
            let bound = g.tail_bound(m as u64);
            assert!(
                bound + 3.0 * (emp / trials as f64).sqrt() + 1e-9 >= emp,
                "m={m}: bound {bound} below empirical {emp}"
            );
        }
    }

    #[test]
    fn tail_bound_decays() {
        let g = BinOccupancyPgf::new(&problem());
        let mean = g.mean();
        let near = g.tail_bound(mean as u64 + 2);
        let far = g.tail_bound(mean as u64 + 12);
        assert!(far < near);
        assert!(far < 1e-3, "far tail {far}");
    }

    #[test]
    fn expected_max_bound_dominates_simulation() {
        let p = problem();
        let g = BinOccupancyPgf::new(&p);
        let mut rng = SmallRng::seed_from_u64(4);
        let mc = p.estimate_max(20_000, &mut rng);
        let bound = g.expected_max_bound();
        assert!(
            bound + 1e-9 >= mc.mean - 3.0 * mc.std_err,
            "PGF bound {bound} below MC {}",
            mc.mean
        );
        // And it is not vacuous.
        assert!(bound < 3.0 * mc.mean, "PGF bound {bound} vs MC {}", mc.mean);
    }

    /// The exact product is tighter than the paper's step-12
    /// simplification, so the PGF bound should (weakly) beat the rho*
    /// bound built on the simplified form.
    #[test]
    fn exact_pgf_tightens_the_simplified_bound() {
        for (d, chains) in [
            (8usize, vec![8u64; 8]),          // chains of length D
            (10, vec![5; 10]),                // half-length chains
            (6, vec![3, 3, 2, 2, 1, 1]),      // mixed
        ] {
            let p = DependentProblem::new(d, chains);
            let pgf = BinOccupancyPgf::new(&p).expected_max_bound();
            let simplified = upper_bound_expected_max(p.total_balls(), d);
            assert!(
                pgf <= simplified + 0.5,
                "D={d}: PGF {pgf} vs simplified {simplified}"
            );
        }
    }

    #[test]
    fn classical_case_matches_binomial_pgf() {
        // All singleton chains: G(z) = (1 - 1/D + z/D)^{N_b}, the
        // binomial PGF.
        let p = DependentProblem::classical(20, 4);
        let g = BinOccupancyPgf::new(&p);
        for z in [0.5f64, 1.5, 3.0] {
            let expected = (1.0 - 0.25 + 0.25 * z).powi(20);
            assert!((g.eval(z) - expected).abs() < 1e-9);
        }
    }
}
