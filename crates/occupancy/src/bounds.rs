//! Theorem 2's analytic upper bounds on expected maximum occupancy.
//!
//! The paper proves, for any dependent occupancy problem with `N_b` balls
//! and `D` bins,
//!
//! ```text
//! E[X_max] ≤ ρ*·N_b/D + 2,                               (eq. 26)
//! ```
//!
//! where `ρ*` is the smallest `ρ` satisfying eq. (24):
//!
//! ```text
//! ρ ≥ D·ln(1+α/D)/ln(1+α) + D·lnD/(N_b·ln(1+α)) − 2D·lnα/(N_b·ln(1+α))
//! ```
//!
//! for a free parameter `α > 0`.  The closed forms of Theorem 2 are the
//! asymptotic expansions of this optimization at the paper's two parameter
//! regimes (`N_b = kD` with constant `k`; `N_b = rD·lnD`).  We implement
//! both the closed forms and the numeric optimization over `α`, which is
//! tighter at finite sizes and valid everywhere.

/// Right-hand side of eq. (24) as a function of `α`.
fn rho_of_alpha(n_b: f64, d: f64, alpha: f64) -> f64 {
    let l1a = (1.0 + alpha).ln();
    d * (1.0 + alpha / d).ln() / l1a + d * d.ln() / (n_b * l1a)
        - 2.0 * d * alpha.ln() / (n_b * l1a)
}

/// Numerically minimize eq. (24) over `α`, returning `ρ*`.
///
/// A coarse log-grid scan locates the basin; golden-section search refines
/// it.  The function is smooth and (empirically) unimodal in `ln α` over
/// the scanned range, so this converges robustly.
pub fn rho_star(n_b: u64, d: usize) -> f64 {
    assert!(n_b > 0 && d > 0);
    let n_b = n_b as f64;
    let d = d as f64;
    // Coarse scan over ln α ∈ [−12, 12].
    let mut best_t = 0.0f64;
    let mut best = f64::INFINITY;
    let coarse = 240;
    for i in 0..=coarse {
        let t = -12.0 + 24.0 * i as f64 / coarse as f64;
        let v = rho_of_alpha(n_b, d, t.exp());
        if v.is_finite() && v < best {
            best = v;
            best_t = t;
        }
    }
    // Golden-section refinement around the best coarse point.
    let (mut lo, mut hi) = (best_t - 0.2, best_t + 0.2);
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..80 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if rho_of_alpha(n_b, d, m1.exp()) <= rho_of_alpha(n_b, d, m2.exp()) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    rho_of_alpha(n_b, d, (0.5 * (lo + hi)).exp()).min(best)
}

/// Eq. (26): numeric upper bound on the expected maximum occupancy of any
/// dependent (hence also classical) problem with `n_b` balls and `d` bins.
///
/// Capped at `n_b`, the trivial maximum.
pub fn upper_bound_expected_max(n_b: u64, d: usize) -> f64 {
    let bound = rho_star(n_b, d) * n_b as f64 / d as f64 + 2.0;
    bound.min(n_b as f64)
}

/// Theorem 2, Case 1 closed form (`N_b = kD`, constant `k`, `D → ∞`):
///
/// ```text
/// E[X_max] ≤ (lnD/lnlnD)·(1 + lnlnlnD/lnlnD + (1+lnk)/lnlnD)
/// ```
///
/// (the `O(·)` term is dropped).  Requires `ln ln D > 0`, i.e. `D ≥ 3`;
/// returns `NaN` below that.  (For `3 ≤ D < e^e` the `lnlnln D` correction
/// is negative, which is fine — the expansion is simply loose there.)
pub fn theorem2_case1(k: f64, d: usize) -> f64 {
    let d = d as f64;
    let lnd = d.ln();
    let llnd = lnd.ln();
    if llnd <= 0.0 {
        return f64::NAN;
    }
    let lllnd = llnd.ln();
    (lnd / llnd) * (1.0 + lllnd / llnd + (1.0 + k.ln()) / llnd)
}

/// Theorem 2, Case 2 closed form (`N_b = r·D·lnD`, `r = Ω(1)`):
///
/// ```text
/// E[X_max] ≤ (1 + √(2/r) + ln r/(√(2r)·lnD))·N_b/D
/// ```
pub fn theorem2_case2(r: f64, d: usize) -> f64 {
    let d = d as f64;
    let lnd = d.ln();
    let n_b_over_d = r * lnd;
    (1.0 + (2.0 / r).sqrt() + r.ln() / ((2.0 * r).sqrt() * lnd)) * n_b_over_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::estimate_classical_max;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rho_star_is_finite_and_at_least_one() {
        for &(n_b, d) in &[(25u64, 5usize), (100, 10), (2500, 50), (50, 50), (5000, 5)] {
            let rho = rho_star(n_b, d);
            assert!(rho.is_finite(), "rho*({n_b},{d}) = {rho}");
            // E[max] ≥ N_b/D always, so a valid ρ* bound can't be < 1 by
            // much; the optimization itself should stay ≥ 1 in practice.
            assert!(rho > 0.9, "rho*({n_b},{d}) = {rho}");
        }
    }

    /// The whole point of the bound: it must dominate the Monte-Carlo
    /// expected maximum for classical problems across a parameter sweep.
    #[test]
    fn numeric_bound_dominates_monte_carlo() {
        let mut rng = SmallRng::seed_from_u64(10);
        for &(k, d) in &[(5u64, 5usize), (5, 50), (10, 10), (50, 10), (20, 50)] {
            let n_b = k * d as u64;
            let mc = estimate_classical_max(n_b, d, 2_000, &mut rng);
            let bound = upper_bound_expected_max(n_b, d);
            assert!(
                bound + 1e-9 >= mc.mean - 3.0 * mc.std_err,
                "bound {bound} below MC {} at k={k} D={d}",
                mc.mean
            );
        }
    }

    /// The bound should be *useful*, not vacuous: within a small constant
    /// factor of the simulated truth in the table regimes.
    #[test]
    fn numeric_bound_is_not_vacuous() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &(k, d) in &[(10u64, 10usize), (50, 50)] {
            let n_b = k * d as u64;
            let mc = estimate_classical_max(n_b, d, 2_000, &mut rng).mean;
            let bound = upper_bound_expected_max(n_b, d);
            assert!(
                bound < 3.0 * mc,
                "bound {bound} more than 3x MC {mc} at k={k} D={d}"
            );
        }
    }

    #[test]
    fn case1_matches_paper_magnitudes() {
        // For k = 5, D = 1000 the paper's Table 1 reports v ≈ 2.7, i.e.
        // E[max] ≈ 13.5.  The Case 1 closed form (sans O-term) should land
        // in the same regime — same leading behavior, looser by O(1).
        let e = theorem2_case1(5.0, 1000);
        assert!(e > 5.0 && e < 30.0, "case1(5, 1000) = {e}");
    }

    #[test]
    fn case1_undefined_for_tiny_d() {
        assert!(theorem2_case1(5.0, 2).is_nan());
        assert!(theorem2_case1(5.0, 10).is_finite());
        assert!(theorem2_case1(5.0, 1000).is_finite());
    }

    #[test]
    fn case2_tends_to_mean_load_for_large_r() {
        let d = 100;
        let lnd = (d as f64).ln();
        // As r grows, bound/(N_b/D) -> 1.
        let tight = theorem2_case2(100.0, d) / (100.0 * lnd);
        let loose = theorem2_case2(1.0, d) / lnd;
        assert!(tight < 1.25, "r=100 ratio {tight}");
        assert!(loose > tight);
    }

    #[test]
    fn rho_star_decreases_with_heavier_load() {
        // More balls per bin concentrates the max near the mean: ρ* ↓ 1.
        let light = rho_star(5 * 50, 50);
        let heavy = rho_star(1000 * 50, 50);
        assert!(light > heavy, "light {light} heavy {heavy}");
        assert!(heavy < 1.3, "heavy-load rho* should be near 1, got {heavy}");
    }

    #[test]
    fn bound_capped_at_total_balls() {
        // Degenerate: 2 balls in 1000 bins; any sane bound ≤ 2.
        assert!(upper_bound_expected_max(2, 1000) <= 2.0);
    }
}
