//! Exact sampling of a run's block-minimum keys under the paper's
//! average-case input model (§9.3).
//!
//! The paper draws inputs as uniformly random partitions of `{1,…,L·kD}`
//! into `kD` runs of `L` records.  That model is distribution-equal to
//! giving every record an i.i.d. `Uniform(0,1)` key: each run is then `L`
//! sorted uniforms, and the *i*-th smallest has the representation
//!
//! ```text
//! U_(i) = S_i / S_(L+1),   S_i = E_1 + … + E_i,  E_j ~ Exp(1) i.i.d.
//! ```
//!
//! The SRM I/O schedule depends on record keys only through each block's
//! smallest key (plus each run's last key), i.e. through every `B`-th order
//! statistic.  Jumping from one block minimum to the next needs the sum of
//! `B` exponentials — a single `Gamma(B)` draw — so a run of `n` blocks is
//! sampled in `O(n)` time *independent of `B`*.  This is what lets the
//! Table 3 reproduction run at the paper's scale (`N' = 1000·kDB` records,
//! `B = 1000`) without materializing records.

use crate::gamma::{sample_exp1, GammaSampler};
use rand::Rng;

/// The sampled per-block minima of one run, plus the run's final key.
///
/// # Examples
///
/// ```
/// use occupancy::BlockMinima;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// // A run of 10^6 records in blocks of 1000: sampled in O(1000) time,
/// // never materializing a single record.
/// let bm = BlockMinima::sample(1_000_000, 1000, &mut rng);
/// assert_eq!(bm.blocks(), 1000);
/// assert!(bm.minima.windows(2).all(|w| w[0] < w[1]));
/// assert!(bm.last_key < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMinima {
    /// `minima[j]` is the smallest key of block `j`; strictly increasing,
    /// all in `(0, 1)`.
    pub minima: Vec<f64>,
    /// Key of the run's last record (`U_(L)`); at least `minima.last()`.
    pub last_key: f64,
}

impl BlockMinima {
    /// Sample the block minima of a run of `records` records in blocks of
    /// `block` records (the final block may be partial).
    ///
    /// # Panics
    /// Panics if `records == 0` or `block == 0`.
    pub fn sample<RN: Rng + ?Sized>(records: u64, block: u64, rng: &mut RN) -> Self {
        assert!(records > 0 && block > 0);
        let n_blocks = records.div_ceil(block);
        let gamma_b = GammaSampler::new(block as f64);

        // S_{jB+1} for each block j, built incrementally.
        let mut partial = Vec::with_capacity(n_blocks as usize);
        let mut s = sample_exp1(rng); // S_1: first record of block 0
        partial.push(s);
        for _ in 1..n_blocks {
            s += gamma_b.sample(rng); // advance B records
            partial.push(s);
        }
        // Tail: records in the final block.
        let tail = records - (n_blocks - 1) * block;
        // S_L = S_{(n_blocks-1)B+1} + Gamma(tail-1); S_{L+1} = S_L + Exp.
        let s_l = if tail > 1 {
            s + GammaSampler::new((tail - 1) as f64).sample(rng)
        } else {
            s
        };
        let total = s_l + sample_exp1(rng); // S_{L+1}
        let minima: Vec<f64> = partial.into_iter().map(|x| x / total).collect();
        BlockMinima {
            minima,
            last_key: s_l / total,
        }
    }

    /// Number of blocks in the run.
    pub fn blocks(&self) -> usize {
        self.minima.len()
    }

    /// Naive reference sampler: draw `records` uniforms, sort, take every
    /// `block`-th.  `O(records · log records)`; used to validate
    /// [`BlockMinima::sample`] in tests and benchmarks.
    pub fn sample_naive<RN: Rng + ?Sized>(records: u64, block: u64, rng: &mut RN) -> Self {
        assert!(records > 0 && block > 0);
        let mut keys: Vec<f64> = (0..records).map(|_| rng.random::<f64>()).collect();
        keys.sort_by(f64::total_cmp);
        let minima = keys.iter().step_by(block as usize).copied().collect();
        BlockMinima {
            minima,
            last_key: keys.last().copied().unwrap_or(0.0),
        }
    }
}

/// Both boundary keys of every block of a run: the smallest key
/// (`U_(jB+1)`, the forecasting/ranking key) *and* the largest key
/// (`U_((j+1)B)`, the key at which the block is depleted by a merge).
///
/// The SRM block-level simulator needs both: minima drive the forecasting
/// table and the flush ranking; maxima decide the instant a leading block's
/// buffer frees.  Sampled with the same `Gamma` partial-sum walk as
/// [`BlockMinima`], still `O(#blocks)` independent of `B`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBounds {
    /// Smallest key per block; strictly increasing.
    pub minima: Vec<f64>,
    /// Largest key per block; `minima[j] < maxima[j] < minima[j+1]` (with
    /// equality of min and max for single-record blocks).
    pub maxima: Vec<f64>,
}

impl BlockBounds {
    /// Sample a run of `records` records in blocks of `block`.
    ///
    /// # Panics
    /// Panics if `records == 0` or `block == 0`.
    pub fn sample<RN: Rng + ?Sized>(records: u64, block: u64, rng: &mut RN) -> Self {
        assert!(records > 0 && block > 0);
        let n_blocks = records.div_ceil(block);
        let gamma_gap = (block > 1).then(|| GammaSampler::new((block - 1) as f64));
        let mut minima = Vec::with_capacity(n_blocks as usize);
        let mut maxima = Vec::with_capacity(n_blocks as usize);
        let mut s = 0.0f64;
        for j in 0..n_blocks {
            // Jump over the gap from the previous block's max to this
            // block's min (one record), then across the block's interior.
            s += sample_exp1(rng);
            minima.push(s);
            let in_block = if j + 1 < n_blocks {
                block
            } else {
                records - j * block
            };
            if in_block > 1 {
                s += if in_block == block {
                    gamma_gap.as_ref().expect("block > 1").sample(rng) // lint:allow(panic) Some whenever block > 1, the only way here
                } else {
                    GammaSampler::new((in_block - 1) as f64).sample(rng)
                };
            }
            maxima.push(s);
        }
        // One more exponential for S_{L+1}, the normalizer.
        let total = s + sample_exp1(rng);
        for m in minima.iter_mut().chain(maxima.iter_mut()) {
            *m /= total;
        }
        BlockBounds { minima, maxima }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.minima.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shape_invariants() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &(records, block) in &[(1u64, 1u64), (5, 2), (100, 7), (1000, 1000), (1001, 1000)] {
            let bm = BlockMinima::sample(records, block, &mut rng);
            assert_eq!(bm.blocks() as u64, records.div_ceil(block));
            assert!(bm.minima.windows(2).all(|w| w[0] < w[1]), "not increasing");
            assert!(bm.minima.iter().all(|&k| k > 0.0 && k < 1.0));
            assert!(bm.last_key >= *bm.minima.last().unwrap());
            assert!(bm.last_key < 1.0);
        }
    }

    /// The first block minimum is `U_(1)` of `L` uniforms: mean `1/(L+1)`.
    #[test]
    fn first_minimum_mean_matches_order_statistic() {
        let mut rng = SmallRng::seed_from_u64(2);
        let l = 50u64;
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| BlockMinima::sample(l, 10, &mut rng).minima[0])
            .sum::<f64>()
            / n as f64;
        let expected = 1.0 / (l + 1) as f64;
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "mean {mean} vs {expected}"
        );
    }

    /// Block j's minimum is `U_(jB+1)`: mean `(jB+1)/(L+1)`.  Check the
    /// whole vector of means against the closed form.
    #[test]
    fn all_minima_means_match_beta_expectations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (l, b) = (60u64, 15u64);
        let n = 20_000;
        let n_blocks = l.div_ceil(b) as usize;
        let mut sums = vec![0.0; n_blocks];
        for _ in 0..n {
            let bm = BlockMinima::sample(l, b, &mut rng);
            for (s, m) in sums.iter_mut().zip(&bm.minima) {
                *s += m;
            }
        }
        for (j, s) in sums.iter().enumerate() {
            let mean = s / n as f64;
            let expected = (j as f64 * b as f64 + 1.0) / (l + 1) as f64;
            assert!(
                (mean - expected).abs() < 0.02,
                "block {j}: mean {mean} vs {expected}"
            );
        }
    }

    /// Fast sampler and naive sampler must agree in distribution: compare
    /// the mean and the standard deviation of a middle block's minimum.
    #[test]
    fn fast_matches_naive_distribution() {
        let (l, b) = (40u64, 8u64);
        let n = 25_000;
        let mut rng = SmallRng::seed_from_u64(4);
        let collect = |naive: bool, rng: &mut SmallRng| -> (f64, f64) {
            let mut acc = crate::stats::RunningStats::new();
            for _ in 0..n {
                let bm = if naive {
                    BlockMinima::sample_naive(l, b, rng)
                } else {
                    BlockMinima::sample(l, b, rng)
                };
                acc.push(bm.minima[2]); // U_(17)
            }
            (acc.mean(), acc.std_dev())
        };
        let (mf, sf) = collect(false, &mut rng);
        let (mn, sn) = collect(true, &mut rng);
        assert!((mf - mn).abs() < 0.01, "means {mf} vs {mn}");
        assert!((sf - sn).abs() < 0.01, "std devs {sf} vs {sn}");
    }

    /// Last key is `U_(L)`: mean `L/(L+1)`.
    #[test]
    fn last_key_mean_matches() {
        let mut rng = SmallRng::seed_from_u64(5);
        let l = 30u64;
        let n = 30_000;
        let mean: f64 = (0..n)
            .map(|_| BlockMinima::sample(l, 7, &mut rng).last_key)
            .sum::<f64>()
            / n as f64;
        let expected = l as f64 / (l + 1) as f64;
        assert!((mean - expected).abs() < 0.01, "mean {mean} vs {expected}");
    }

    #[test]
    fn single_record_run() {
        let mut rng = SmallRng::seed_from_u64(6);
        let bm = BlockMinima::sample(1, 4, &mut rng);
        assert_eq!(bm.blocks(), 1);
        assert_eq!(bm.minima[0], bm.last_key);
    }

    #[test]
    fn bounds_interleave_strictly() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &(records, block) in &[(1u64, 1u64), (10, 3), (100, 7), (64, 8), (65, 8)] {
            let bb = BlockBounds::sample(records, block, &mut rng);
            assert_eq!(bb.blocks() as u64, records.div_ceil(block));
            for j in 0..bb.blocks() {
                assert!(bb.minima[j] <= bb.maxima[j], "block {j} min>max");
                if block > 1 && (j + 1 < bb.blocks() || records % block != 1) {
                    // Multi-record blocks have strictly separated bounds.
                    if (j + 1 < bb.blocks() && block > 1)
                        || (j + 1 == bb.blocks() && records - j as u64 * block > 1)
                    {
                        assert!(bb.minima[j] < bb.maxima[j], "block {j} not spread");
                    }
                }
                if j + 1 < bb.blocks() {
                    assert!(bb.maxima[j] < bb.minima[j + 1], "blocks {j},{} overlap", j + 1);
                }
            }
            assert!(*bb.maxima.last().unwrap() < 1.0);
            assert!(bb.minima[0] > 0.0);
        }
    }

    /// Block max means: U_((j+1)B) has mean (j+1)B/(L+1).
    #[test]
    fn maxima_means_match_beta_expectations() {
        let mut rng = SmallRng::seed_from_u64(8);
        let (l, b) = (60u64, 15u64);
        let n = 20_000;
        let blocks = l.div_ceil(b) as usize;
        let mut sums = vec![0.0; blocks];
        for _ in 0..n {
            let bb = BlockBounds::sample(l, b, &mut rng);
            for (s, m) in sums.iter_mut().zip(&bb.maxima) {
                *s += m;
            }
        }
        for (j, s) in sums.iter().enumerate() {
            let mean = s / n as f64;
            let expected = ((j as u64 + 1) * b).min(l) as f64 / (l + 1) as f64;
            assert!(
                (mean - expected).abs() < 0.02,
                "block {j}: mean {mean} vs {expected}"
            );
        }
    }

    /// Minima from BlockBounds must be distributed like BlockMinima's.
    #[test]
    fn bounds_minima_agree_with_blockminima_distribution() {
        let (l, b) = (48u64, 6u64);
        let n = 20_000;
        let mut rng = SmallRng::seed_from_u64(9);
        let mean_of = |use_bounds: bool, rng: &mut SmallRng| -> f64 {
            (0..n)
                .map(|_| {
                    if use_bounds {
                        BlockBounds::sample(l, b, rng).minima[3]
                    } else {
                        BlockMinima::sample(l, b, rng).minima[3]
                    }
                })
                .sum::<f64>()
                / n as f64
        };
        let a = mean_of(true, &mut rng);
        let c = mean_of(false, &mut rng);
        assert!((a - c).abs() < 0.01, "{a} vs {c}");
    }
}
