//! # occupancy — maximum-occupancy problems behind SRM's analysis
//!
//! The SRM paper (§7) reduces the I/O cost of its merge to the **dependent
//! maximum occupancy** problem: `C` chains of balls, totalling `N_b` balls,
//! are thrown into `D` bins; a chain of length `ℓ` landing in bin `s`
//! deposits its balls cyclically into bins `s, s+1, …, s+ℓ−1 (mod D)`.  The
//! classical occupancy problem (`N_b` independent balls) is the special case
//! of all chains having length 1.
//!
//! This crate implements:
//!
//! * [`classical`] — Monte-Carlo estimation of the expected maximum
//!   occupancy `C(N_b, D)` (the quantity tabulated in the paper's Table 1
//!   as `v(k, D) = C(kD, D)/k`) plus exact small-case enumeration;
//! * [`dependent`] — the chain-throwing process, Lemma 9's normalization
//!   (chains longer than `D` split without changing the occupancy
//!   distribution), and Monte-Carlo maxima, used for Figure 1 and for the
//!   §7.2 conjecture experiment;
//! * [`bounds`] — Theorem 2's closed-form upper bounds and the numeric
//!   `ρ*` optimization of eq. (24) that the closed forms asymptotically
//!   approximate;
//! * [`gamma`] — a Marsaglia–Tsang gamma sampler (implemented here so the
//!   repository needs no dependency beyond `rand`);
//! * [`order_stats`] — exact sampling of every `B`-th order statistic of a
//!   run's record positions, the trick that lets the Table 3 simulator run
//!   at the paper's scale without materializing records;
//! * [`stats`] — running means, standard errors and confidence intervals
//!   for all the estimators above.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod classical;
pub mod dependent;
pub mod gamma;
pub mod order_stats;
pub mod pgf;
pub mod stats;

pub use bounds::{rho_star, theorem2_case1, theorem2_case2, upper_bound_expected_max};
pub use classical::{
    estimate_classical_max, exact_classical_max_egf, max_occupancy_once, overhead_v,
};
pub use dependent::{figure1_instance, DependentProblem};
pub use gamma::GammaSampler;
pub use order_stats::{BlockBounds, BlockMinima};
pub use pgf::BinOccupancyPgf;
pub use stats::{Estimate, RunningStats};
