//! The SRM merging procedure (§5): record-level engine.
//!
//! Merges `R` cyclically striped, forecast-formatted runs into one output
//! run, driving the I/O schedule of [`crate::scheduler`] and the internal
//! loser-tree merge concurrently (in the counting model, "concurrently"
//! means reads are initiated at every legal opportunity — the earliest
//! possible time, which is what the dedicated `M_D` buffers exist for —
//! and the merge consumes records whenever no read can be initiated).
//!
//! # Degraded mode
//!
//! The merge is deliberately oblivious to disk death.  When the array is a
//! [`pdisk::ParityDiskArray`] with a dead disk, the forecast-driven
//! schedule below is **unchanged**: the merge still asks for the dead
//! disk's next-needed block in the same parallel operation it always
//! would, and the parity layer serves it by reconstruction (one extra
//! parallel read of the surviving disks, counted as
//! `IoStats::reconstructed_reads`, never as a schedule read).  Because the
//! schedule — and therefore the sequence of records consumed and emitted —
//! is byte-identical to the failure-free execution, losing a disk mid-sort
//! changes *cost*, never *output*.

use crate::error::{Result, SrmError};
use crate::key::{BlockKey, RunId};
use crate::loser_tree::LoserTree;
use crate::output::RunWriter;
use crate::scheduler::{PlannedRead, ScheduleStats, Scheduler};
use pdisk::block::NO_BLOCK;
use pdisk::trace::{TraceBlock, TraceEvent, TraceFlush, TraceRunMeta, TraceSink, TraceTarget};
use pdisk::{
    Block, BlockAddr, BufferPool, DiskArray, DiskId, Forecast, Geometry, ReadTicket, Record,
    StripedRun,
};
use std::collections::{HashMap, VecDeque};

/// Statistics for one merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Scheduling counters (reads, flushes).
    pub schedule: ScheduleStats,
    /// Parallel write operations issued for the output run.
    pub write_ops: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Number of input runs merged.
    pub runs_merged: usize,
}

/// Result of a merge: the output run plus its I/O accounting.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// Layout of the merged output run (forecast-formatted, striped).
    pub run: StripedRun,
    /// I/O accounting for this merge.
    pub stats: MergeStats,
}

struct RunState<'a, R: Record> {
    handle: &'a StripedRun,
    /// Records of the current leading block.
    leading: Vec<R>,
    cursor: usize,
    /// Index of the block that is (or, if `awaiting`, will be) leading.
    cur_idx: u64,
    awaiting: bool,
    exhausted: bool,
}

/// The one parallel read in flight between `submit_read` and
/// `complete_read` in the pipelined engine.
struct InFlightRead<R: Record> {
    ticket: ReadTicket<R>,
    /// The planned fetch set, in ticket (= address) order.
    targets: Vec<(DiskId, BlockKey)>,
    /// Rule-2c flushes performed at submit time, replayed into the
    /// completion-time [`TraceEvent::SchedRead`] annotation.
    flushed: Vec<TraceFlush>,
    /// Targets whose run is not (yet) awaiting them — the blocks that
    /// will land in `M_D`/`M_R` rather than go straight to leading.
    /// Completion gate `P_s` compares `fset_len + pending` to `R + D`.
    pending: usize,
}

/// Merge `runs` into a single run starting on `out_start_disk`.
///
/// The scheduler's memory partition is sized for `R = runs.len()`:
/// `R` leading buffers (`M_L`), `R + D` buffers in `M_R`, `D` in `M_D`, and
/// `2D` of write buffer inside the [`RunWriter`] — `2R + 4D` blocks total,
/// matching §5.1.
///
/// # Examples
///
/// ```
/// use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
/// use srm_core::{merge_runs, read_run, RunWriter};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
///
/// // Two forecast-formatted striped runs…
/// let mut handles = Vec::new();
/// for (start, keys) in [(0u32, [1u64, 3, 5, 7]), (1, [2, 4, 6, 8])] {
///     let mut w = RunWriter::new(geom, DiskId(start));
///     for k in keys { w.push(&mut disks, U64Record(k))?; }
///     handles.push(w.finish(&mut disks)?);
/// }
///
/// // …merged with forecast-and-flush into one sorted run.
/// let out = merge_runs(&mut disks, &handles, DiskId(0))?;
/// let merged = read_run(&mut disks, &out.run)?;
/// assert_eq!(merged.iter().map(|r| r.0).collect::<Vec<_>>(),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// # Ok::<(), srm_core::SrmError>(())
/// ```
pub fn merge_runs<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
    out_start_disk: DiskId,
) -> Result<MergeOutcome> {
    merge_impl(array, runs, out_start_disk, false, 0)
}

/// Like [`merge_runs`], but overlapping disk time with merge time via the
/// split-phase [`DiskArray`] interface: each parallel read is *submitted*
/// at exactly the point the serial engine would execute it, the loser tree
/// keeps consuming already-resident buffers while the read is in flight,
/// and the read is *completed* at the first point its blocks are needed
/// (`P_need`: the tree's winner awaits one of them) or can be admitted
/// (`P_s`: the fetch set has room again).  Output writes are likewise
/// submitted a stripe ahead (write-behind, see
/// [`RunWriter::new_pipelined`]).
///
/// The I/O *schedule* is unchanged: reads and writes are initiated in the
/// same order, at the same record positions, against the same addresses as
/// [`merge_runs`], so the output run, the [`pdisk::IoStats`] deltas, and
/// the logical operation sequence in a model-check trace are identical.
/// Only wall-clock overlap differs — on a backend with real I/O latency
/// (e.g. [`pdisk::FileDiskArray`]) disk time hides behind merge time.  On
/// a synchronous backend the split-phase calls degenerate to the serial
/// ones and the result is the same by construction.
///
/// # Examples
///
/// ```
/// use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
/// use srm_core::{merge_runs_pipelined, read_run, RunWriter};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
/// let mut handles = Vec::new();
/// for (start, keys) in [(0u32, [1u64, 3, 5, 7]), (1, [2, 4, 6, 8])] {
///     let mut w = RunWriter::new(geom, DiskId(start));
///     for k in keys { w.push(&mut disks, U64Record(k))?; }
///     handles.push(w.finish(&mut disks)?);
/// }
///
/// let out = merge_runs_pipelined(&mut disks, &handles, DiskId(0))?;
/// let merged = read_run(&mut disks, &out.run)?;
/// assert_eq!(merged.iter().map(|r| r.0).collect::<Vec<_>>(),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// # Ok::<(), srm_core::SrmError>(())
/// ```
pub fn merge_runs_pipelined<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
    out_start_disk: DiskId,
) -> Result<MergeOutcome> {
    merge_impl(array, runs, out_start_disk, true, 0)
}

/// Like [`merge_runs_pipelined`], but additionally hinting the backend
/// about the next `read_ahead` *predicted* blocks per disk via
/// [`DiskArray::prefetch`] every time a read is submitted.
///
/// The candidates come straight from the forecasting table: ranks 2..
/// of each disk's FDS column (rank 1 is the frontier the submitted read
/// already fetches), taken round-robin by rank across disks.  Every FDS
/// entry is a block the merge *will* read — the forecast is exact, not
/// heuristic — so no hint is ever wasted.  The hint count is capped by
/// the Definition-3 occupancy slack `(R + D − |F_t| − pending) + D`
/// (the buffers admission could hand out before the next submit, plus
/// the `M_D` demand buffers), so deep read-ahead never overshoots what
/// the schedule could accept.
///
/// Hints carry **no semantics**: they are not charged to
/// [`pdisk::IoStats`], not traced, and backends may ignore them
/// entirely (the default implementation does).  The logical operation
/// sequence is therefore byte-identical to [`merge_runs_pipelined`] and
/// [`merge_runs`] at every depth — only wall-clock changes, because a
/// file backend can overlap the *next several* parallel reads with
/// merge work instead of just one.
///
/// # Examples
///
/// ```
/// use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
/// use srm_core::{merge_runs_pipelined_deep, read_run, RunWriter};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
/// let mut handles = Vec::new();
/// for (start, keys) in [(0u32, [1u64, 3, 5, 7]), (1, [2, 4, 6, 8])] {
///     let mut w = RunWriter::new(geom, DiskId(start));
///     for k in keys { w.push(&mut disks, U64Record(k))?; }
///     handles.push(w.finish(&mut disks)?);
/// }
///
/// let out = merge_runs_pipelined_deep(&mut disks, &handles, DiskId(0), 4)?;
/// let merged = read_run(&mut disks, &out.run)?;
/// assert_eq!(merged.iter().map(|r| r.0).collect::<Vec<_>>(),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// # Ok::<(), srm_core::SrmError>(())
/// ```
pub fn merge_runs_pipelined_deep<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
    out_start_disk: DiskId,
    read_ahead: usize,
) -> Result<MergeOutcome> {
    merge_impl(array, runs, out_start_disk, true, read_ahead)
}

fn merge_impl<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
    out_start_disk: DiskId,
    pipelined: bool,
    read_ahead: usize,
) -> Result<MergeOutcome> {
    let geom = array.geometry();
    if runs.is_empty() {
        return Err(SrmError::Config("merge of zero runs".into()));
    }
    for (i, r) in runs.iter().enumerate() {
        if r.records == 0 || r.len_blocks == 0 {
            return Err(SrmError::Config(format!("run {i} is empty")));
        }
        if r.base_offsets.len() != geom.d {
            return Err(SrmError::Config(format!(
                "run {i} laid out for {} disks, array has {}",
                r.base_offsets.len(),
                geom.d
            )));
        }
    }
    let trace = array.trace_sink().cloned();
    if let Some(sink) = &trace {
        sink.emit(TraceEvent::MergeBegin {
            r: runs.len(),
            geom,
            runs: runs
                .iter()
                .map(|h| TraceRunMeta {
                    start_disk: h.start_disk,
                    len_blocks: h.len_blocks,
                    base_offsets: h.base_offsets.clone(),
                })
                .collect(),
        });
    }
    let mut merger = Merger {
        geom,
        runs: runs
            .iter()
            .map(|h| RunState {
                handle: h,
                leading: Vec::new(),
                cursor: 0,
                cur_idx: 0,
                awaiting: false,
                exhausted: false,
            })
            .collect(),
        sched: Scheduler::new(runs.len(), geom.d),
        tree: LoserTree::new(vec![u64::MAX; runs.len()]),
        buffers: HashMap::new(),
        writer: if pipelined {
            RunWriter::new_pipelined(geom, out_start_disk)
        } else {
            RunWriter::new(geom, out_start_disk)
        },
        in_flight: None,
        read_ahead,
        pool: array.buffer_pool().cloned(),
        trace,
    };
    merger.initial_load(array)?;
    if pipelined {
        merger.run_to_completion_pipelined(array)
    } else {
        merger.run_to_completion(array)
    }
}

struct Merger<'a, R: Record> {
    geom: Geometry,
    runs: Vec<RunState<'a, R>>,
    sched: Scheduler,
    tree: LoserTree,
    /// Contents of blocks in `M_R ∪ M_D`, keyed by `(run, block idx)`.
    buffers: HashMap<(RunId, u64), (u64, Vec<R>)>,
    writer: RunWriter<R>,
    /// The one read in flight (pipelined engine only; always `None` in
    /// the serial engine).
    in_flight: Option<InFlightRead<R>>,
    /// Forecast-driven prefetch depth `K`: predicted blocks per disk to
    /// hint at every submit (0 = no hints; serial engine ignores it).
    read_ahead: usize,
    /// Recycling pool shared with the backend, if the stack has one.
    pool: Option<BufferPool<R>>,
    /// Annotation sink, cloned from the array's installed trace (if any).
    trace: Option<TraceSink>,
}

impl<R: Record> Merger<'_, R> {
    fn addr_of(&self, key: &BlockKey) -> BlockAddr {
        self.runs[key.run as usize].handle.addr_of(key.idx)
    }

    /// §5.5 step 1: load block 0 of every run into `M_L` with parallel
    /// reads, seeding the forecasting table from the implanted key tables.
    fn initial_load<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let d = self.geom.d;
        let mut per_disk: Vec<VecDeque<RunId>> = vec![VecDeque::new(); d];
        for (j, st) in self.runs.iter().enumerate() {
            per_disk[st.handle.disk_of(0).index()].push_back(j as RunId);
        }
        loop {
            let mut batch: Vec<(RunId, BlockAddr)> = Vec::with_capacity(d);
            for q in per_disk.iter_mut() {
                if let Some(j) = q.pop_front() {
                    batch.push((j, self.runs[j as usize].handle.addr_of(0)));
                }
            }
            if batch.is_empty() {
                break;
            }
            let addrs: Vec<BlockAddr> = batch.iter().map(|&(_, a)| a).collect();
            let blocks = array.read(&addrs)?;
            self.sched.charge_initial_read(blocks.len());
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::InitLoad {
                    blocks: batch.iter().map(|&(j, a)| (j, a.disk)).collect(),
                });
            }
            for ((j, _), block) in batch.into_iter().zip(blocks) {
                let st = &mut self.runs[j as usize];
                // The block is owned: take the implanted table instead of
                // cloning it.
                let keys = match block.forecast {
                    Forecast::Initial(keys) => keys,
                    f => {
                        return Err(SrmError::Internal(format!(
                            "run {j} block 0 carries {f:?}, expected Initial table"
                        )))
                    }
                };
                for (m, &k) in keys.iter().enumerate() {
                    let idx = m as u64 + 1;
                    if k != NO_BLOCK && idx < st.handle.len_blocks {
                        let disk = st.handle.disk_of(idx);
                        self.sched
                            .fds_mut()
                            .set(disk, j, Some(BlockKey::new(k, j, idx)));
                        if let Some(sink) = &self.trace {
                            sink.emit(TraceEvent::InitImplant { run: j, idx, key: k, disk });
                        }
                    }
                }
                st.leading = block.records;
                st.cursor = 0;
                st.cur_idx = 0;
                let first = st.leading.first().map(|r| r.key()).unwrap_or(u64::MAX);
                self.tree.update(j as usize, first);
            }
        }
        Ok(())
    }

    /// Trace annotations for the rule-2c flush victims of a planned read.
    fn trace_flushes(&self, flushed: &[BlockKey]) -> Vec<TraceFlush> {
        flushed
            .iter()
            .map(|k| TraceFlush {
                run: k.run,
                idx: k.idx,
                key: k.key,
                disk: self.runs[k.run as usize].handle.disk_of(k.idx),
            })
            .collect()
    }

    /// Drop the flush victims' buffers (their contents are still on disk),
    /// recycling the record vectors when the stack has a pool.
    fn drop_flushed(&mut self, flushed: &[BlockKey]) {
        for key in flushed {
            let dropped = self.buffers.remove(&(key.run, key.idx));
            debug_assert!(dropped.is_some(), "flushed block {key:?} had no buffer");
            if let (Some(pool), Some((_, recs))) = (&self.pool, dropped) {
                pool.put_records(recs);
            }
        }
    }

    /// One block's arrival: implant its forecast key, hand it to the
    /// awaiting run's leading buffer or park it in `M_D`, and record the
    /// trace row.  Shared verbatim by the serial and pipelined engines.
    fn arrive_block(
        &mut self,
        disk: DiskId,
        key: BlockKey,
        block: Block<R>,
        traced: &mut Vec<TraceBlock>,
    ) -> Result<()> {
        debug_assert_eq!(
            block.records.first().map(|r| r.key()),
            Some(key.key),
            "forecast key disagrees with block contents"
        );
        let next_idx = key.idx + self.geom.d as u64;
        let implant = match &block.forecast {
            Forecast::Next(k)
                if *k != NO_BLOCK && next_idx < self.runs[key.run as usize].handle.len_blocks =>
            {
                Some(BlockKey::new(*k, key.run, next_idx))
            }
            Forecast::Next(_) => None,
            f => {
                return Err(SrmError::Internal(format!(
                    "non-initial block {key:?} carries {f:?}"
                )))
            }
        };
        let st = &mut self.runs[key.run as usize];
        let to_leading = st.awaiting && st.cur_idx == key.idx;
        traced.push(TraceBlock {
            run: key.run,
            idx: key.idx,
            key: key.key,
            disk,
            implant: implant.as_ref().map(|b| b.key),
            to_leading,
        });
        self.sched.arrive(key, disk, implant, to_leading);
        if to_leading {
            st.leading = block.records;
            st.cursor = 0;
            st.awaiting = false;
            let first = st.leading[0].key();
            self.tree.update(key.run as usize, first);
        } else {
            self.buffers.insert((key.run, key.idx), (key.key, block.records));
        }
        Ok(())
    }

    fn execute_read<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let runs = &self.runs;
        let plan: PlannedRead = self.sched.plan_read(|k: &BlockKey| {
            runs[k.run as usize].handle.disk_of(k.idx)
        });
        let flushed = self.trace_flushes(&plan.flushed);
        self.drop_flushed(&plan.flushed);
        let addrs: Vec<BlockAddr> = plan.targets.iter().map(|(_, k)| self.addr_of(k)).collect();
        let blocks = array.read(&addrs)?;
        let mut traced: Vec<TraceBlock> = Vec::with_capacity(plan.targets.len());
        for ((disk, key), block) in plan.targets.into_iter().zip(blocks) {
            self.arrive_block(disk, key, block, &mut traced)?;
        }
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::SchedRead {
                targets: traced,
                flushed,
                fset_len: self.sched.fset_len(),
                staged_len: self.sched.staged_len(),
            });
        }
        Ok(())
    }

    /// Pipelined step 1: plan the next parallel read at the exact point
    /// the serial engine would execute it, then *submit* it and return
    /// without waiting.  The operation is charged and traced at submit, so
    /// the logical I/O sequence is identical to [`merge_runs`]'s.
    fn submit_read_pipelined<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        debug_assert!(self.in_flight.is_none(), "one read in flight at a time");
        let runs = &self.runs;
        let plan: PlannedRead = self.sched.plan_read(|k: &BlockKey| {
            runs[k.run as usize].handle.disk_of(k.idx)
        });
        let flushed = self.trace_flushes(&plan.flushed);
        self.drop_flushed(&plan.flushed);
        let addrs: Vec<BlockAddr> = plan.targets.iter().map(|(_, k)| self.addr_of(k)).collect();
        let ticket = array.submit_read(&addrs)?;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::ReadSubmit {
                targets: plan
                    .targets
                    .iter()
                    .map(|&(disk, k)| TraceTarget {
                        run: k.run,
                        idx: k.idx,
                        key: k.key,
                        disk,
                    })
                    .collect(),
                flushed: flushed.clone(),
            });
        }
        // Targets already awaited go straight to a leading buffer on
        // arrival; the rest will occupy `M_D`/`M_R` and therefore gate
        // completion via `P_s`.  `advance_run` decrements this count when
        // a run starts awaiting one of the in-flight targets.
        let pending = plan
            .targets
            .iter()
            .filter(|(_, k)| {
                let st = &self.runs[k.run as usize];
                !(st.awaiting && st.cur_idx == k.idx)
            })
            .count();
        self.in_flight = Some(InFlightRead {
            ticket,
            targets: plan.targets,
            flushed,
            pending,
        });
        if self.read_ahead > 0 {
            self.hint_read_ahead(array);
        }
        Ok(())
    }

    /// Hint the backend about the next `read_ahead` forecast-predicted
    /// blocks per disk (ranks 2.. of each FDS column — rank 1 is in the
    /// flight just submitted), round-robin by rank across disks so one
    /// deep column cannot starve the others.
    ///
    /// Depth is capped by Definition-3 occupancy accounting: the
    /// backend's speculative cache holds at most `K` raw block images
    /// per disk, and `K` is clamped to `(R + D) / D` so the cache never
    /// exceeds the `R + D` blocks of the `M_R` budget — a second,
    /// physical-layer copy of the fetch-set allowance, never more.
    /// (The cache is *not* scheduler memory: admission's `|F_t| ≤ R + D`
    /// bound still governs what the merge holds decoded, and every
    /// hinted block is one the schedule will demand-read — the forecast
    /// is exact — so no admission decision is ever preempted.)  Pure
    /// hint — uncharged, untraced, semantics-free — so the op sequence
    /// is untouched at any depth.
    fn hint_read_ahead<A: DiskArray<R>>(&mut self, array: &mut A) {
        let d = self.geom.d;
        let k_cap = (self.runs.len() + d) / d;
        let depth = self.read_ahead.min(k_cap.max(1));
        let budget = depth * d;
        if budget == 0 {
            return;
        }
        let per_disk: Vec<Vec<BlockAddr>> = (0..d)
            .map(|i| {
                self.sched
                    .fds()
                    .upcoming(DiskId::from_index(i), depth)
                    .map(|k| self.addr_of(&k))
                    .collect()
            })
            .collect();
        let mut addrs: Vec<BlockAddr> = Vec::with_capacity(budget);
        'fill: for rank in 0..depth {
            for column in &per_disk {
                if let Some(&a) = column.get(rank) {
                    addrs.push(a);
                    if addrs.len() == budget {
                        break 'fill;
                    }
                }
            }
        }
        if !addrs.is_empty() {
            array.prefetch(&addrs);
        }
    }

    /// Pipelined step 2: wait for the in-flight read and apply its
    /// arrivals — the same per-block handling as the serial
    /// `execute_read`, in the same (address) order.
    fn complete_read_pipelined<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let fl = self
            .in_flight
            .take()
            .ok_or_else(|| SrmError::Internal("completing a read with none in flight".into()))?;
        let blocks = array.complete_read(fl.ticket)?;
        let mut traced: Vec<TraceBlock> = Vec::with_capacity(fl.targets.len());
        for ((disk, key), block) in fl.targets.into_iter().zip(blocks) {
            self.arrive_block(disk, key, block, &mut traced)?;
        }
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::SchedRead {
                targets: traced,
                flushed: fl.flushed,
                fset_len: self.sched.fset_len(),
                staged_len: self.sched.staged_len(),
            });
        }
        Ok(())
    }

    /// The leading block of `run` has been fully consumed: hand the `M_L`
    /// buffer over to the run's next block (exchange rules 1–2 of §5.2),
    /// or mark the run exhausted / awaiting I/O.
    fn advance_run(&mut self, run: usize) -> Result<()> {
        let st = &mut self.runs[run];
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::Deplete {
                run: run as RunId,
                idx: st.cur_idx,
            });
        }
        st.cur_idx += 1;
        let depleted = std::mem::take(&mut st.leading);
        if let Some(pool) = &self.pool {
            pool.put_records(depleted);
        }
        st.cursor = 0;
        if st.cur_idx >= st.handle.len_blocks {
            st.exhausted = true;
            self.tree.update(run, u64::MAX);
            return Ok(());
        }
        if let Some((min_key, recs)) = self.buffers.remove(&(run as RunId, st.cur_idx)) {
            let promoted = self
                .sched
                .promote_to_leading(BlockKey::new(min_key, run as RunId, st.cur_idx));
            if !promoted {
                return Err(SrmError::Internal(format!(
                    "buffered block (run {run}, idx {}) unknown to scheduler",
                    st.cur_idx
                )));
            }
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::Promote {
                    run: run as RunId,
                    idx: st.cur_idx,
                });
            }
            st.leading = recs;
            let first = st.leading[0].key();
            self.tree.update(run, first);
        } else {
            // On disk: merge past this point is gated by the block's min
            // key, which is exactly the forecasting entry for its disk.
            let disk = st.handle.disk_of(st.cur_idx);
            let entry = self
                .sched
                .fds()
                .entry(disk, run as RunId)
                .ok_or_else(|| {
                    SrmError::Internal(format!(
                        "run {run} awaits block {} but FDS has no entry on {disk}",
                        st.cur_idx
                    ))
                })?;
            if entry.idx != st.cur_idx {
                return Err(SrmError::Internal(format!(
                    "FDS entry for run {run} on {disk} is block {}, expected {}",
                    entry.idx, st.cur_idx
                )));
            }
            st.awaiting = true;
            self.tree.update(run, entry.key);
            // Pipelined: if the awaited block is already in flight, it
            // will now arrive straight to leading instead of occupying
            // `M_D`/`M_R`, so it stops counting against the `P_s` gate.
            if let Some(fl) = &mut self.in_flight {
                let cur_idx = self.runs[run].cur_idx;
                if fl
                    .targets
                    .iter()
                    .any(|&(_, k)| k.run as usize == run && k.idx == cur_idx)
                {
                    debug_assert!(fl.pending > 0, "pending underflow");
                    fl.pending -= 1;
                }
            }
        }
        Ok(())
    }

    /// Consume the loser tree's winning record (the caller has
    /// established that its run is not awaiting I/O), then hand the
    /// depleted leading buffer on if the block ran dry.
    fn emit_winner<A: DiskArray<R>>(&mut self, array: &mut A, run: usize, key: u64) -> Result<()> {
        let st = &mut self.runs[run];
        let rec = st.leading[st.cursor];
        st.cursor += 1;
        debug_assert_eq!(rec.key(), key, "tree winner key mismatch");
        self.writer.push(array, rec)?;
        if st.cursor == st.leading.len() {
            self.advance_run(run)?;
        } else {
            let next_key = st.leading[st.cursor].key();
            self.tree.update(run, next_key);
        }
        Ok(())
    }

    fn run_to_completion<A: DiskArray<R>>(mut self, array: &mut A) -> Result<MergeOutcome> {
        loop {
            self.sched.drain();
            if self.sched.can_attempt_read() {
                self.execute_read(array)?;
                continue;
            }
            if self.tree.all_exhausted() {
                break;
            }
            let (run, key) = self.tree.peek();
            if self.runs[run].awaiting {
                // Lemma 1 guarantees the schedule never wedges like this.
                return Err(SrmError::Internal(format!(
                    "merge stuck: run {run} awaits block {} (key {key}) with M_D occupied",
                    self.runs[run].cur_idx
                )));
            }
            self.emit_winner(array, run, key)?;
        }
        self.finish_merge(array)
    }

    /// The pipelined main loop: the same decisions at the same record
    /// positions as [`Merger::run_to_completion`], except that a planned
    /// read is *submitted* where the serial loop would execute it and
    /// *completed* at the first later point where either
    ///
    /// * `P_need` — the loser tree's winner awaits a block, so merging
    ///   cannot proceed without the in-flight arrival (by Lemma 1 the
    ///   awaited block is always among the flight's targets, so this
    ///   never wedges — the stuck branch below is the runtime witness);
    ///   or
    /// * `P_s` — enough buffers have drained that every in-flight
    ///   block headed for `M_D`/`M_R` now fits: `fset_len + pending ≤
    ///   R + D`.  This is exactly the serial engine's "staging empty
    ///   after drain" read condition, so the *next* read is planned at
    ///   the identical record position with the identical `F_t`,
    ///   keeping the op sequence — flush decisions included —
    ///   byte-identical to the serial engine's.  (Completing any later
    ///   would let extra promotions shift `OutRank` and change rule
    ///   2a–2c outcomes.)
    ///
    /// Between submit and completion the loop keeps merging records from
    /// resident leading buffers — that interval is the read-ahead
    /// overlap: loser-tree work, record copies, and output-block encodes
    /// proceed while the disks serve the flight.
    fn run_to_completion_pipelined<A: DiskArray<R>>(
        mut self,
        array: &mut A,
    ) -> Result<MergeOutcome> {
        if let Err(e) = self.pipelined_loop(array) {
            // Quiesce before unwinding: abandon split-phase tickets
            // without touching the (possibly crashed) array.  The ops
            // were already charged and traced at submit; an abandoned
            // write's durability gap (`Write` with no `WriteDurable`)
            // is exactly what the recovery invariant checks, and resume
            // rewrites those frames from the last durable checkpoint.
            self.quiesce();
            return Err(e);
        }
        // Every submitted read's targets are blocks the merge still
        // needs, so their runs cannot all be exhausted while one is in
        // flight.
        debug_assert!(self.in_flight.is_none(), "read in flight at merge end");
        if self.in_flight.is_some() {
            return Err(SrmError::Internal(
                "read still in flight at merge end".into(),
            ));
        }
        self.finish_merge(array)
    }

    /// Drop any in-flight split-phase tickets without completing them.
    ///
    /// Called only on error paths: completion would have to go through
    /// the failed (or crash-poisoned) array, so the tickets are
    /// abandoned instead.  File-backed workers still drain their queues
    /// in order, so a later [`pdisk::DiskArray::sync`] — or reopen-time
    /// torn-frame detection — settles what actually landed.
    fn quiesce(&mut self) {
        self.in_flight = None;
        self.writer.abandon_ticket();
    }

    /// Body of the pipelined main loop; returns once every run is
    /// exhausted.  Split from [`Self::run_to_completion_pipelined`] so
    /// the caller can quiesce in-flight tickets when this errors.
    fn pipelined_loop<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let cap = self.runs.len() + self.geom.d;
        loop {
            self.sched.drain();
            if let Some(fl) = &self.in_flight {
                let p_s = self.sched.fset_len() + fl.pending <= cap;
                let p_need = !self.tree.all_exhausted() && {
                    let (run, _) = self.tree.peek();
                    self.runs[run].awaiting
                };
                if p_need || p_s {
                    self.complete_read_pipelined(array)?;
                    continue;
                }
            } else if self.sched.can_attempt_read() {
                self.submit_read_pipelined(array)?;
                continue;
            }
            if self.tree.all_exhausted() {
                return Ok(());
            }
            let (run, key) = self.tree.peek();
            if self.runs[run].awaiting {
                return Err(SrmError::Internal(format!(
                    "pipelined merge stuck: run {run} awaits block {} (key {key}) \
                     with no read in flight",
                    self.runs[run].cur_idx
                )));
            }
            self.emit_winner(array, run, key)?;
        }
    }

    fn finish_merge<A: DiskArray<R>>(self, array: &mut A) -> Result<MergeOutcome> {
        debug_assert!(self.buffers.is_empty(), "leftover buffered blocks");
        debug_assert!(self.sched.fds().is_empty(), "unread blocks at completion");
        self.sched.assert_capacities();
        let records_out = self.writer.records();
        let runs_merged = self.runs.len();
        let schedule = self.sched.stats();
        let writer = self.writer;
        let run = writer.finish(array)?;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::MergeEnd);
        }
        Ok(MergeOutcome {
            stats: MergeStats {
                schedule,
                write_ops: run.len_blocks.div_ceil(self.geom.d as u64),
                records_out,
                runs_merged,
            },
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{read_run, RunWriter};
    use pdisk::{Geometry, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Write `keys` (must be sorted) as a forecast-formatted run.
    fn put_run(
        array: &mut MemDiskArray<U64Record>,
        geom: Geometry,
        start: u32,
        keys: &[u64],
    ) -> StripedRun {
        let mut w = RunWriter::new(geom, DiskId(start));
        for &k in keys {
            w.push(array, U64Record(k)).unwrap();
        }
        w.finish(array).unwrap()
    }

    fn random_sorted_runs(
        rng: &mut SmallRng,
        n_runs: usize,
        len_range: std::ops::Range<usize>,
    ) -> Vec<Vec<u64>> {
        (0..n_runs)
            .map(|_| {
                let len = rng.random_range(len_range.clone()).max(1);
                let mut v: Vec<u64> = (0..len).map(|_| rng.random_range(0..1_000_000)).collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    fn check_merge(geom: Geometry, run_keys: &[Vec<u64>], seed_starts: &[u32]) -> MergeOutcome {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let handles: Vec<StripedRun> = run_keys
            .iter()
            .zip(seed_starts)
            .map(|(keys, &s)| put_run(&mut a, geom, s, keys))
            .collect();
        a.reset_stats();
        let out = merge_runs(&mut a, &handles, DiskId(0)).unwrap();
        let got = read_run(&mut a, &out.run).unwrap();
        let mut expected: Vec<u64> = run_keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        let got_keys: Vec<u64> = got.iter().map(|r| r.0).collect();
        assert_eq!(got_keys, expected);
        assert_eq!(out.stats.records_out as usize, expected.len());
        out
    }

    #[test]
    fn merge_two_tiny_runs() {
        let geom = Geometry::new(2, 2, 1000).unwrap();
        check_merge(geom, &[vec![1, 3, 5], vec![2, 4, 6, 8]], &[0, 1]);
    }

    #[test]
    fn merge_single_run_copies() {
        let geom = Geometry::new(3, 4, 1000).unwrap();
        check_merge(geom, &[vec![5, 6, 7, 9, 11, 20, 21]], &[2]);
    }

    #[test]
    fn merge_runs_with_duplicate_keys() {
        let geom = Geometry::new(2, 3, 1000).unwrap();
        check_merge(
            geom,
            &[vec![1, 1, 1, 2, 2], vec![1, 2, 2, 2], vec![1, 1, 2]],
            &[0, 1, 0],
        );
    }

    #[test]
    fn merge_many_random_shapes() {
        let mut rng = SmallRng::seed_from_u64(77);
        for &(d, b, n_runs) in &[(2usize, 4usize, 3usize), (3, 4, 5), (4, 8, 7), (5, 2, 9)] {
            let geom = Geometry::new(d, b, 1_000_000).unwrap();
            let runs = random_sorted_runs(&mut rng, n_runs, 1..200);
            let starts: Vec<u32> = (0..n_runs).map(|_| rng.random_range(0..d as u32)).collect();
            check_merge(geom, &runs, &starts);
        }
    }

    #[test]
    fn adversarial_same_start_disk_still_correct() {
        // All runs start on disk 0: worst-case read contention.
        let mut rng = SmallRng::seed_from_u64(5);
        let geom = Geometry::new(4, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 8, 40..80);
        let starts = vec![0u32; 8];
        let out = check_merge(geom, &runs, &starts);
        // Identical layout forces read serialization: with every run's
        // frontier on one disk, reads fetch ~1 block each.
        assert!(out.stats.schedule.total_reads() > 0);
    }

    #[test]
    fn interleaved_runs_exercise_flushing() {
        // Runs whose records interleave globally (run j holds keys
        // ≡ j mod n) maximize simultaneous demand; with a small R+D buffer
        // budget the schedule must flush.
        let geom = Geometry::new(2, 2, 1_000_000).unwrap();
        let n_runs = 6;
        let len = 120u64;
        let run_keys: Vec<Vec<u64>> = (0..n_runs)
            .map(|j| (0..len).map(|i| i * n_runs as u64 + j as u64).collect())
            .collect();
        let starts: Vec<u32> = (0..n_runs).map(|j| (j % 2) as u32).collect();
        let out = check_merge(geom, &run_keys, &starts);
        assert!(
            out.stats.schedule.total_reads() >= (len * n_runs as u64 / 2) / 2,
            "reads {}",
            out.stats.schedule.total_reads()
        );
    }

    #[test]
    fn write_parallelism_is_perfect() {
        let mut rng = SmallRng::seed_from_u64(11);
        let geom = Geometry::new(4, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 6, 50..100);
        let starts: Vec<u32> = (0..6).map(|_| rng.random_range(0..4)).collect();
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let out = check_merge(geom, &runs, &starts);
        let blocks = total.div_ceil(4);
        assert_eq!(out.stats.write_ops, blocks.div_ceil(4));
    }

    #[test]
    fn reads_at_least_blocks_over_d_and_at_most_blocks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let geom = Geometry::new(3, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 9, 30..120);
        let starts: Vec<u32> = (0..9).map(|_| rng.random_range(0..3)).collect();
        let total_blocks: u64 = runs.iter().map(|r| (r.len() as u64).div_ceil(4)).sum();
        let out = check_merge(geom, &runs, &starts);
        let reads = out.stats.schedule.total_reads();
        assert!(reads >= total_blocks.div_ceil(3), "reads {reads} too few");
        assert!(
            reads <= total_blocks + out.stats.schedule.blocks_flushed,
            "reads {reads} exceed blocks {total_blocks} + reread allowance"
        );
    }

    /// The pipelined engine's contract: same output, same scheduling
    /// counters, same backend I/O as the serial engine, on every shape.
    #[test]
    fn pipelined_merge_matches_serial_exactly() {
        let mut rng = SmallRng::seed_from_u64(99);
        for &(d, b, n_runs) in &[
            (2usize, 4usize, 3usize),
            (3, 4, 5),
            (4, 8, 7),
            (5, 2, 9),
            (1, 4, 4),
            (4, 4, 12),
        ] {
            let geom = Geometry::new(d, b, 1_000_000).unwrap();
            let runs = random_sorted_runs(&mut rng, n_runs, 1..200);
            let starts: Vec<u32> = (0..n_runs).map(|_| rng.random_range(0..d as u32)).collect();
            let drive = |pipelined: bool| {
                let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                let handles: Vec<StripedRun> = runs
                    .iter()
                    .zip(&starts)
                    .map(|(keys, &s)| put_run(&mut a, geom, s, keys))
                    .collect();
                a.reset_stats();
                let out = if pipelined {
                    merge_runs_pipelined(&mut a, &handles, DiskId(0)).unwrap()
                } else {
                    merge_runs(&mut a, &handles, DiskId(0)).unwrap()
                };
                let io = a.stats();
                let keys: Vec<u64> =
                    read_run(&mut a, &out.run).unwrap().iter().map(|r| r.0).collect();
                (keys, out.stats, io)
            };
            let (serial_keys, serial_stats, serial_io) = drive(false);
            let (piped_keys, piped_stats, piped_io) = drive(true);
            assert_eq!(piped_keys, serial_keys, "d={d} b={b} runs={n_runs}");
            assert_eq!(piped_stats, serial_stats, "d={d} b={b} runs={n_runs}");
            assert_eq!(piped_io, serial_io, "d={d} b={b} runs={n_runs}");
        }
    }

    /// All-runs-on-one-disk contention plus globally interleaved keys:
    /// the flush-heavy worst cases must also be schedule-identical.
    #[test]
    fn pipelined_merge_matches_serial_under_contention() {
        let geom = Geometry::new(2, 2, 1_000_000).unwrap();
        let n_runs = 6;
        let len = 120u64;
        let run_keys: Vec<Vec<u64>> = (0..n_runs)
            .map(|j| (0..len).map(|i| i * n_runs as u64 + j as u64).collect())
            .collect();
        let starts = vec![0u32; n_runs];
        let drive = |pipelined: bool| {
            let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            let handles: Vec<StripedRun> = run_keys
                .iter()
                .zip(&starts)
                .map(|(keys, &s)| put_run(&mut a, geom, s, keys))
                .collect();
            a.reset_stats();
            let out = if pipelined {
                merge_runs_pipelined(&mut a, &handles, DiskId(0)).unwrap()
            } else {
                merge_runs(&mut a, &handles, DiskId(0)).unwrap()
            };
            (a.stats(), out.stats)
        };
        assert_eq!(drive(true), drive(false));
    }

    /// Deep read-ahead is a pure hint: output, scheduling counters, and
    /// backend I/O are identical to the serial engine at every depth.
    #[test]
    fn deep_read_ahead_is_schedule_invisible() {
        let mut rng = SmallRng::seed_from_u64(321);
        for &(d, b, n_runs) in &[(2usize, 4usize, 3usize), (4, 8, 7), (3, 2, 6)] {
            let geom = Geometry::new(d, b, 1_000_000).unwrap();
            let runs = random_sorted_runs(&mut rng, n_runs, 1..200);
            let starts: Vec<u32> = (0..n_runs).map(|_| rng.random_range(0..d as u32)).collect();
            let drive = |depth: Option<usize>| {
                let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                let handles: Vec<StripedRun> = runs
                    .iter()
                    .zip(&starts)
                    .map(|(keys, &s)| put_run(&mut a, geom, s, keys))
                    .collect();
                a.reset_stats();
                let out = match depth {
                    Some(k) => {
                        merge_runs_pipelined_deep(&mut a, &handles, DiskId(0), k).unwrap()
                    }
                    None => merge_runs(&mut a, &handles, DiskId(0)).unwrap(),
                };
                let io = a.stats();
                let keys: Vec<u64> =
                    read_run(&mut a, &out.run).unwrap().iter().map(|r| r.0).collect();
                (keys, out.stats, io)
            };
            let serial = drive(None);
            for depth in [1usize, 3, 8] {
                assert_eq!(drive(Some(depth)), serial, "d={d} b={b} depth={depth}");
            }
        }
    }

    #[test]
    fn empty_run_list_rejected() {
        let geom = Geometry::new(2, 2, 1000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        assert!(matches!(
            merge_runs(&mut a, &[], DiskId(0)),
            Err(SrmError::Config(_))
        ));
    }
}
