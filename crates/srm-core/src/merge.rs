//! The SRM merging procedure (§5): record-level engine.
//!
//! Merges `R` cyclically striped, forecast-formatted runs into one output
//! run, driving the I/O schedule of [`crate::scheduler`] and the internal
//! loser-tree merge concurrently (in the counting model, "concurrently"
//! means reads are initiated at every legal opportunity — the earliest
//! possible time, which is what the dedicated `M_D` buffers exist for —
//! and the merge consumes records whenever no read can be initiated).
//!
//! # Degraded mode
//!
//! The merge is deliberately oblivious to disk death.  When the array is a
//! [`pdisk::ParityDiskArray`] with a dead disk, the forecast-driven
//! schedule below is **unchanged**: the merge still asks for the dead
//! disk's next-needed block in the same parallel operation it always
//! would, and the parity layer serves it by reconstruction (one extra
//! parallel read of the surviving disks, counted as
//! `IoStats::reconstructed_reads`, never as a schedule read).  Because the
//! schedule — and therefore the sequence of records consumed and emitted —
//! is byte-identical to the failure-free execution, losing a disk mid-sort
//! changes *cost*, never *output*.

use crate::error::{Result, SrmError};
use crate::key::{BlockKey, RunId};
use crate::loser_tree::LoserTree;
use crate::output::RunWriter;
use crate::scheduler::{PlannedRead, ScheduleStats, Scheduler};
use pdisk::block::NO_BLOCK;
use pdisk::trace::{TraceBlock, TraceEvent, TraceFlush, TraceRunMeta, TraceSink};
use pdisk::{BlockAddr, DiskArray, DiskId, Forecast, Geometry, Record, StripedRun};
use std::collections::{HashMap, VecDeque};

/// Statistics for one merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Scheduling counters (reads, flushes).
    pub schedule: ScheduleStats,
    /// Parallel write operations issued for the output run.
    pub write_ops: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Number of input runs merged.
    pub runs_merged: usize,
}

/// Result of a merge: the output run plus its I/O accounting.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// Layout of the merged output run (forecast-formatted, striped).
    pub run: StripedRun,
    /// I/O accounting for this merge.
    pub stats: MergeStats,
}

struct RunState<R: Record> {
    handle: StripedRun,
    /// Records of the current leading block.
    leading: Vec<R>,
    cursor: usize,
    /// Index of the block that is (or, if `awaiting`, will be) leading.
    cur_idx: u64,
    awaiting: bool,
    exhausted: bool,
}

/// Merge `runs` into a single run starting on `out_start_disk`.
///
/// The scheduler's memory partition is sized for `R = runs.len()`:
/// `R` leading buffers (`M_L`), `R + D` buffers in `M_R`, `D` in `M_D`, and
/// `2D` of write buffer inside the [`RunWriter`] — `2R + 4D` blocks total,
/// matching §5.1.
///
/// # Examples
///
/// ```
/// use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
/// use srm_core::{merge_runs, read_run, RunWriter};
///
/// let geom = Geometry::new(2, 4, 1000)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
///
/// // Two forecast-formatted striped runs…
/// let mut handles = Vec::new();
/// for (start, keys) in [(0u32, [1u64, 3, 5, 7]), (1, [2, 4, 6, 8])] {
///     let mut w = RunWriter::new(geom, DiskId(start));
///     for k in keys { w.push(&mut disks, U64Record(k))?; }
///     handles.push(w.finish(&mut disks)?);
/// }
///
/// // …merged with forecast-and-flush into one sorted run.
/// let out = merge_runs(&mut disks, &handles, DiskId(0))?;
/// let merged = read_run(&mut disks, &out.run)?;
/// assert_eq!(merged.iter().map(|r| r.0).collect::<Vec<_>>(),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// # Ok::<(), srm_core::SrmError>(())
/// ```
pub fn merge_runs<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
    out_start_disk: DiskId,
) -> Result<MergeOutcome> {
    let geom = array.geometry();
    if runs.is_empty() {
        return Err(SrmError::Config("merge of zero runs".into()));
    }
    for (i, r) in runs.iter().enumerate() {
        if r.records == 0 || r.len_blocks == 0 {
            return Err(SrmError::Config(format!("run {i} is empty")));
        }
        if r.base_offsets.len() != geom.d {
            return Err(SrmError::Config(format!(
                "run {i} laid out for {} disks, array has {}",
                r.base_offsets.len(),
                geom.d
            )));
        }
    }
    let trace = array.trace_sink().cloned();
    if let Some(sink) = &trace {
        sink.emit(TraceEvent::MergeBegin {
            r: runs.len(),
            geom,
            runs: runs
                .iter()
                .map(|h| TraceRunMeta {
                    start_disk: h.start_disk,
                    len_blocks: h.len_blocks,
                    base_offsets: h.base_offsets.clone(),
                })
                .collect(),
        });
    }
    let mut merger = Merger {
        geom,
        runs: runs
            .iter()
            .map(|h| RunState {
                handle: h.clone(),
                leading: Vec::new(),
                cursor: 0,
                cur_idx: 0,
                awaiting: false,
                exhausted: false,
            })
            .collect(),
        sched: Scheduler::new(runs.len(), geom.d),
        tree: LoserTree::new(vec![u64::MAX; runs.len()]),
        buffers: HashMap::new(),
        writer: RunWriter::new(geom, out_start_disk),
        trace,
    };
    merger.initial_load(array)?;
    merger.run_to_completion(array)
}

struct Merger<R: Record> {
    geom: Geometry,
    runs: Vec<RunState<R>>,
    sched: Scheduler,
    tree: LoserTree,
    /// Contents of blocks in `M_R ∪ M_D`, keyed by `(run, block idx)`.
    buffers: HashMap<(RunId, u64), (u64, Vec<R>)>,
    writer: RunWriter<R>,
    /// Annotation sink, cloned from the array's installed trace (if any).
    trace: Option<TraceSink>,
}

impl<R: Record> Merger<R> {
    fn addr_of(&self, key: &BlockKey) -> BlockAddr {
        self.runs[key.run as usize].handle.addr_of(key.idx)
    }

    /// §5.5 step 1: load block 0 of every run into `M_L` with parallel
    /// reads, seeding the forecasting table from the implanted key tables.
    fn initial_load<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let d = self.geom.d;
        let mut per_disk: Vec<VecDeque<RunId>> = vec![VecDeque::new(); d];
        for (j, st) in self.runs.iter().enumerate() {
            per_disk[st.handle.disk_of(0).index()].push_back(j as RunId);
        }
        loop {
            let mut batch: Vec<(RunId, BlockAddr)> = Vec::with_capacity(d);
            for q in per_disk.iter_mut() {
                if let Some(j) = q.pop_front() {
                    batch.push((j, self.runs[j as usize].handle.addr_of(0)));
                }
            }
            if batch.is_empty() {
                break;
            }
            let addrs: Vec<BlockAddr> = batch.iter().map(|&(_, a)| a).collect();
            let blocks = array.read(&addrs)?;
            self.sched.charge_initial_read(blocks.len());
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::InitLoad {
                    blocks: batch.iter().map(|&(j, a)| (j, a.disk)).collect(),
                });
            }
            for ((j, _), block) in batch.into_iter().zip(blocks) {
                let st = &mut self.runs[j as usize];
                let keys = match &block.forecast {
                    Forecast::Initial(keys) => keys.clone(),
                    f => {
                        return Err(SrmError::Internal(format!(
                            "run {j} block 0 carries {f:?}, expected Initial table"
                        )))
                    }
                };
                for (m, &k) in keys.iter().enumerate() {
                    let idx = m as u64 + 1;
                    if k != NO_BLOCK && idx < st.handle.len_blocks {
                        let disk = st.handle.disk_of(idx);
                        self.sched
                            .fds_mut()
                            .set(disk, j, Some(BlockKey::new(k, j, idx)));
                        if let Some(sink) = &self.trace {
                            sink.emit(TraceEvent::InitImplant { run: j, idx, key: k, disk });
                        }
                    }
                }
                st.leading = block.records;
                st.cursor = 0;
                st.cur_idx = 0;
                let first = st.leading.first().map(|r| r.key()).unwrap_or(u64::MAX);
                self.tree.update(j as usize, first);
            }
        }
        Ok(())
    }

    fn execute_read<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        let runs = &self.runs;
        let plan: PlannedRead = self.sched.plan_read(|k: &BlockKey| {
            runs[k.run as usize].handle.disk_of(k.idx)
        });
        let flushed: Vec<TraceFlush> = plan
            .flushed
            .iter()
            .map(|k| TraceFlush {
                run: k.run,
                idx: k.idx,
                key: k.key,
                disk: self.runs[k.run as usize].handle.disk_of(k.idx),
            })
            .collect();
        for key in &plan.flushed {
            let dropped = self.buffers.remove(&(key.run, key.idx));
            debug_assert!(dropped.is_some(), "flushed block {key:?} had no buffer");
        }
        let addrs: Vec<BlockAddr> = plan.targets.iter().map(|(_, k)| self.addr_of(k)).collect();
        let blocks = array.read(&addrs)?;
        let mut traced: Vec<TraceBlock> = Vec::with_capacity(plan.targets.len());
        for ((disk, key), block) in plan.targets.into_iter().zip(blocks) {
            debug_assert_eq!(
                block.records.first().map(|r| r.key()),
                Some(key.key),
                "forecast key disagrees with block contents"
            );
            let next_idx = key.idx + self.geom.d as u64;
            let implant = match &block.forecast {
                Forecast::Next(k) if *k != NO_BLOCK
                    && next_idx < self.runs[key.run as usize].handle.len_blocks =>
                {
                    Some(BlockKey::new(*k, key.run, next_idx))
                }
                Forecast::Next(_) => None,
                f => {
                    return Err(SrmError::Internal(format!(
                        "non-initial block {key:?} carries {f:?}"
                    )))
                }
            };
            let st = &mut self.runs[key.run as usize];
            let to_leading = st.awaiting && st.cur_idx == key.idx;
            traced.push(TraceBlock {
                run: key.run,
                idx: key.idx,
                key: key.key,
                disk,
                implant: implant.as_ref().map(|b| b.key),
                to_leading,
            });
            self.sched.arrive(key, disk, implant, to_leading);
            if to_leading {
                st.leading = block.records;
                st.cursor = 0;
                st.awaiting = false;
                let first = st.leading[0].key();
                self.tree.update(key.run as usize, first);
            } else {
                self.buffers.insert((key.run, key.idx), (key.key, block.records));
            }
        }
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::SchedRead {
                targets: traced,
                flushed,
                fset_len: self.sched.fset_len(),
                staged_len: self.sched.staged_len(),
            });
        }
        Ok(())
    }

    /// The leading block of `run` has been fully consumed: hand the `M_L`
    /// buffer over to the run's next block (exchange rules 1–2 of §5.2),
    /// or mark the run exhausted / awaiting I/O.
    fn advance_run(&mut self, run: usize) -> Result<()> {
        let st = &mut self.runs[run];
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::Deplete {
                run: run as RunId,
                idx: st.cur_idx,
            });
        }
        st.cur_idx += 1;
        st.leading = Vec::new();
        st.cursor = 0;
        if st.cur_idx >= st.handle.len_blocks {
            st.exhausted = true;
            self.tree.update(run, u64::MAX);
            return Ok(());
        }
        if let Some((min_key, recs)) = self.buffers.remove(&(run as RunId, st.cur_idx)) {
            let promoted = self
                .sched
                .promote_to_leading(BlockKey::new(min_key, run as RunId, st.cur_idx));
            if !promoted {
                return Err(SrmError::Internal(format!(
                    "buffered block (run {run}, idx {}) unknown to scheduler",
                    st.cur_idx
                )));
            }
            if let Some(sink) = &self.trace {
                sink.emit(TraceEvent::Promote {
                    run: run as RunId,
                    idx: st.cur_idx,
                });
            }
            st.leading = recs;
            let first = st.leading[0].key();
            self.tree.update(run, first);
        } else {
            // On disk: merge past this point is gated by the block's min
            // key, which is exactly the forecasting entry for its disk.
            let disk = st.handle.disk_of(st.cur_idx);
            let entry = self
                .sched
                .fds()
                .entry(disk, run as RunId)
                .ok_or_else(|| {
                    SrmError::Internal(format!(
                        "run {run} awaits block {} but FDS has no entry on {disk}",
                        st.cur_idx
                    ))
                })?;
            if entry.idx != st.cur_idx {
                return Err(SrmError::Internal(format!(
                    "FDS entry for run {run} on {disk} is block {}, expected {}",
                    entry.idx, st.cur_idx
                )));
            }
            st.awaiting = true;
            self.tree.update(run, entry.key);
        }
        Ok(())
    }

    fn run_to_completion<A: DiskArray<R>>(mut self, array: &mut A) -> Result<MergeOutcome> {
        loop {
            self.sched.drain();
            if self.sched.can_attempt_read() {
                self.execute_read(array)?;
                continue;
            }
            if self.tree.all_exhausted() {
                break;
            }
            let (run, key) = self.tree.peek();
            if self.runs[run].awaiting {
                // Lemma 1 guarantees the schedule never wedges like this.
                return Err(SrmError::Internal(format!(
                    "merge stuck: run {run} awaits block {} (key {key}) with M_D occupied",
                    self.runs[run].cur_idx
                )));
            }
            let st = &mut self.runs[run];
            let rec = st.leading[st.cursor];
            st.cursor += 1;
            debug_assert_eq!(rec.key(), key, "tree winner key mismatch");
            self.writer.push(array, rec)?;
            if st.cursor == st.leading.len() {
                self.advance_run(run)?;
            } else {
                let next_key = st.leading[st.cursor].key();
                self.tree.update(run, next_key);
            }
        }
        debug_assert!(self.buffers.is_empty(), "leftover buffered blocks");
        debug_assert!(self.sched.fds().is_empty(), "unread blocks at completion");
        self.sched.assert_capacities();
        let records_out = self.writer.records();
        let runs_merged = self.runs.len();
        let schedule = self.sched.stats();
        let writer = self.writer;
        let run = writer.finish(array)?;
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::MergeEnd);
        }
        Ok(MergeOutcome {
            stats: MergeStats {
                schedule,
                write_ops: run.len_blocks.div_ceil(self.geom.d as u64),
                records_out,
                runs_merged,
            },
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{read_run, RunWriter};
    use pdisk::{Geometry, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Write `keys` (must be sorted) as a forecast-formatted run.
    fn put_run(
        array: &mut MemDiskArray<U64Record>,
        geom: Geometry,
        start: u32,
        keys: &[u64],
    ) -> StripedRun {
        let mut w = RunWriter::new(geom, DiskId(start));
        for &k in keys {
            w.push(array, U64Record(k)).unwrap();
        }
        w.finish(array).unwrap()
    }

    fn random_sorted_runs(
        rng: &mut SmallRng,
        n_runs: usize,
        len_range: std::ops::Range<usize>,
    ) -> Vec<Vec<u64>> {
        (0..n_runs)
            .map(|_| {
                let len = rng.random_range(len_range.clone()).max(1);
                let mut v: Vec<u64> = (0..len).map(|_| rng.random_range(0..1_000_000)).collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    fn check_merge(geom: Geometry, run_keys: &[Vec<u64>], seed_starts: &[u32]) -> MergeOutcome {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let handles: Vec<StripedRun> = run_keys
            .iter()
            .zip(seed_starts)
            .map(|(keys, &s)| put_run(&mut a, geom, s, keys))
            .collect();
        a.reset_stats();
        let out = merge_runs(&mut a, &handles, DiskId(0)).unwrap();
        let got = read_run(&mut a, &out.run).unwrap();
        let mut expected: Vec<u64> = run_keys.iter().flatten().copied().collect();
        expected.sort_unstable();
        let got_keys: Vec<u64> = got.iter().map(|r| r.0).collect();
        assert_eq!(got_keys, expected);
        assert_eq!(out.stats.records_out as usize, expected.len());
        out
    }

    #[test]
    fn merge_two_tiny_runs() {
        let geom = Geometry::new(2, 2, 1000).unwrap();
        check_merge(geom, &[vec![1, 3, 5], vec![2, 4, 6, 8]], &[0, 1]);
    }

    #[test]
    fn merge_single_run_copies() {
        let geom = Geometry::new(3, 4, 1000).unwrap();
        check_merge(geom, &[vec![5, 6, 7, 9, 11, 20, 21]], &[2]);
    }

    #[test]
    fn merge_runs_with_duplicate_keys() {
        let geom = Geometry::new(2, 3, 1000).unwrap();
        check_merge(
            geom,
            &[vec![1, 1, 1, 2, 2], vec![1, 2, 2, 2], vec![1, 1, 2]],
            &[0, 1, 0],
        );
    }

    #[test]
    fn merge_many_random_shapes() {
        let mut rng = SmallRng::seed_from_u64(77);
        for &(d, b, n_runs) in &[(2usize, 4usize, 3usize), (3, 4, 5), (4, 8, 7), (5, 2, 9)] {
            let geom = Geometry::new(d, b, 1_000_000).unwrap();
            let runs = random_sorted_runs(&mut rng, n_runs, 1..200);
            let starts: Vec<u32> = (0..n_runs).map(|_| rng.random_range(0..d as u32)).collect();
            check_merge(geom, &runs, &starts);
        }
    }

    #[test]
    fn adversarial_same_start_disk_still_correct() {
        // All runs start on disk 0: worst-case read contention.
        let mut rng = SmallRng::seed_from_u64(5);
        let geom = Geometry::new(4, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 8, 40..80);
        let starts = vec![0u32; 8];
        let out = check_merge(geom, &runs, &starts);
        // Identical layout forces read serialization: with every run's
        // frontier on one disk, reads fetch ~1 block each.
        assert!(out.stats.schedule.total_reads() > 0);
    }

    #[test]
    fn interleaved_runs_exercise_flushing() {
        // Runs whose records interleave globally (run j holds keys
        // ≡ j mod n) maximize simultaneous demand; with a small R+D buffer
        // budget the schedule must flush.
        let geom = Geometry::new(2, 2, 1_000_000).unwrap();
        let n_runs = 6;
        let len = 120u64;
        let run_keys: Vec<Vec<u64>> = (0..n_runs)
            .map(|j| (0..len).map(|i| i * n_runs as u64 + j as u64).collect())
            .collect();
        let starts: Vec<u32> = (0..n_runs).map(|j| (j % 2) as u32).collect();
        let out = check_merge(geom, &run_keys, &starts);
        assert!(
            out.stats.schedule.total_reads() >= (len * n_runs as u64 / 2) / 2,
            "reads {}",
            out.stats.schedule.total_reads()
        );
    }

    #[test]
    fn write_parallelism_is_perfect() {
        let mut rng = SmallRng::seed_from_u64(11);
        let geom = Geometry::new(4, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 6, 50..100);
        let starts: Vec<u32> = (0..6).map(|_| rng.random_range(0..4)).collect();
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let out = check_merge(geom, &runs, &starts);
        let blocks = total.div_ceil(4);
        assert_eq!(out.stats.write_ops, blocks.div_ceil(4));
    }

    #[test]
    fn reads_at_least_blocks_over_d_and_at_most_blocks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let geom = Geometry::new(3, 4, 1_000_000).unwrap();
        let runs = random_sorted_runs(&mut rng, 9, 30..120);
        let starts: Vec<u32> = (0..9).map(|_| rng.random_range(0..3)).collect();
        let total_blocks: u64 = runs.iter().map(|r| (r.len() as u64).div_ceil(4)).sum();
        let out = check_merge(geom, &runs, &starts);
        let reads = out.stats.schedule.total_reads();
        assert!(reads >= total_blocks.div_ceil(3), "reads {reads} too few");
        assert!(
            reads <= total_blocks + out.stats.schedule.blocks_flushed,
            "reads {reads} exceed blocks {total_blocks} + reread allowance"
        );
    }

    #[test]
    fn empty_run_list_rejected() {
        let geom = Geometry::new(2, 2, 1000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        assert!(matches!(
            merge_runs(&mut a, &[], DiskId(0)),
            Err(SrmError::Config(_))
        ));
    }
}
