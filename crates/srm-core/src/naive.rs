//! Naive striped merging — the §3 strawman SRM exists to fix.
//!
//! Runs are cyclically striped exactly as for SRM, but the merger does
//! **demand paging** with no forecasting and no flushing: each run owns a
//! double buffer (current block + one prefetched block), and whenever a
//! run's prefetch slot is empty its next block is requested.  Pending
//! requests are served by parallel reads that take at most one block per
//! disk; requests for the same disk queue up.
//!
//! This is a perfectly reasonable merger — it is how one would naively
//! port single-disk mergesort to striped runs — and on *random* layouts
//! it does fine.  The paper's point (§3) is its worst case: if the `R`
//! next-needed blocks all live on one disk, reads serialize and
//! throughput drops by a factor of `D`.  The `adversarial` experiment
//! (X6) measures exactly that, with SRM's forecast-and-flush schedule
//! alongside for contrast.

use crate::error::{Result, SrmError};
use crate::loser_tree::LoserTree;
use pdisk::{BlockAddr, DiskArray, Record, StripedRun};
use std::collections::VecDeque;

/// I/O counts of a naive merge (reads only; the output side is identical
/// to SRM's and is omitted for clarity of comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveMergeStats {
    /// Parallel read operations issued.
    pub read_ops: u64,
    /// Blocks fetched.
    pub blocks_read: u64,
    /// Records merged.
    pub records_out: u64,
}

impl NaiveMergeStats {
    /// Read-overhead factor versus the `total_blocks/D` single-pass floor.
    pub fn overhead_v(&self, d: usize, total_blocks: u64) -> f64 {
        self.read_ops as f64 / (total_blocks as f64 / d as f64)
    }
}

struct NaiveRun<R: Record> {
    handle: StripedRun,
    current: Vec<R>,
    cursor: usize,
    prefetched: Option<Vec<R>>,
    /// Next block index to request from disk.
    next_fetch: u64,
    /// Requests queued but not yet served (0..=2).
    in_flight: u8,
    /// Set when a demand for the current block is outstanding.
    starving: bool,
}

impl<R: Record> NaiveRun<R> {
    /// Keep the double buffer pipelined: request the next block whenever
    /// a slot (current/prefetch) plus in-flight total falls below 2.
    fn maybe_request(
        &mut self,
        j: usize,
        filled: u8,
        pending: &mut [VecDeque<(usize, u64)>],
    ) {
        while self.next_fetch < self.handle.len_blocks && filled + self.in_flight < 2 {
            let idx = self.next_fetch;
            pending[self.handle.disk_of(idx).index()].push_back((j, idx));
            self.next_fetch += 1;
            self.in_flight += 1;
        }
    }
}

/// Merge striped runs by demand paging, counting parallel reads.
///
/// The records are merged and **discarded** (this baseline exists to
/// count reads, not to produce output — SRM's writer is shared by both
/// algorithms and identical in cost).  Returns the read accounting.
pub fn naive_merge_count<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
) -> Result<NaiveMergeStats> {
    let geom = array.geometry();
    if runs.is_empty() {
        return Err(SrmError::Config("merge of zero runs".into()));
    }
    let d = geom.d;
    let mut stats = NaiveMergeStats::default();
    // Per-disk FIFO of pending block requests: (run, block idx).
    let mut pending: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); d];
    let mut states: Vec<NaiveRun<R>> = runs
        .iter()
        .map(|h| NaiveRun {
            handle: h.clone(),
            current: Vec::new(),
            cursor: 0,
            prefetched: None,
            next_fetch: 0,
            in_flight: 0,
            starving: true,
        })
        .collect();
    // Demand block 0 and block 1 of every run (fill both buffer slots).
    for (j, st) in states.iter_mut().enumerate() {
        st.maybe_request(j, 0, &mut pending);
    }

    let mut tree = LoserTree::new(vec![u64::MAX; runs.len()]);
    let service = |array: &mut A,
                       pending: &mut Vec<VecDeque<(usize, u64)>>,
                       states: &mut Vec<NaiveRun<R>>,
                       tree: &mut LoserTree,
                       stats: &mut NaiveMergeStats|
     -> Result<()> {
        // One parallel read: pop at most one request per disk.
        let mut batch: Vec<(usize, u64, BlockAddr)> = Vec::with_capacity(d);
        for q in pending.iter_mut() {
            if let Some((j, idx)) = q.pop_front() {
                batch.push((j, idx, states[j].handle.addr_of(idx)));
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        let addrs: Vec<BlockAddr> = batch.iter().map(|&(_, _, a)| a).collect();
        let blocks = array.read(&addrs)?;
        stats.read_ops += 1;
        stats.blocks_read += blocks.len() as u64;
        for ((j, _idx, _), block) in batch.into_iter().zip(blocks) {
            let st = &mut states[j];
            st.in_flight -= 1;
            if st.starving {
                st.current = block.records;
                st.cursor = 0;
                st.starving = false;
                tree.update(j, st.current[0].key());
                let filled = 1 + u8::from(st.prefetched.is_some());
                st.maybe_request(j, filled, pending);
            } else {
                debug_assert!(st.prefetched.is_none());
                st.prefetched = Some(block.records);
            }
        }
        Ok(())
    };

    // Prime: service until every run has its current block.
    while states.iter().any(|s| s.starving) {
        service(array, &mut pending, &mut states, &mut tree, &mut stats)?;
    }

    loop {
        let (j, key) = tree.peek();
        if key == u64::MAX {
            break;
        }
        let st = &mut states[j];
        if st.starving {
            // Current block still in flight: must do I/O now.
            service(array, &mut pending, &mut states, &mut tree, &mut stats)?;
            continue;
        }
        // Consume one record.
        st.cursor += 1;
        stats.records_out += 1;
        if st.cursor < st.current.len() {
            let next = st.current[st.cursor].key();
            self_update(&mut tree, j, next);
            continue;
        }
        // Block exhausted: promote the prefetch, demand the next block.
        match st.prefetched.take() {
            Some(next_block) => {
                st.current = next_block;
                st.cursor = 0;
                st.maybe_request(j, 1, &mut pending);
                let next = st.current[0].key();
                self_update(&mut tree, j, next);
            }
            None => {
                if st.next_fetch >= st.handle.len_blocks && st.in_flight == 0 {
                    // Run exhausted.
                    self_update(&mut tree, j, u64::MAX);
                } else {
                    // The demanded block is still queued: without
                    // forecasting the merger does not know the run's next
                    // key, so nothing larger than the run's last consumed
                    // key may be emitted — the merge stalls on I/O.
                    st.starving = true;
                    service(array, &mut pending, &mut states, &mut tree, &mut stats)?;
                }
            }
        }
    }
    Ok(stats)
}

#[inline]
fn self_update(tree: &mut LoserTree, leaf: usize, key: u64) {
    tree.update(leaf, key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::RunWriter;
    use pdisk::{DiskId, Geometry, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn put_run(
        array: &mut MemDiskArray<U64Record>,
        geom: Geometry,
        start: u32,
        keys: &[u64],
    ) -> StripedRun {
        let mut w = RunWriter::new(geom, DiskId(start));
        for &k in keys {
            w.push(array, U64Record(k)).unwrap();
        }
        w.finish(array).unwrap()
    }

    #[test]
    fn merges_all_records() {
        let geom = Geometry::new(3, 4, 100_000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let mut rng = SmallRng::seed_from_u64(1);
        let runs: Vec<Vec<u64>> = (0..5)
            .map(|_| {
                let mut v: Vec<u64> = (0..rng.random_range(20..80)).map(|_| rng.random()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let handles: Vec<StripedRun> = runs
            .iter()
            .map(|keys| put_run(&mut a, geom, rng.random_range(0..3), keys))
            .collect();
        let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
        let stats = naive_merge_count(&mut a, &handles).unwrap();
        assert_eq!(stats.records_out, total);
        // Every block read exactly once (no flushing in demand paging).
        let blocks: u64 = handles.iter().map(|h| h.len_blocks).sum();
        assert_eq!(stats.blocks_read, blocks);
    }

    #[test]
    fn random_layout_gets_decent_parallelism() {
        let geom = Geometry::new(4, 2, 100_000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let mut rng = SmallRng::seed_from_u64(2);
        // Well-mixed random runs.
        let runs: Vec<Vec<u64>> = (0..8)
            .map(|_| {
                let mut v: Vec<u64> = (0..200).map(|_| rng.random()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let handles: Vec<StripedRun> = runs
            .iter()
            .map(|keys| put_run(&mut a, geom, rng.random_range(0..4), keys))
            .collect();
        let blocks: u64 = handles.iter().map(|h| h.len_blocks).sum();
        let stats = naive_merge_count(&mut a, &handles).unwrap();
        let v = stats.overhead_v(4, blocks);
        assert!(v < 3.0, "random layout should not serialize: v = {v}");
    }

    /// The §3 disaster, at record level: same start disk + lockstep
    /// consumption.  With double buffering the demands of a phase spread
    /// over exactly two disks, so reads serialize to `v ≈ D/2` — still
    /// linear in `D`, which is the paper's point.
    #[test]
    fn lockstep_same_disk_serializes() {
        let run_v = |d: usize| -> f64 {
            let n_runs = d;
            let len = 160u64;
            let geom = Geometry::new(d, 2, 100_000).unwrap();
            let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            // Run j holds keys ≡ j (mod n_runs): lockstep consumption.
            let runs: Vec<Vec<u64>> = (0..n_runs)
                .map(|j| (0..len).map(|i| i * n_runs as u64 + j as u64).collect())
                .collect();
            let handles: Vec<StripedRun> = runs
                .iter()
                .map(|keys| put_run(&mut a, geom, 0, keys))
                .collect();
            let blocks: u64 = handles.iter().map(|h| h.len_blocks).sum();
            let stats = naive_merge_count(&mut a, &handles).unwrap();
            stats.overhead_v(d, blocks)
        };
        let v4 = run_v(4);
        let v8 = run_v(8);
        assert!(v4 > 0.45 * 4.0, "v(D=4) = {v4}");
        assert!(v8 > 0.45 * 8.0, "v(D=8) = {v8}");
        assert!(v8 > 1.6 * v4, "overhead must grow linearly: {v4} -> {v8}");
    }

    #[test]
    fn single_run_copy_counts() {
        let geom = Geometry::new(2, 4, 100_000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let keys: Vec<u64> = (0..40).collect();
        let h = put_run(&mut a, geom, 1, &keys);
        let stats = naive_merge_count(&mut a, &[h]).unwrap();
        assert_eq!(stats.records_out, 40);
        assert_eq!(stats.blocks_read, 10);
    }

    #[test]
    fn empty_run_list_rejected() {
        let geom = Geometry::new(2, 4, 100_000).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        assert!(naive_merge_count(&mut a, &[]).is_err());
    }
}
