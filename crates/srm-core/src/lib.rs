//! # srm-core — Simple Randomized Mergesort on parallel disks
//!
//! Implementation of the SRM algorithm of Barve, Grove & Vitter (SPAA '96):
//! an external mergesort for the `D`-disk parallel I/O model that stripes
//! every run cyclically over the disks from a **uniformly random start
//! disk**, merges `R = Θ(M/B)` runs at a time, and keeps its reads almost
//! perfectly parallel with a *forecast-and-flush* memory policy:
//!
//! * a forecasting table ([`forecast`]) always knows, for every disk, which
//!   block will participate in the merge next, so each parallel read
//!   fetches the "right" block from every disk;
//! * when fewer than `D` buffers are free, the schedule *virtually
//!   flushes* ([`scheduler`]) exactly the in-memory blocks that will be
//!   needed farthest in the future — at zero I/O cost, since their contents
//!   are still on disk.
//!
//! Module map (paper section in parentheses):
//!
//! * [`key`] — block identity & ranking order;
//! * [`forecast`] — the FDS (§4);
//! * [`loser_tree`] — internal `R`-way merge (§5, via Knuth);
//! * [`scheduler`] — the I/O schedule, rules 2a–2c and `Flush_t` (§5.5);
//! * [`output`] — forecast-formatted run writing with full write
//!   parallelism (§3, §5.1's `M_W`);
//! * [`merge`] — the record-level merge engine (§5);
//! * [`merge_path`] — Merge Path diagonal partitioning (Green/Odeh/Birk)
//!   for deterministic multi-threaded in-memory merging;
//! * [`naive`] — the demand-paged strawman merger of §3, kept for the
//!   adversarial comparison (experiment X6);
//! * [`run_formation`] — initial runs: memory-load sort and replacement
//!   selection (§2.1);
//! * [`sort`] — the multi-pass mergesort driver, randomized or
//!   deterministic-staggered placement (§3, §8);
//! * [`checkpoint`] — pass-granular checkpoint manifests so an
//!   interrupted multi-pass sort resumes from its last completed pass
//!   with byte-identical output;
//! * [`simulator`] — block-granularity re-implementation of the exact same
//!   schedule, used to reproduce Table 3 at paper scale (§9.3);
//! * [`error`] — error types.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod forecast;
pub mod key;
pub mod loser_tree;
pub mod merge;
pub mod merge_path;
pub mod naive;
pub mod output;
pub mod par_sort;
pub mod run_formation;
pub mod scheduler;
pub mod scrub;
pub mod simulator;
pub mod sort;

pub use checkpoint::{resume_point, ResumePoint, SortManifest};
pub use error::{Result, SrmError};
pub use key::{BlockKey, RunId};
pub use merge::{merge_runs, merge_runs_pipelined, merge_runs_pipelined_deep, MergeOutcome, MergeStats};
pub use merge_path::{diagonal_split, merge_pair_into, par_merge_sorted_chunks};
pub use naive::{naive_merge_count, NaiveMergeStats};
pub use output::{read_run, RunWriter};
pub use run_formation::{form_runs, form_runs_pipelined, RunFormation};
pub use scheduler::{ScheduleStats, Scheduler};
pub use scrub::{scrub_runs, ScrubReport};
pub use simulator::{MergeSim, SimInput, SimStats, TraceEvent};
pub use sort::{Placement, SortReport, SrmConfig, SrmSorter};
