//! The SRM mergesort driver: run formation followed by merge passes.
//!
//! Per §2.2, SRM merges `R` runs at a time where `R` is the largest integer
//! with `M/B ≥ 2R + 4D + RD/B`; every output run is written with full write
//! parallelism and striped from a start disk chosen per [`Placement`]:
//!
//! * [`Placement::Random`] — uniformly random, i.i.d. per run (§3): the SRM
//!   algorithm proper, whose expected I/O is bounded by Theorem 1 for *any*
//!   input;
//! * [`Placement::Staggered`] — the deterministic variant of §8: start
//!   disks cycle deterministically, trading the worst-case guarantee for
//!   zero randomness (comparable performance on random inputs).

use crate::checkpoint::SortManifest;
use crate::error::{Result, SrmError};
use crate::merge::{merge_runs, merge_runs_pipelined_deep, MergeStats};
use crate::run_formation::{form_runs, form_runs_pipelined, RunFormation};
use crate::scheduler::ScheduleStats;
use pdisk::{
    Block, CrashClock, DiskArray, DiskId, Forecast, InterruptFlag, IoStats, Record, StripedRun,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// How each run's start disk `d_r` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Uniformly random, independent per run — SRM proper (§3).
    #[default]
    Random,
    /// Deterministic round-robin stagger — the §8 variant.
    Staggered,
}

/// Configuration for [`SrmSorter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrmConfig {
    /// Start-disk policy.
    pub placement: Placement,
    /// Run-formation strategy.
    pub run_formation: RunFormation,
    /// Seed for the (limited) internal randomization.
    pub seed: u64,
}

impl Default for SrmConfig {
    fn default() -> Self {
        SrmConfig {
            placement: Placement::Random,
            run_formation: RunFormation::default(),
            seed: 0x5EED_0001,
        }
    }
}

/// Accounting for a whole sort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SortReport {
    /// Records sorted.
    pub records: u64,
    /// Merge order `R` used.
    pub merge_order: usize,
    /// Runs produced by the formation pass.
    pub runs_formed: usize,
    /// Number of merge passes over the file (excludes run formation).
    pub merge_passes: u64,
    /// Individual merges performed.
    pub merges: u64,
    /// Aggregated scheduling counters over all merges.
    pub schedule: ScheduleStats,
    /// Backend I/O delta for the whole sort (formation + merges).
    pub io: IoStats,
}

impl SortReport {
    /// Measured read-overhead factor per merge-pass data volume:
    /// `v = merge-pass reads / (merge-pass blocks / D)`.
    pub fn overhead_v(&self, d: usize, total_blocks: u64) -> f64 {
        if self.merge_passes == 0 {
            return 0.0;
        }
        let ideal = self.merge_passes as f64 * total_blocks as f64 / d as f64;
        self.schedule.total_reads() as f64 / ideal
    }
}

/// Start-disk source: the sort's only randomness, factored out so a
/// resumed sort can fast-forward to exactly where an interrupted one
/// left off (every run written draws exactly once).
struct Placer {
    placement: Placement,
    rng: SmallRng,
    stagger: u32,
    d: u32,
    draws: u64,
}

impl Placer {
    fn new(placement: Placement, seed: u64, d: u32) -> Self {
        Placer {
            placement,
            rng: SmallRng::seed_from_u64(seed),
            stagger: 0,
            d,
            draws: 0,
        }
    }

    fn next(&mut self) -> DiskId {
        self.draws += 1;
        match self.placement {
            Placement::Random => DiskId(self.rng.random_range(0..self.d)),
            Placement::Staggered => {
                let disk = DiskId(self.stagger % self.d);
                self.stagger += 1;
                disk
            }
        }
    }

    /// Consume `n` draws so the next one matches what an uninterrupted
    /// sort would draw after `n` runs.
    fn fast_forward(&mut self, n: u64) {
        for _ in 0..n {
            self.next();
        }
    }
}

/// The SRM external sorter.
///
/// # Examples
///
/// ```
/// use pdisk::{Geometry, MemDiskArray, U64Record};
/// use srm_core::sort::write_unsorted_input;
/// use srm_core::{read_run, SrmSorter};
///
/// let geom = Geometry::new(2, 8, 512)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
/// let records: Vec<U64Record> = (0..2000).rev().map(U64Record).collect();
/// let input = write_unsorted_input(&mut disks, &records)?;
///
/// let (sorted, report) = SrmSorter::default().sort(&mut disks, &input)?;
/// assert_eq!(report.records, 2000);
/// assert!(report.merge_passes >= 1);
///
/// let output = read_run(&mut disks, &sorted)?;
/// assert!(output.windows(2).all(|w| w[0].0 <= w[1].0));
/// # Ok::<(), srm_core::SrmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SrmSorter {
    config: SrmConfig,
    /// Use the pipelined merge engine
    /// ([`crate::merge::merge_runs_pipelined`]).  Not part of
    /// [`SrmConfig`] because it does not affect the I/O schedule or the
    /// output — checkpoint manifests stay compatible, and a sort may
    /// even be resumed under the other engine.
    pipeline: bool,
    /// Forecast-driven prefetch depth per disk for pipelined merges
    /// (see [`merge_runs_pipelined_deep`]); 0 disables hints.  Like
    /// `pipeline`, a pure wall-clock knob: the schedule, output, and
    /// stats are identical at every depth.
    read_ahead: usize,
    /// Crash clock shared with a [`pdisk::CrashingDiskArray`] wrapping
    /// the array, so manifest writes get their own numbered crash
    /// boundaries alongside the I/O ones.
    crash: Option<CrashClock>,
    /// Cooperative stop request; polled at pass boundaries.  See
    /// [`SrmSorter::with_interrupt`].
    interrupt: Option<InterruptFlag>,
}

/// Pass-boundary callback threaded through `sort_inner`; see
/// [`SrmSorter::sort_observed`].
type PassObserver<'a, A> = &'a mut dyn FnMut(u64, &mut A) -> Result<()>;

impl SrmSorter {
    /// Sorter with the given configuration.
    pub fn new(config: SrmConfig) -> Self {
        SrmSorter {
            config,
            pipeline: false,
            read_ahead: 0,
            crash: None,
            interrupt: None,
        }
    }

    /// Overlap disk time with merge time: run every merge through
    /// [`crate::merge::merge_runs_pipelined`] (read-ahead via
    /// split-phase reads, write-behind on the output run).  The I/O
    /// schedule, the output, the [`IoStats`] deltas, and the
    /// model-check trace's operation sequence are identical to the
    /// serial engine; only wall-clock behavior on a real backend
    /// changes.
    pub fn with_pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Whether merges run on the pipelined engine.
    pub fn pipeline(&self) -> bool {
        self.pipeline
    }

    /// Set the forecast-driven prefetch depth for pipelined merges: at
    /// every submitted read, hint the backend about the next `depth`
    /// predicted blocks per disk (see [`merge_runs_pipelined_deep`]).
    /// Ignored unless [`SrmSorter::with_pipeline`] is on.  Schedule,
    /// output, and stats are unchanged at any depth.
    pub fn with_read_ahead(mut self, depth: usize) -> Self {
        self.read_ahead = depth;
        self
    }

    /// The prefetch depth in use (0 = hints disabled).
    pub fn read_ahead(&self) -> usize {
        self.read_ahead
    }

    /// Share `clock` with the [`pdisk::CrashingDiskArray`] wrapping the
    /// array this sorter runs on: every checkpoint-manifest write then
    /// gets its own numbered crash boundaries (`manifest-write` /
    /// `manifest-written`), so a crash-matrix sweep covers the windows
    /// just before and just after the manifest becomes durable.
    pub fn with_crash_clock(mut self, clock: CrashClock) -> Self {
        self.crash = Some(clock);
        self
    }

    /// Install a cooperative stop request (the *drain hook*): when
    /// `flag` is triggered, the sort stops at the next pass boundary —
    /// *after* that boundary's checkpoint manifest has been journaled,
    /// when a manifest path is in use — and returns
    /// [`SrmError::Interrupted`] instead of starting another pass.  A
    /// rerun with the same manifest resumes byte-identically.  This is
    /// the one mechanism behind Ctrl-C in the CLI and drain, deadline,
    /// and cancel in the job server.  With only one run left there is no
    /// further pass boundary, so the sort simply completes.
    pub fn with_interrupt(mut self, flag: InterruptFlag) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SrmConfig {
        &self.config
    }

    /// `Err(Interrupted)` if a stop has been requested and `runs_left`
    /// merging work remains; called only after the boundary's snapshot
    /// (if any) is durable — which srmlint's interrupt pass enforces.
    #[srmlint::interrupt_observer]
    fn check_interrupt(&self, runs_left: usize) -> Result<()> {
        match &self.interrupt {
            Some(flag) if flag.is_set() && runs_left > 1 => Err(SrmError::Interrupted),
            _ => Ok(()),
        }
    }

    /// Sort `input` (an unsorted striped file) and return the sorted run
    /// plus a full accounting.
    pub fn sort<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &StripedRun,
    ) -> Result<(StripedRun, SortReport)> {
        self.sort_inner(array, input, None, None)
    }

    /// Like [`SrmSorter::sort`], but checkpointing progress to `manifest`
    /// after run formation and after every completed merge pass, and
    /// **resuming** from `manifest` when the file already exists.
    ///
    /// A sort killed mid-pass loses only the interrupted pass: rerunning
    /// the same sorter against the same array (or a
    /// [`pdisk::FileDiskArray`] reopened with
    /// [`pdisk::FileDiskArray::open`]) skips formation and every
    /// completed pass, fast-forwards the placement RNG by the manifest's
    /// draw count, and redoes the interrupted pass — producing the same
    /// record sequence an uninterrupted sort would.  Blocks written by
    /// the interrupted pass are abandoned (the space is not reclaimed;
    /// the substrate is append-only within a sort).
    ///
    /// The manifest is deleted on successful completion.  In the returned
    /// report, `merge_passes` and `runs_formed` cover the *whole logical
    /// sort* (including passes done before a resume), while `io`,
    /// `merges`, and `schedule` cover only the work this call performed.
    ///
    /// Resuming validates that geometry, seed, placement, and record
    /// count match the manifest; any mismatch is an
    /// [`SrmError::Checkpoint`], since silently continuing would corrupt
    /// the output.
    pub fn sort_checkpointed<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &StripedRun,
        manifest: &Path,
    ) -> Result<(StripedRun, SortReport)> {
        self.sort_inner(array, input, Some(manifest), None)
    }

    /// Like [`SrmSorter::sort_checkpointed`] (pass `manifest: None` for an
    /// unsnapshotted sort), but calling `observer` at every pass boundary
    /// **completed by this call**: once after run formation (`pass` = 0)
    /// and once after each merge pass, each time *before* the snapshot is
    /// taken.  The observer may mutate the array — this is the injection
    /// point for fault drills (`--kill-disk D@PASS` in the CLI kills a
    /// disk here, so the subsequent snapshot records the death and the
    /// next pass runs degraded).  An observer error aborts the sort.
    ///
    /// Pass boundaries completed *before* a resume are not replayed.
    pub fn sort_observed<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &StripedRun,
        manifest: Option<&Path>,
        mut observer: impl FnMut(u64, &mut A) -> Result<()>,
    ) -> Result<(StripedRun, SortReport)> {
        self.sort_inner(array, input, manifest, Some(&mut observer))
    }

    fn sort_inner<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &StripedRun,
        manifest: Option<&Path>,
        mut observer: Option<PassObserver<'_, A>>,
    ) -> Result<(StripedRun, SortReport)> {
        let geom = array.geometry();
        if input.records == 0 {
            return Err(SrmError::Config("cannot sort an empty input".into()));
        }
        let r_max = geom.srm_merge_order()?;
        let io_before = array.stats();
        let mut placer = Placer::new(self.config.placement, self.config.seed, geom.d as u32);

        // Recovery rule: newest valid manifest generation wins; a torn
        // current manifest falls back to its journaled predecessor.
        let resume = match manifest {
            Some(path) => SortManifest::load_latest(path)?,
            None => None,
        };
        let (mut queue, mut pass, runs_formed) = match resume {
            Some(m) => {
                m.validate(&self.config, geom, input.records)?;
                m.validate_redundancy(array.redundancy().as_ref())?;
                placer.fast_forward(m.draws);
                (m.runs, m.pass, m.runs_formed as usize)
            }
            None => {
                if let Some(sink) = array.trace_sink() {
                    // Run formation is pass 0; merge passes count from 1.
                    sink.begin_pass(0);
                }
                let queue = if self.pipeline {
                    form_runs_pipelined(array, input, self.config.run_formation, || {
                        placer.next()
                    })?
                } else {
                    form_runs(array, input, self.config.run_formation, || placer.next())?
                };
                let runs_formed = queue.len();
                if let Some(obs) = observer.as_deref_mut() {
                    obs(0, array)?;
                }
                if let Some(path) = manifest {
                    self.snapshot(path, input, runs_formed, 0, &placer, array, &queue)?;
                }
                (queue, 0, runs_formed)
            }
        };
        // Drain hook, boundary 0: the formation snapshot above (or the
        // resumed manifest already on disk) is durable, so stopping here
        // loses nothing.
        self.check_interrupt(queue.len())?;
        let mut report = SortReport {
            records: input.records,
            merge_order: r_max,
            runs_formed,
            ..SortReport::default()
        };

        while queue.len() > 1 {
            pass += 1;
            if let Some(sink) = array.trace_sink() {
                sink.begin_pass(pass);
            }
            let mut next = Vec::with_capacity(queue.len().div_ceil(r_max));
            for group in queue.chunks(r_max) {
                if group.len() == 1 {
                    // A lone leftover run advances to the next pass at no
                    // I/O cost.
                    next.push(group[0].clone());
                    continue;
                }
                let out = if self.pipeline {
                    merge_runs_pipelined_deep(array, group, placer.next(), self.read_ahead)?
                } else {
                    merge_runs(array, group, placer.next())?
                };
                report.merges += 1;
                accumulate(&mut report.schedule, &out.stats);
                next.push(out.run);
            }
            queue = next;
            if let Some(obs) = observer.as_deref_mut() {
                obs(pass, array)?;
            }
            if let Some(path) = manifest {
                if queue.len() > 1 {
                    self.snapshot(path, input, runs_formed, pass, &placer, array, &queue)?;
                }
            }
            // Drain hook: the boundary's snapshot is durable, so a rerun
            // resumes from exactly this pass.
            self.check_interrupt(queue.len())?;
        }
        report.merge_passes = pass;
        let sorted = queue
            .pop()
            .ok_or_else(|| SrmError::Internal("merge queue drained to empty".into()))?;
        debug_assert_eq!(sorted.records, input.records);
        if let Some(path) = manifest {
            SortManifest::remove(path)?;
        }
        report.io = array.stats().since(&io_before);
        Ok((sorted, report))
    }

    #[allow(clippy::too_many_arguments)]
    #[srmlint::checkpoint]
    fn snapshot<R: Record, A: DiskArray<R>>(
        &self,
        path: &Path,
        input: &StripedRun,
        runs_formed: usize,
        pass: u64,
        placer: &Placer,
        array: &mut A,
        queue: &[StripedRun],
    ) -> Result<()> {
        // Durability barrier: every block the manifest is about to
        // reference must be on stable storage before the manifest
        // claims the pass completed — otherwise a crash could leave a
        // manifest pointing at frames that never landed.
        array.sync()?;
        if let Some(c) = &self.crash {
            c.tick("manifest-write")?;
        }
        SortManifest::new(
            &self.config,
            array.geometry(),
            input.records,
            runs_formed as u64,
            pass,
            placer.draws,
            array.redundancy(),
            queue.to_vec(),
        )
        .save_clocked(path, self.crash.as_ref())?;
        if let Some(c) = &self.crash {
            c.tick("manifest-written")?;
        }
        Ok(())
    }
}

fn accumulate(into: &mut ScheduleStats, merge: &MergeStats) {
    into.init_reads += merge.schedule.init_reads;
    into.par_reads += merge.schedule.par_reads;
    into.flush_ops += merge.schedule.flush_ops;
    into.blocks_flushed += merge.schedule.blocks_flushed;
    into.blocks_read += merge.schedule.blocks_read;
}

/// Lay `records` out as an unsorted striped input file, written with full
/// write parallelism (one stripe per operation).  This is the standard way
/// to stage data for [`SrmSorter::sort`] in examples and tests.
pub fn write_unsorted_input<R: Record, A: DiskArray<R>>(
    array: &mut A,
    records: &[R],
) -> Result<StripedRun> {
    if records.is_empty() {
        return Err(SrmError::Config("empty input".into()));
    }
    let geom = array.geometry();
    let len_blocks = (records.len() as u64).div_ceil(geom.b as u64);
    let run = array.alloc_run(DiskId(0), len_blocks, records.len() as u64)?;
    let mut block_idx = 0u64;
    let mut chunks = records.chunks(geom.b).peekable();
    while chunks.peek().is_some() {
        let mut writes = Vec::with_capacity(geom.d);
        for _ in 0..geom.d {
            match chunks.next() {
                Some(chunk) => {
                    // Unsorted input carries no forecast data; bypass
                    // Block::new's sortedness debug-assert.
                    let block = Block {
                        records: chunk.to_vec(),
                        forecast: Forecast::Next(pdisk::block::NO_BLOCK),
                    };
                    writes.push((run.addr_of(block_idx), block));
                    block_idx += 1;
                }
                None => break,
            }
        }
        array.write(writes)?;
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::read_run;
    use pdisk::{Geometry, KeyPayloadRecord, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sort_and_verify(
        geom: Geometry,
        keys: &[u64],
        config: SrmConfig,
    ) -> (SortReport, MemDiskArray<U64Record>) {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let (sorted, report) = SrmSorter::new(config).sort(&mut a, &input).unwrap();
        let got: Vec<u64> = read_run(&mut a, &sorted).unwrap().iter().map(|r| r.0).collect();
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(report.records as usize, keys.len());
        (report, a)
    }

    fn random_keys(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.random_range(0..10_000_000)).collect()
    }

    #[test]
    fn sorts_multi_pass_random_input() {
        let mut rng = SmallRng::seed_from_u64(21);
        // M/B = 24, D = 2 -> R = (24-8)*4/(2*4+2) = 6; memory loads of 48.
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 3000);
        let (report, _) = sort_and_verify(geom, &keys, SrmConfig::default());
        assert_eq!(report.merge_order, 6);
        // 3000/48 = 63 runs -> pass 1: 11 runs, pass 2: 2, pass 3: 1.
        assert_eq!(report.runs_formed, 63);
        assert_eq!(report.merge_passes, 3);
        assert!(report.schedule.total_reads() > 0);
        assert!(report.io.write_ops > 0);
    }

    #[test]
    fn sorts_single_memoryload_without_merging() {
        let geom = Geometry::new(2, 4, 128).unwrap();
        let keys: Vec<u64> = (0..60).rev().collect();
        let (report, _) = sort_and_verify(
            geom,
            &keys,
            SrmConfig {
                run_formation: RunFormation::MemoryLoad { fraction: 1.0 },
                ..SrmConfig::default()
            },
        );
        assert_eq!(report.runs_formed, 1);
        assert_eq!(report.merge_passes, 0);
    }

    #[test]
    fn staggered_placement_sorts_too() {
        let mut rng = SmallRng::seed_from_u64(22);
        let geom = Geometry::new(3, 4, 120).unwrap();
        let keys = random_keys(&mut rng, 2000);
        let (report, _) = sort_and_verify(
            geom,
            &keys,
            SrmConfig {
                placement: Placement::Staggered,
                ..SrmConfig::default()
            },
        );
        assert!(report.merge_passes >= 1);
    }

    #[test]
    fn replacement_selection_pipeline() {
        let mut rng = SmallRng::seed_from_u64(23);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 1500);
        let (report, _) = sort_and_verify(
            geom,
            &keys,
            SrmConfig {
                run_formation: RunFormation::ReplacementSelection,
                ..SrmConfig::default()
            },
        );
        // RS runs are ~2x memory loads, so fewer runs than N/(M/2).
        assert!(report.runs_formed < 1500 / 48 + 2);
    }

    #[test]
    fn sorted_input_is_a_fixpoint() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys: Vec<u64> = (0..2000).collect();
        sort_and_verify(geom, &keys, SrmConfig::default());
    }

    #[test]
    fn reverse_sorted_and_constant_inputs() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys: Vec<u64> = (0..1500).rev().collect();
        sort_and_verify(geom, &keys, SrmConfig::default());
        let constant = vec![7u64; 1000];
        sort_and_verify(geom, &constant, SrmConfig::default());
    }

    #[test]
    fn payload_records_travel_with_keys() {
        let mut rng = SmallRng::seed_from_u64(24);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let mut a: MemDiskArray<KeyPayloadRecord<16>> = MemDiskArray::new(geom);
        let recs: Vec<KeyPayloadRecord<16>> = (0..1200)
            .map(|_| KeyPayloadRecord::with_derived_payload(rng.random_range(0..100_000)))
            .collect();
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let (sorted, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
        let got = read_run(&mut a, &sorted).unwrap();
        for r in &got {
            assert_eq!(
                *r,
                KeyPayloadRecord::<16>::with_derived_payload(r.key),
                "payload corrupted in transit"
            );
        }
        let mut keys: Vec<u64> = recs.iter().map(|r| r.key).collect();
        keys.sort_unstable();
        assert_eq!(got.iter().map(|r| r.key).collect::<Vec<_>>(), keys);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(25);
        let geom = Geometry::new(3, 4, 120).unwrap();
        let keys = random_keys(&mut rng, 1000);
        let (r1, _) = sort_and_verify(geom, &keys, SrmConfig::default());
        let (r2, _) = sort_and_verify(geom, &keys, SrmConfig::default());
        assert_eq!(r1, r2, "same seed must give identical I/O traces");
        let (r3, _) = sort_and_verify(
            geom,
            &keys,
            SrmConfig {
                seed: 999,
                ..SrmConfig::default()
            },
        );
        assert_eq!(r3.records, r1.records); // different trace is fine; same result
    }

    #[test]
    fn empty_input_rejected() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        assert!(write_unsorted_input(&mut a, &[]).is_err());
    }

    #[test]
    fn write_counts_match_passes() {
        // Every pass writes the whole file once with full parallelism:
        // write ops ≈ (1 + merge_passes) * blocks/D.
        let mut rng = SmallRng::seed_from_u64(26);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 2048);
        let (report, _) = sort_and_verify(geom, &keys, SrmConfig::default());
        let blocks = 2048u64 / 4;
        let per_pass = blocks.div_ceil(2);
        let ideal = (1 + report.merge_passes) * per_pass;
        // Ragged final stripes cost a little extra; lone leftover runs
        // that skip a pass cost a little less.
        assert!(
            report.io.write_ops >= ideal - per_pass / 4 && report.io.write_ops <= ideal + ideal / 5,
            "write ops {} vs ideal {ideal}",
            report.io.write_ops
        );
    }

    #[test]
    fn interrupt_stops_at_boundary_and_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("srm-interrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("manifest");
        let _ = std::fs::remove_file(&manifest);

        let mut rng = SmallRng::seed_from_u64(31);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 3000);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();

        // Reference: uninterrupted sort on an identical array.
        let mut reference: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input_ref = write_unsorted_input(&mut reference, &recs).unwrap();
        let (sorted_ref, report_ref) = SrmSorter::default().sort(&mut reference, &input_ref).unwrap();
        let expect = read_run(&mut reference, &sorted_ref).unwrap();
        assert!(report_ref.merge_passes >= 2, "need a multi-pass workload");

        // Interrupted run: flag set before the sort starts, so it stops
        // at boundary 0 with the formation checkpoint journaled.
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let flag = pdisk::InterruptFlag::new();
        flag.trigger();
        let interrupted = SrmSorter::default()
            .with_interrupt(flag.clone())
            .sort_checkpointed(&mut a, &input, &manifest);
        assert!(matches!(interrupted, Err(SrmError::Interrupted)));
        assert!(manifest.exists(), "checkpoint must be durable before Interrupted");

        // Interrupt again at the first merge-pass boundary.
        flag.clear();
        let drain_at_pass_1 = SrmSorter::default()
            .with_interrupt(flag.clone())
            .sort_observed(&mut a, &input, Some(&manifest), |pass, _a: &mut _| {
                if pass >= 1 {
                    flag.trigger();
                }
                Ok(())
            });
        assert!(matches!(drain_at_pass_1, Err(SrmError::Interrupted)));

        // Final rerun with no interrupt completes and matches the
        // uninterrupted output byte for byte.
        let (sorted, report) = SrmSorter::default()
            .sort_checkpointed(&mut a, &input, &manifest)
            .unwrap();
        assert_eq!(report.merge_passes, report_ref.merge_passes);
        assert_eq!(read_run(&mut a, &sorted).unwrap(), expect);
        assert!(!manifest.exists(), "manifest removed after completion");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupt_with_single_run_left_completes_anyway() {
        // One memory-load => one run => no pass boundary with work left:
        // a triggered flag must not prevent completion.
        let geom = Geometry::new(2, 4, 128).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = (0..60u64).rev().map(U64Record).collect();
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let flag = pdisk::InterruptFlag::new();
        flag.trigger();
        let sorter = SrmSorter::new(SrmConfig {
            run_formation: RunFormation::MemoryLoad { fraction: 1.0 },
            ..SrmConfig::default()
        })
        .with_interrupt(flag);
        let (sorted, report) = sorter.sort(&mut a, &input).unwrap();
        assert_eq!(report.runs_formed, 1);
        let got: Vec<u64> = read_run(&mut a, &sorted).unwrap().iter().map(|r| r.0).collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_disk_degenerates_gracefully() {
        let mut rng = SmallRng::seed_from_u64(27);
        let geom = Geometry::new(1, 4, 64).unwrap();
        let keys = random_keys(&mut rng, 800);
        sort_and_verify(geom, &keys, SrmConfig::default());
    }
}
