//! SRM's I/O scheduling state machine (§5.5) — shared by the record-level
//! merge engine and the block-level simulator.
//!
//! The scheduler owns the bookkeeping halves of the memory partition of
//! Definition 3:
//!
//! * `F` (occupied blocks of `M_R`, capacity `R + D`) — the full non-leading
//!   blocks in memory, ordered by block key;
//! * the staging set (occupied blocks of `M_D`, capacity `D`) — blocks just
//!   read, awaiting exchange into `M_R` or `M_L`;
//! * the forecasting table (§4).
//!
//! Block *contents* (records) live with the caller; the scheduler only
//! tracks identities, which is what makes it reusable by the simulator.
//!
//! A read may be initiated whenever `M_D` is free (staging empty).  The
//! three rules of §5.5 then decide between a plain `ParRead` (2a, 2b) and a
//! `Flush` followed by a `ParRead` (2c); [`Scheduler::plan_read`] implements
//! them verbatim.

use crate::forecast::ForecastTable;
use crate::key::BlockKey;
use pdisk::DiskId;
use std::collections::BTreeSet;

/// Counters for the scheduling decisions taken during one merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Parallel reads issued by step 1 (loading each run's first block).
    pub init_reads: u64,
    /// Parallel reads issued by the main loop (`ParRead_t` operations).
    pub par_reads: u64,
    /// Number of `Flush_t` invocations (rule 2c).
    pub flush_ops: u64,
    /// Total blocks virtually flushed (each will be re-read later).
    pub blocks_flushed: u64,
    /// Total blocks fetched by reads, re-reads included.
    pub blocks_read: u64,
}

impl ScheduleStats {
    /// All read operations: initial plus main-loop.
    pub fn total_reads(&self) -> u64 {
        self.init_reads + self.par_reads
    }
}

/// One planned parallel read, possibly preceded by a flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedRead {
    /// Blocks evicted by rule 2c; the caller must drop their buffers.
    /// Empty for rules 2a/2b.
    pub flushed: Vec<BlockKey>,
    /// The set `S_t`: the smallest block on each disk that has one, to be
    /// fetched by this operation.
    pub targets: Vec<(DiskId, BlockKey)>,
}

/// The I/O scheduling state machine.
#[derive(Debug, Clone)]
pub struct Scheduler {
    r: usize,
    d: usize,
    fds: ForecastTable,
    fset: BTreeSet<BlockKey>,
    staged: Vec<BlockKey>,
    stats: ScheduleStats,
}

impl Scheduler {
    /// Scheduler for a merge of order `r` on `d` disks.
    pub fn new(r: usize, d: usize) -> Self {
        assert!(r >= 1 && d >= 1);
        Scheduler {
            r,
            d,
            fds: ForecastTable::new(d),
            fset: BTreeSet::new(),
            staged: Vec::with_capacity(d),
            stats: ScheduleStats::default(),
        }
    }

    /// The forecasting table (read access).
    pub fn fds(&self) -> &ForecastTable {
        &self.fds
    }

    /// Mutable forecasting table — used only to seed entries from initial
    /// blocks' implanted key tables.
    pub fn fds_mut(&mut self) -> &mut ForecastTable {
        &mut self.fds
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ScheduleStats {
        self.stats
    }

    /// Number of occupied `M_R` blocks (`|F_t|`).
    pub fn fset_len(&self) -> usize {
        self.fset.len()
    }

    /// Number of blocks currently staged in `M_D`.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Charge one step-1 read that fetched `blocks` initial blocks.
    pub fn charge_initial_read(&mut self, blocks: usize) {
        self.stats.init_reads += 1;
        self.stats.blocks_read += blocks as u64;
    }

    /// Can a `ParRead` be initiated now?  Requires `M_D` to be free (the
    /// staging set empty) and at least one unread block on some disk.
    pub fn can_attempt_read(&self) -> bool {
        self.staged.is_empty() && !self.fds.is_empty()
    }

    /// Apply §5.5 rules 2a–2c and commit to one parallel read.
    ///
    /// `disk_of` maps a block to its home disk (derivable from the block's
    /// run layout, which the caller owns).  Flushed blocks are removed from
    /// `F` and their forecasting entries restored before `S_t` is taken, so
    /// a just-flushed block on an otherwise-quiet disk may legitimately be
    /// fetched right back — exactly the paper's `Flush_t` + `ParRead_t`
    /// sequencing.
    ///
    /// # Panics
    /// Panics if called when [`Scheduler::can_attempt_read`] is false.
    pub fn plan_read(&mut self, disk_of: impl Fn(&BlockKey) -> DiskId) -> PlannedRead {
        assert!(self.can_attempt_read(), "ParRead requires free M_D and unread blocks");
        let occ = self.fset.len();
        debug_assert!(occ <= self.r + self.d, "M_R overfull: {occ}");

        let mut flushed = Vec::new();
        if occ > self.r {
            // Rules 2b/2c: occ = R + extra with 1 <= extra <= D.
            let extra = occ - self.r;
            let s_min = self
                .fds
                .frontier_min()
                .expect("can_attempt_read guarantees a frontier"); // lint:allow(panic) documented # Panics contract
            // OutRank_t: rank of the smallest S_t block within F_t ∪ S_t.
            // The smallest S_t block is s_min itself, so its rank is one
            // plus the number of F blocks strictly below it.
            let out_rank = 1 + self.fset.range(..s_min).count();
            if out_rank <= extra {
                // Rule 2c: flush the (extra − OutRank + 1) highest-ranked
                // blocks of F_t.
                let n_flush = extra - out_rank + 1;
                for _ in 0..n_flush {
                    let victim = *self.fset.last().expect("F non-empty while flushing"); // lint:allow(panic) occ > R ⇒ F has ≥ extra blocks
                    self.fset.remove(&victim);
                    self.fds.lower_to(disk_of(&victim), victim.run, victim);
                    flushed.push(victim);
                }
                self.stats.flush_ops += 1;
                self.stats.blocks_flushed += n_flush as u64;
            }
            // Rule 2b (out_rank > extra): plain read, no flush.
        }
        // Rule 2a (occ <= R) falls through to a plain read as well.

        let targets: Vec<(DiskId, BlockKey)> = self.fds.frontier().collect();
        debug_assert!(!targets.is_empty());
        self.stats.par_reads += 1;
        self.stats.blocks_read += targets.len() as u64;
        PlannedRead { flushed, targets }
    }

    /// Register a block fetched by the current read.
    ///
    /// Replaces the block's forecasting entry with `implant` (the key of
    /// the run's next block on the same disk, from the block's implanted
    /// data).  If `to_leading` the block goes straight to `M_L` (it is the
    /// block its run is waiting on — exchange rule 2 of §5.2); otherwise it
    /// sits in `M_D` until [`Scheduler::drain`] moves it to `M_R`.
    pub fn arrive(&mut self, key: BlockKey, disk: DiskId, implant: Option<BlockKey>, to_leading: bool) {
        debug_assert_eq!(
            self.fds.entry(disk, key.run),
            Some(key),
            "arriving block must be its disk's forecast entry"
        );
        self.fds.set(disk, key.run, implant);
        if !to_leading {
            debug_assert!(self.staged.len() < self.d, "M_D overfull");
            self.staged.push(key);
        }
    }

    /// Exchange rule 3 of §5.2: move staged blocks into `M_R` while `M_R`
    /// has unoccupied blocks.
    pub fn drain(&mut self) {
        while self.fset.len() < self.r + self.d {
            let Some(k) = self.staged.pop() else { break };
            let fresh = self.fset.insert(k);
            debug_assert!(fresh, "block {k:?} already in F");
        }
    }

    /// Exchange rules 1–2 of §5.2: a run's awaited block found in `M_R` or
    /// `M_D` moves to `M_L`.  Returns whether the block was present.
    pub fn promote_to_leading(&mut self, key: BlockKey) -> bool {
        if self.fset.remove(&key) {
            return true;
        }
        if let Some(pos) = self.staged.iter().position(|&k| k == key) {
            self.staged.swap_remove(pos);
            return true;
        }
        false
    }

    /// Rank (1-based) of `key` within `F_t`, for invariant checks.
    pub fn rank_in_fset(&self, key: BlockKey) -> Option<usize> {
        self.fset.contains(&key).then(|| 1 + self.fset.range(..key).count())
    }

    /// Debug check of Definition 3's capacities.
    pub fn assert_capacities(&self) {
        assert!(self.fset.len() <= self.r + self.d, "|F| = {} > R+D", self.fset.len());
        assert!(self.staged.len() <= self.d, "|M_D| = {} > D", self.staged.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(key: u64, run: u32, idx: u64) -> BlockKey {
        BlockKey::new(key, run, idx)
    }

    /// Helper: seed a scheduler whose FDS has `entries` and whose F holds
    /// `fset`.
    fn seeded(r: usize, d: usize, entries: &[(u32, BlockKey)], fset: &[BlockKey]) -> Scheduler {
        let mut s = Scheduler::new(r, d);
        for &(disk, k) in entries {
            s.fds_mut().set(DiskId(disk), k.run, Some(k));
        }
        for &k in fset {
            s.fset.insert(k);
        }
        s
    }

    #[test]
    fn rule_2a_reads_frontier_without_flush() {
        // R = 4, D = 2; F holds 3 <= R blocks -> rule 2a.
        let mut s = seeded(
            4,
            2,
            &[(0, bk(10, 0, 1)), (1, bk(20, 1, 1))],
            &[bk(30, 2, 1), bk(40, 3, 1), bk(50, 0, 2)],
        );
        let plan = s.plan_read(|_| DiskId(0));
        assert!(plan.flushed.is_empty());
        assert_eq!(
            plan.targets,
            vec![(DiskId(0), bk(10, 0, 1)), (DiskId(1), bk(20, 1, 1))]
        );
        assert_eq!(s.stats().par_reads, 1);
        assert_eq!(s.stats().flush_ops, 0);
    }

    #[test]
    fn rule_2b_reads_when_incoming_blocks_participate_soon() {
        // R = 2, D = 2; F holds R + 1 blocks, all *smaller* than the
        // frontier -> OutRank = |F| + 1 = 4 > extra = 1 -> rule 2b.
        let mut s = seeded(
            2,
            2,
            &[(0, bk(100, 0, 5))],
            &[bk(10, 1, 1), bk(20, 2, 1), bk(30, 0, 4)],
        );
        let plan = s.plan_read(|_| DiskId(0));
        assert!(plan.flushed.is_empty());
        assert_eq!(plan.targets.len(), 1);
        assert_eq!(s.stats().flush_ops, 0);
    }

    #[test]
    fn rule_2c_flushes_farthest_future_blocks() {
        // R = 2, D = 2; F holds R + 2 blocks; the frontier key 15 ranks
        // below two F blocks -> OutRank = 2 <= extra = 2 -> flush
        // extra - OutRank + 1 = 1 block: the largest (90).
        let mut s = seeded(
            2,
            2,
            &[(0, bk(15, 0, 5))],
            &[bk(10, 1, 1), bk(50, 2, 1), bk(70, 3, 1), bk(90, 1, 2)],
        );
        let plan = s.plan_read(|_| DiskId(1));
        assert_eq!(plan.flushed, vec![bk(90, 1, 2)]);
        assert_eq!(s.fset_len(), 3);
        assert_eq!(s.stats().flush_ops, 1);
        assert_eq!(s.stats().blocks_flushed, 1);
        // The flushed block reappears in the FDS on its home disk.
        assert_eq!(s.fds().entry(DiskId(1), 1), Some(bk(90, 1, 2)));
    }

    #[test]
    fn rule_2c_flushed_block_can_be_immediately_retargeted() {
        // Flushed block lands on a disk with no smaller pending block, so
        // S_t includes it — the paper's Flush_t-then-ParRead_t sequencing.
        let mut s = seeded(
            1,
            2,
            &[(0, bk(5, 0, 3))],
            &[bk(1, 1, 1), bk(40, 2, 1), bk(60, 2, 2)],
        );
        // occ = 3 = R + 2, OutRank: F blocks below 5: one (key 1) -> 2 <= 2
        // -> flush 1 block (key 60) to disk 1.
        let plan = s.plan_read(|_| DiskId(1));
        assert_eq!(plan.flushed, vec![bk(60, 2, 2)]);
        assert!(plan.targets.contains(&(DiskId(1), bk(60, 2, 2))));
    }

    #[test]
    fn lemma2_invariant_smallest_blocks_never_flushed() {
        // Whatever the configuration, the R + OutRank - 1 smallest F
        // blocks survive a flush.
        let fset: Vec<BlockKey> = (0..6).map(|i| bk(10 * (i + 1), i as u32 % 4, i)).collect();
        let mut s = seeded(2, 4, &[(0, bk(25, 0, 9))], &fset);
        // occ = 6 = R + 4; F below 25: two -> OutRank = 3 <= 4 -> flush 2.
        let plan = s.plan_read(|_| DiskId(2));
        assert_eq!(plan.flushed.len(), 2);
        // Survivors are the 4 smallest: ranks 1..=R+OutRank-1 = 1..=4.
        let survivors: Vec<BlockKey> = s.fset.iter().copied().collect();
        assert_eq!(survivors, fset[..4].to_vec());
    }

    #[test]
    fn arrive_updates_forecast_and_stages() {
        let mut s = Scheduler::new(2, 2);
        s.fds_mut().set(DiskId(0), 0, Some(bk(10, 0, 1)));
        s.arrive(bk(10, 0, 1), DiskId(0), Some(bk(77, 0, 3)), false);
        assert_eq!(s.fds().entry(DiskId(0), 0), Some(bk(77, 0, 3)));
        assert_eq!(s.staged_len(), 1);
        // Leading arrivals bypass staging.
        s.fds_mut().set(DiskId(1), 1, Some(bk(20, 1, 2)));
        s.arrive(bk(20, 1, 2), DiskId(1), None, true);
        assert_eq!(s.staged_len(), 1);
        assert_eq!(s.fds().entry(DiskId(1), 1), None);
    }

    #[test]
    fn drain_respects_mr_capacity() {
        let mut s = Scheduler::new(1, 2); // M_R capacity = R + D = 3
        for i in 0..2 {
            s.fds_mut().set(DiskId(i), i, Some(bk(10 + i as u64, i, 1)));
        }
        s.arrive(bk(10, 0, 1), DiskId(0), None, false);
        s.arrive(bk(11, 1, 1), DiskId(1), None, false);
        // Pre-fill F to capacity 3.
        s.fset.insert(bk(1, 2, 0));
        s.fset.insert(bk(2, 3, 0));
        s.fset.insert(bk(3, 4, 0));
        s.drain();
        assert_eq!(s.fset_len(), 3);
        assert_eq!(s.staged_len(), 2, "staged blocks wait for room");
        // Free a slot; drain moves exactly one.
        s.fset.remove(&bk(1, 2, 0));
        s.drain();
        assert_eq!(s.fset_len(), 3);
        assert_eq!(s.staged_len(), 1);
    }

    #[test]
    fn promote_finds_blocks_in_both_pools() {
        let mut s = Scheduler::new(2, 2);
        s.fset.insert(bk(5, 0, 1));
        s.staged.push(bk(6, 1, 1));
        assert!(s.promote_to_leading(bk(5, 0, 1)));
        assert!(s.promote_to_leading(bk(6, 1, 1)));
        assert!(!s.promote_to_leading(bk(7, 2, 1)));
        assert_eq!(s.fset_len(), 0);
        assert_eq!(s.staged_len(), 0);
    }

    #[test]
    fn can_attempt_read_requires_free_md_and_pending_blocks() {
        let mut s = Scheduler::new(2, 2);
        assert!(!s.can_attempt_read(), "no blocks on disk");
        s.fds_mut().set(DiskId(0), 0, Some(bk(1, 0, 1)));
        assert!(s.can_attempt_read());
        s.staged.push(bk(9, 1, 1));
        assert!(!s.can_attempt_read(), "M_D occupied");
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Lemma 2 as a property: whatever F and the frontier look
            /// like, a planned read flushes only blocks ranked above
            /// `R + OutRank − 1`, and the survivors are exactly the
            /// lowest-ranked prefix.
            #[test]
            fn flush_preserves_lowest_ranked_prefix(
                r in 1usize..6,
                d in 1usize..6,
                extra in 1usize..6,
                fkeys in vec(1u64..1000, 1..24),
                frontier_key in 1u64..1000,
            ) {
                let extra = extra.min(d);
                let occ = r + extra;
                prop_assume!(fkeys.len() >= occ);
                let mut s = Scheduler::new(r, d);
                // Distinct F blocks (dedup on the total order).
                let mut keys: Vec<BlockKey> = fkeys
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| bk(k, (i % 64) as u32 + 100, i as u64))
                    .collect();
                keys.sort_unstable();
                keys.truncate(occ);
                for &k in &keys {
                    s.fset.insert(k);
                }
                // One frontier entry on disk 0.
                let front = bk(frontier_key, 99, 1);
                s.fds_mut().set(DiskId(0), 99, Some(front));

                let before: Vec<BlockKey> = s.fset.iter().copied().collect();
                let out_rank = 1 + before.iter().filter(|&&k| k < front).count();
                let plan = s.plan_read(|_| DiskId(0));

                if out_rank > extra {
                    prop_assert!(plan.flushed.is_empty());
                } else {
                    let n_flush = extra - out_rank + 1;
                    prop_assert_eq!(plan.flushed.len(), n_flush);
                    // Survivors are exactly the lowest R + OutRank − 1.
                    let survivors: Vec<BlockKey> = s.fset.iter().copied().collect();
                    prop_assert_eq!(survivors.as_slice(), &before[..occ - n_flush]);
                    // Every flushed block ranks above every survivor.
                    for f in &plan.flushed {
                        prop_assert!(survivors.iter().all(|sv| sv < f));
                    }
                }
            }
        }
    }

    #[test]
    fn stats_accumulate_across_operations() {
        let mut s = Scheduler::new(4, 2);
        s.charge_initial_read(2);
        s.fds_mut().set(DiskId(0), 0, Some(bk(1, 0, 1)));
        let _ = s.plan_read(|_| DiskId(0));
        let st = s.stats();
        assert_eq!(st.init_reads, 1);
        assert_eq!(st.par_reads, 1);
        assert_eq!(st.total_reads(), 2);
        assert_eq!(st.blocks_read, 3);
    }
}
