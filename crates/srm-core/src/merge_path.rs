//! Merge Path parallel two-way merging (Green, Odeh & Birk).
//!
//! A two-way merge of sorted sequences `a` and `b` traces a monotone
//! staircase through the `|a| × |b|` grid: step right when the next
//! output record comes from `a`, down when it comes from `b`.  The
//! *Merge Path* observation is that the staircase's intersection with
//! the anti-diagonal `i + j = d` can be found by binary search without
//! merging anything — it is the unique split `(i, j)` where `a[..i]`
//! and `b[..j]` are exactly the first `d` records of the merged output.
//! Cutting the path at `t` evenly spaced diagonals therefore partitions
//! the merge into `t` *independent* segments of equal output size,
//! which worker threads fill into disjoint output slices with no
//! synchronization beyond the final join.
//!
//! **Determinism.**  Ties are broken *a-side first*, everywhere: the
//! split search puts an `a` record equal to a `b` record on the prefix
//! side, and the per-segment serial merge takes from `a` on equal keys.
//! Both choices describe the same total order (key, then side, then
//! position), so the output is a pure function of the inputs —
//! independent of the thread count — and equals the serial a-first
//! merge exactly.  Chained over adjacent chunk pairs (lower chunk index
//! always on the `a` side), this reproduces the tournament tree's
//! (key, leaf-index) tie-break, which is what lets
//! [`crate::par_sort::par_sort_by_key`] swap its serial k-way phase for
//! this module without changing a single output byte.
//!
//! Workers touch only in-memory slices — all I/O stays behind the
//! engines' blessed seams.

use pdisk::Record;

/// Inputs below this many records are merged serially: thread spawn and
/// split-search overhead would exceed the merge itself.
const MIN_PARALLEL: usize = 8 * 1024;

/// The Merge Path split of diagonal `d`: the unique `(i, j)` with
/// `i + j == d` such that `a[..i]` and `b[..j]` are exactly the first
/// `d` records of the a-first merge of `a` and `b`.
///
/// Formally: `i` is the smallest index with `i + j == d` satisfying
/// `a[i..]` strictly after `b[..j]` (`b[j-1] < a[i]`, ties a-first) and
/// `a[..i]` never after `b[j..]` (`a[i-1] <= b[j]`).  Found by binary
/// search over the feasible `i` range in `O(log min(|a|, |b|, d))`.
pub fn diagonal_split<R: Record>(a: &[R], b: &[R], d: usize) -> (usize, usize) {
    debug_assert!(d <= a.len() + b.len(), "diagonal beyond the grid");
    let mut lo = d.saturating_sub(b.len());
    let mut hi = d.min(a.len());
    while lo < hi {
        // `i < hi <= min(d, |a|)` and `j = d - i >= 1` with
        // `j <= |b|` (from `i >= lo >= d - |b|`), so both probes index
        // in bounds.
        let i = lo + (hi - lo) / 2;
        let j = d - i;
        if b[j - 1].key() >= a[i].key() {
            // On equal keys the `a` record precedes, so `a[i]` belongs
            // to the prefix: the split lies strictly right of `i`.
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    (lo, d - lo)
}

// One worker's share of a partitioned merge: a plain serial two-way
// merge of its `(a, b)` sub-slices into its disjoint output slice,
// taking from `a` on equal keys.  Pure in-memory compute — srmlint's
// blocking pass verifies nothing reachable from here blocks.
#[srmlint::worker_entry]
fn merge_segment<R: Record>(a: &[R], b: &[R], out: &mut [R]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = j == b.len() || (i < a.len() && a[i].key() <= b[j].key());
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Merge sorted `a` and `b` into `out` (which must hold exactly
/// `|a| + |b|` records) across up to `threads` workers, ties a-first.
///
/// The output is identical for every `threads` value; small inputs and
/// `threads <= 1` run the serial merge directly.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn merge_pair_into<R: Record>(a: &[R], b: &[R], out: &mut [R], threads: usize) {
    let n = a.len() + b.len();
    assert_eq!(out.len(), n, "output slice must hold every input record");
    if threads <= 1 || n < MIN_PARALLEL {
        merge_segment(a, b, out);
        return;
    }
    let threads = threads.min(n);
    let seg = n.div_ceil(threads);
    // Cut the path at every segment boundary up front (cheap: one
    // binary search per worker), then hand each worker its independent
    // (a-range, b-range, out-range) triple.
    let mut splits = Vec::with_capacity(threads + 1);
    splits.push((0usize, 0usize));
    let mut d = seg;
    while d < n {
        splits.push(diagonal_split(a, b, d));
        d += seg;
    }
    splits.push((a.len(), b.len()));
    std::thread::scope(|scope| {
        let mut rest = out;
        for w in splits.windows(2) {
            let ((i0, j0), (i1, j1)) = (w[0], w[1]);
            let len = (i1 - i0) + (j1 - j0);
            let (seg_out, tail) = rest.split_at_mut(len);
            rest = tail;
            let (a_seg, b_seg) = (&a[i0..i1], &b[j0..j1]);
            scope.spawn(move || merge_segment(a_seg, b_seg, seg_out));
        }
    });
}

/// Merge the sorted runs `records[0..chunk], records[chunk..2*chunk], …`
/// (the last possibly short) into one sorted sequence, in place.
///
/// Runs are reduced pairwise — adjacent pairs per round, lower run
/// always on the `a` side — so equal keys keep ascending original-run
/// order: exactly the (key, leaf) order of the tournament tree this
/// replaces.  Each pairwise merge is split across `threads` workers via
/// [`merge_pair_into`].  `chunk == 0` or a single run is a no-op.
pub fn par_merge_sorted_chunks<R: Record>(records: &mut Vec<R>, chunk: usize, threads: usize) {
    let n = records.len();
    if chunk == 0 || chunk >= n {
        return;
    }
    let mut bounds: Vec<usize> = (0..n).step_by(chunk).collect();
    bounds.push(n);
    // Ping-pong between the record buffer and one scratch buffer of the
    // same length; each round halves the run count.
    let mut src = std::mem::take(records);
    let mut dst = src.clone();
    while bounds.len() > 2 {
        let mut next = Vec::with_capacity(bounds.len() / 2 + 2);
        next.push(0);
        let mut t = 0;
        while t + 2 < bounds.len() {
            let (s0, s1, s2) = (bounds[t], bounds[t + 1], bounds[t + 2]);
            merge_pair_into(&src[s0..s1], &src[s1..s2], &mut dst[s0..s2], threads);
            next.push(s2);
            t += 2;
        }
        if t + 1 < bounds.len() {
            // Odd run out this round: carry it over unchanged.
            let (s0, s1) = (bounds[t], bounds[t + 1]);
            dst[s0..s1].copy_from_slice(&src[s0..s1]);
            next.push(s1);
        }
        std::mem::swap(&mut src, &mut dst);
        bounds = next;
    }
    *records = src;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loser_tree::LoserTree;
    use pdisk::{KeyPayloadRecord, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// The reference order: a serial loser-tree merge of the runs, the
    /// exact code path `par_sort_by_key` used before Merge Path.
    fn loser_tree_merge<R: Record>(records: &[R], chunk: usize) -> Vec<R> {
        let n = records.len();
        let mut cursors: Vec<usize> = (0..n).step_by(chunk.max(1).min(n.max(1))).collect();
        if cursors.is_empty() {
            return Vec::new();
        }
        let ends: Vec<usize> = cursors.iter().map(|&s| (s + chunk).min(n)).collect();
        let initial: Vec<u64> = cursors.iter().map(|&c| records[c].key()).collect();
        let mut tree = LoserTree::new(initial);
        let mut out = Vec::with_capacity(n);
        while !tree.all_exhausted() {
            let (leaf, _) = tree.peek();
            out.push(records[cursors[leaf]]);
            cursors[leaf] += 1;
            let next = if cursors[leaf] < ends[leaf] {
                records[cursors[leaf]].key()
            } else {
                u64::MAX
            };
            tree.update(leaf, next);
        }
        out
    }

    fn sorted_random(n: usize, span: u64, seed: u64) -> Vec<U64Record> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v: Vec<U64Record> = (0..n).map(|_| U64Record(rng.random_range(0..span))).collect();
        v.sort_unstable_by_key(|r| r.0);
        v
    }

    #[test]
    fn split_prefixes_reassemble_the_merge() {
        let a = sorted_random(500, 50, 1);
        let b = sorted_random(300, 50, 2);
        let n = a.len() + b.len();
        let mut whole = vec![U64Record(0); n];
        merge_segment(&a, &b, &mut whole);
        for d in [0, 1, 7, 250, 500, 700, n] {
            let (i, j) = diagonal_split(&a, &b, d);
            assert_eq!(i + j, d);
            // The split's two prefixes are exactly the first d records.
            let mut prefix = vec![U64Record(0); d];
            merge_segment(&a[..i], &b[..j], &mut prefix);
            assert_eq!(prefix, whole[..d], "diagonal {d}");
        }
    }

    #[test]
    fn ties_across_the_split_go_a_side_first() {
        // Payload records make the tie-break observable: equal keys,
        // different payloads, and every diagonal must put all a-side
        // copies before any b-side copy.
        type Rec = KeyPayloadRecord<16>;
        let a: Vec<Rec> = (0..40).map(|_| Rec { key: 5, payload: [1; 16] }).collect();
        let b: Vec<Rec> = (0..40).map(|_| Rec { key: 5, payload: [2; 16] }).collect();
        for d in 0..=80usize {
            let (i, j) = diagonal_split(&a, &b, d);
            // All-equal keys with a-first ties: the prefix must be
            // drawn entirely from `a` until `a` is exhausted.
            assert_eq!(i, d.min(40), "diagonal {d}");
            assert_eq!(j, d.saturating_sub(40), "diagonal {d}");
        }
    }

    #[test]
    fn pair_merge_matches_serial_for_every_thread_count() {
        let a = sorted_random(20_000, 1_000, 3);
        let b = sorted_random(15_000, 1_000, 4);
        let mut serial = vec![U64Record(0); a.len() + b.len()];
        merge_segment(&a, &b, &mut serial);
        for threads in [1usize, 2, 3, 5, 8, 16] {
            let mut out = vec![U64Record(0); a.len() + b.len()];
            merge_pair_into(&a, &b, &mut out, threads);
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_sides() {
        let a = sorted_random(9_000, 100, 5);
        let empty: Vec<U64Record> = Vec::new();
        let one = vec![U64Record(50)];
        for threads in [1usize, 4] {
            let mut out = vec![U64Record(0); a.len()];
            merge_pair_into(&a, &empty, &mut out, threads);
            assert_eq!(out, a);
            let mut out = vec![U64Record(0); a.len()];
            merge_pair_into(&empty, &a, &mut out, threads);
            assert_eq!(out, a);
            let mut out = vec![U64Record(0); a.len() + 1];
            merge_pair_into(&a, &one, &mut out, threads);
            assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
            assert_eq!(out.iter().filter(|r| r.0 == 50).count(),
                a.iter().filter(|r| r.0 == 50).count() + 1);
        }
    }

    #[test]
    fn chunked_reduction_equals_loser_tree_exactly() {
        // Duplicate-heavy input (span 13 over 50k records) so split
        // boundaries routinely land inside equal-key runs; the
        // pairwise reduction must still reproduce the tournament
        // tree's output record for record.
        let mut rng = SmallRng::seed_from_u64(6);
        for &(n, chunk) in &[(50_000usize, 7_919usize), (50_000, 12_500), (40_000, 40_000 / 3)] {
            let mut v: Vec<U64Record> =
                (0..n).map(|_| U64Record(rng.random_range(0..13))).collect();
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                v[start..end].sort_unstable_by_key(|r| r.0);
            }
            let expected = loser_tree_merge(&v, chunk);
            for threads in [1usize, 2, 4, 7] {
                let mut got = v.clone();
                par_merge_sorted_chunks(&mut got, chunk, threads);
                assert_eq!(got, expected, "n={n} chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn odd_run_counts_and_degenerate_chunks() {
        let mut v = sorted_random(100, 10, 7);
        let orig = v.clone();
        // chunk 0 and chunk >= n are no-ops.
        par_merge_sorted_chunks(&mut v, 0, 4);
        assert_eq!(v, orig);
        par_merge_sorted_chunks(&mut v, 100, 4);
        assert_eq!(v, orig);
        // Five runs (odd count twice during the reduction).
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 10_000usize;
        let chunk = n.div_ceil(5);
        let mut v: Vec<U64Record> = (0..n).map(|_| U64Record(rng.random_range(0..500))).collect();
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            v[start..end].sort_unstable_by_key(|r| r.0);
        }
        let expected = loser_tree_merge(&v, chunk);
        par_merge_sorted_chunks(&mut v, chunk, 3);
        assert_eq!(v, expected);
    }
}
