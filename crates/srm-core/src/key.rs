//! Block identity and ordering.
//!
//! Everything in SRM's I/O schedule — the forecasting tables, the flush
//! ranking `Rank_{F_t}`, `OutRank_t` — orders blocks by their smallest key.
//! The paper assumes distinct keys; we make the order total for arbitrary
//! inputs by breaking ties on `(run, index)`.

use serde::{Deserialize, Serialize};

/// Identifier of a run within one merge (index into the merge's run list).
pub type RunId = u32;

/// A block's identity plus its ranking key.
///
/// Ordered by `(min key, run, block index)` — the total order used for all
/// rank computations in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockKey {
    /// Smallest record key in the block (`k_{r,i}`).
    pub key: u64,
    /// Which run the block belongs to.
    pub run: RunId,
    /// Index of the block within its run.
    pub idx: u64,
}

impl BlockKey {
    /// Construct a block key.
    #[inline]
    pub fn new(key: u64, run: RunId, idx: u64) -> Self {
        BlockKey { key, run, idx }
    }
}

/// Order-preserving embedding of a probability key `f ∈ (0, 1)` into `u64`.
///
/// Positive IEEE-754 doubles compare the same as their bit patterns, so the
/// raw bits are a monotone mapping — this lets the block-level simulator
/// feed `Uniform(0,1)` order statistics through the same `u64`-keyed
/// machinery the record-level engine uses.
#[inline]
pub fn unit_f64_to_key(f: f64) -> u64 {
    debug_assert!(f > 0.0 && f < 1.0, "key {f} outside (0,1)");
    f.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_key_then_run_then_idx() {
        let a = BlockKey::new(5, 9, 9);
        let b = BlockKey::new(6, 0, 0);
        let c = BlockKey::new(6, 1, 0);
        let d = BlockKey::new(6, 1, 2);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn f64_embedding_is_monotone() {
        let mut prev = unit_f64_to_key(1e-12);
        for i in 1..1000 {
            let f = i as f64 / 1000.0;
            if f <= 0.0 || f >= 1.0 {
                continue;
            }
            let k = unit_f64_to_key(f);
            assert!(k > prev, "non-monotone at {f}");
            prev = k;
        }
    }

    #[test]
    fn f64_embedding_distinguishes_close_values() {
        let a: f64 = 0.5;
        let b = f64::from_bits(a.to_bits() + 1);
        assert!(unit_f64_to_key(b) > unit_f64_to_key(a));
    }
}
