//! Tournament selection tree for `R`-way internal merging.
//!
//! The paper delegates internal merge processing to the classic selection
//! tree of Knuth §5.4.1: `R` leaves, each holding the current key of one
//! run; the root identifies the smallest in `O(1)`, and replacing any
//! leaf's key costs one leaf-to-root replay, `O(log R)` comparisons.
//!
//! This implementation stores the *winner* of every internal match (rather
//! than the loser), which keeps arbitrary-leaf updates correct — the merge
//! engines update non-winning leaves while blocks stream in during the
//! initial load, and replace sentinel keys in place when awaited blocks
//! arrive.
//!
//! Leaves compare by `(key, leaf index)`, so equal keys resolve
//! deterministically and the merge is stable across runs.

/// A tournament tree over `k` leaves with `u64` keys.
///
/// Exhausted runs are parked at [`u64::MAX`]; since ties break on leaf
/// index the tree stays well-defined even when several runs are exhausted.
#[derive(Debug, Clone)]
pub struct LoserTree {
    k: usize,
    /// Heap-shaped bracket: leaves at `k .. 2k-1` hold their own index;
    /// internal nodes `1 .. k-1` hold the winning leaf of their subtree.
    /// For `k == 1` only `winner[1]` is meaningful.
    winner: Vec<usize>,
    keys: Vec<u64>,
}

impl LoserTree {
    /// Build a tree over the given initial keys (one per run).
    ///
    /// # Panics
    /// Panics if `keys` is empty.
    pub fn new(keys: Vec<u64>) -> Self {
        let k = keys.len();
        assert!(k > 0, "tournament tree needs at least one leaf");
        let mut winner = vec![usize::MAX; 2 * k];
        for (i, slot) in winner.iter_mut().skip(k).enumerate() {
            *slot = i;
        }
        if k == 1 {
            winner[1] = 0;
            return LoserTree { k, winner, keys };
        }
        for n in (1..k).rev() {
            let a = winner[2 * n];
            let b = winner[2 * n + 1];
            winner[n] = if Self::beats(&keys, a, b) { a } else { b };
        }
        LoserTree { k, winner, keys }
    }

    /// `true` when leaf `a` wins against leaf `b` (smaller `(key, index)`).
    #[inline]
    fn beats(keys: &[u64], a: usize, b: usize) -> bool {
        (keys[a], a) < (keys[b], b)
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.k
    }

    /// Current overall winner: `(leaf, key)`.
    #[inline]
    pub fn peek(&self) -> (usize, u64) {
        let w = self.winner[1];
        (w, self.keys[w])
    }

    /// The key currently registered at `leaf`.
    #[inline]
    pub fn key_of(&self, leaf: usize) -> u64 {
        self.keys[leaf]
    }

    /// Replace `leaf`'s key and replay its path to the root.  Correct for
    /// any leaf, whether or not it is the current winner, and for both
    /// increasing and decreasing key changes.
    pub fn update(&mut self, leaf: usize, new_key: u64) {
        debug_assert!(leaf < self.k);
        self.keys[leaf] = new_key;
        if self.k == 1 {
            return;
        }
        let mut node = (self.k + leaf) / 2;
        while node >= 1 {
            let a = self.winner[2 * node];
            let b = self.winner[2 * node + 1];
            self.winner[node] = if Self::beats(&self.keys, a, b) { a } else { b };
            node /= 2;
        }
    }

    /// True when every leaf is parked at `u64::MAX` (all runs exhausted).
    pub fn all_exhausted(&self) -> bool {
        self.keys[self.winner[1]] == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_leaf() {
        let mut t = LoserTree::new(vec![42]);
        assert_eq!(t.peek(), (0, 42));
        t.update(0, 7);
        assert_eq!(t.peek(), (0, 7));
        t.update(0, u64::MAX);
        assert!(t.all_exhausted());
    }

    #[test]
    fn winner_is_global_min_after_build() {
        let t = LoserTree::new(vec![5, 3, 9, 1, 7]);
        assert_eq!(t.peek(), (3, 1));
    }

    #[test]
    fn ties_resolve_to_lowest_leaf() {
        let t = LoserTree::new(vec![4, 2, 2, 8]);
        assert_eq!(t.peek(), (1, 2));
    }

    /// Full k-way merge through the tree equals a plain sort, across many
    /// random shapes (including k = 2, odd k, and k not a power of two).
    #[test]
    fn merging_matches_sort() {
        let mut rng = SmallRng::seed_from_u64(123);
        for &k in &[1usize, 2, 3, 5, 8, 13, 31] {
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let len = rng.random_range(0..40);
                    let mut v: Vec<u64> = (0..len).map(|_| rng.random_range(0..500)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let mut expected: Vec<u64> = runs.iter().flatten().copied().collect();
            expected.sort_unstable();

            let mut cursors = vec![0usize; k];
            let initial: Vec<u64> = runs
                .iter()
                .map(|r| r.first().copied().unwrap_or(u64::MAX))
                .collect();
            let mut tree = LoserTree::new(initial);
            let mut out = Vec::with_capacity(expected.len());
            while !tree.all_exhausted() {
                let (leaf, key) = tree.peek();
                out.push(key);
                cursors[leaf] += 1;
                let next = runs[leaf].get(cursors[leaf]).copied().unwrap_or(u64::MAX);
                tree.update(leaf, next);
            }
            assert_eq!(out, expected, "k = {k}");
            for (i, r) in runs.iter().enumerate() {
                assert_eq!(cursors[i], r.len());
            }
        }
    }

    /// Non-winner leaves must be updatable in both directions — the merge
    /// engine lowers sentinel keys during the initial load and raises them
    /// when blocks are consumed.
    #[test]
    fn arbitrary_leaf_updates() {
        let mut t = LoserTree::new(vec![u64::MAX; 5]);
        // Fill in arbitrary order, peeking as we go.
        t.update(3, 30);
        assert_eq!(t.peek(), (3, 30));
        t.update(1, 50);
        assert_eq!(t.peek(), (3, 30));
        t.update(1, 10); // lower a loser below the winner
        assert_eq!(t.peek(), (1, 10));
        t.update(3, 5); // lower a loser below again
        assert_eq!(t.peek(), (3, 5));
        t.update(3, 60); // raise the winner
        assert_eq!(t.peek(), (1, 10));
        t.update(0, 10); // tie: lower leaf wins
        assert_eq!(t.peek(), (0, 10));
    }

    #[test]
    fn repeated_equal_keys() {
        let mut t = LoserTree::new(vec![1, 1, 1]);
        assert_eq!(t.peek().0, 0);
        t.update(0, 1);
        assert_eq!(t.peek().0, 0);
        t.update(0, 2);
        assert_eq!(t.peek().0, 1);
        t.update(1, 2);
        assert_eq!(t.peek().0, 2);
        t.update(2, 2);
        assert_eq!(t.peek(), (0, 2));
    }

    #[test]
    fn stress_against_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = SmallRng::seed_from_u64(9);
        for k in [2usize, 3, 16, 17] {
            let mut keys: Vec<u64> = (0..k).map(|_| rng.random_range(0..1000)).collect();
            let mut tree = LoserTree::new(keys.clone());
            for _ in 0..2000 {
                let heap: BinaryHeap<Reverse<(u64, usize)>> =
                    keys.iter().enumerate().map(|(i, &v)| Reverse((v, i))).collect();
                let Reverse((k_min, leaf_min)) = heap.peek().copied().unwrap();
                assert_eq!(tree.peek(), (leaf_min, k_min), "k = {k}");
                let leaf = rng.random_range(0..k);
                let new = rng.random_range(0..1000);
                keys[leaf] = new;
                tree.update(leaf, new);
            }
        }
    }
}
