//! Writing runs in the forecasting format with perfect write parallelism.
//!
//! §5.1's output buffer `M_W` holds `2D` blocks: a stripe of `D` blocks is
//! written as one parallel operation as soon as it can be *formatted*, i.e.
//! as soon as the forecast key of each of its blocks is known.  Block `i`
//! implants `k_{r,i+D}` — the smallest key of the run's next block on the
//! same disk — so a stripe is ready exactly when `2D` blocks are buffered
//! (or the run has ended, in which case missing successors implant
//! [`NO_BLOCK`]).
//!
//! The initial block implants the keys of blocks `1 ..= D`, one per disk,
//! seeding the merger's forecasting table for every disk the run touches.
//! (The paper's text says blocks `0 ..= D−1`; block 0's own key is useless
//! to a reader that already holds block 0, while block `D`'s key is needed
//! for the run's start disk — we implant the off-by-one-corrected set, the
//! same `D` keys of storage.  DESIGN.md §3 records this deviation.)

use crate::key::RunId;
use pdisk::trace::TraceEvent;
use pdisk::{
    Block, DiskArray, DiskId, Forecast, Geometry, PdiskError, Record, StripedRun, WriteTicket,
};
use pdisk::block::NO_BLOCK;
use std::collections::VecDeque;

/// Incremental writer for one cyclically striped run.
///
/// Feed records in ascending key order via [`RunWriter::push`]; call
/// [`RunWriter::finish`] to flush and obtain the [`StripedRun`] layout.
///
/// The writer allocates one slot per disk per stripe as it goes, so run
/// length need not be known in advance (replacement selection produces
/// unpredictable run lengths).  Allocations for one run must not interleave
/// with another writer's on the same array — the sorters write one run at a
/// time, which guarantees the contiguous per-disk layout [`StripedRun`]
/// assumes.
#[derive(Debug)]
pub struct RunWriter<R: Record> {
    geom: Geometry,
    start_disk: DiskId,
    /// Records accumulating toward the next block.
    cur: Vec<R>,
    /// Blocks awaiting forecast finalization (`M_W`, at most `2D`).
    pending: VecDeque<Vec<R>>,
    /// Index of the first pending block within the run.
    emitted_blocks: u64,
    /// Min keys of blocks `emitted_blocks ..` (parallels + outlives
    /// `pending` by nothing; same length as `pending`).
    pending_min_keys: VecDeque<u64>,
    /// Per-disk first-slot offsets, captured at first allocation.
    base_offsets: Vec<Option<u64>>,
    records: u64,
    last_key: Option<u64>,
    stripes_written: u64,
    finished: bool,
    /// Write-behind mode: stripes are `submit_write`-ten and completed up
    /// to [`pdisk::WRITE_BEHIND_LIMIT`] stripes later, so disk time hides
    /// behind record production.
    pipelined: bool,
    /// Stripe writes in flight, oldest first (pipelined mode only; at
    /// most [`pdisk::WRITE_BEHIND_LIMIT`] deep — the torn-write window
    /// [`pdisk::FileDiskArray`] recovery tolerates is sized to match).
    tickets: VecDeque<WriteTicket>,
}

impl<R: Record> RunWriter<R> {
    /// Start a run whose block 0 will live on `start_disk`.
    pub fn new(geom: Geometry, start_disk: DiskId) -> Self {
        assert!(start_disk.index() < geom.d);
        RunWriter {
            geom,
            start_disk,
            cur: Vec::with_capacity(geom.b),
            pending: VecDeque::with_capacity(2 * geom.d),
            emitted_blocks: 0,
            pending_min_keys: VecDeque::with_capacity(2 * geom.d),
            base_offsets: vec![None; geom.d],
            records: 0,
            last_key: None,
            stripes_written: 0,
            finished: false,
            pipelined: false,
            tickets: VecDeque::new(),
        }
    }

    /// Like [`RunWriter::new`], but with write-behind: each stripe is
    /// submitted (via [`DiskArray::submit_write`]) at exactly the record
    /// position [`RunWriter::new`] would write it — so the operation
    /// sequence and [`pdisk::IoStats`] are identical — and completed up
    /// to [`pdisk::WRITE_BEHIND_LIMIT`] stripe submissions later (or in
    /// [`RunWriter::finish`]), keeping a bounded window of stripes in
    /// flight.  Completions happen oldest-first, so durability order
    /// matches submission order.
    pub fn new_pipelined(geom: Geometry, start_disk: DiskId) -> Self {
        RunWriter {
            pipelined: true,
            ..Self::new(geom, start_disk)
        }
    }

    /// Disk of block `i` under the cyclic layout.
    fn disk_of(&self, i: u64) -> DiskId {
        DiskId::from_mod(u64::from(self.start_disk.0) + i, self.geom.d)
    }

    /// Append one record (keys must be non-decreasing).
    pub fn push<A: DiskArray<R>>(&mut self, array: &mut A, rec: R) -> Result<(), PdiskError> {
        assert!(!self.finished, "push after finish");
        if let Some(last) = self.last_key {
            debug_assert!(rec.key() >= last, "run records must be sorted");
        }
        self.last_key = Some(rec.key());
        self.records += 1;
        self.cur.push(rec);
        if self.cur.len() == self.geom.b {
            // Draw the replacement buffer from the stack's pool when it
            // has one: the backend returns encoded blocks' record vectors
            // there, closing the recycling loop.
            let fresh = match array.buffer_pool() {
                Some(pool) => pool.take_records(self.geom.b),
                None => Vec::with_capacity(self.geom.b),
            };
            let block = std::mem::replace(&mut self.cur, fresh);
            self.enqueue_block(block);
            // Write a stripe once its forecasts are all known: the first D
            // pending blocks need min keys of the next D, so 2D buffered
            // blocks release one stripe.
            while self.pending.len() >= 2 * self.geom.d {
                self.write_stripe(array, self.geom.d)?;
            }
        }
        Ok(())
    }

    fn enqueue_block(&mut self, block: Vec<R>) {
        debug_assert!(!block.is_empty());
        self.pending_min_keys.push_back(block[0].key());
        self.pending.push_back(block);
    }

    /// Min key of run block `i`, if it is still buffered.
    fn buffered_min_key(&self, i: u64) -> Option<u64> {
        if i < self.emitted_blocks {
            return None;
        }
        self.pending_min_keys.get((i - self.emitted_blocks) as usize).copied()
    }

    /// Emit the first `count` pending blocks as one parallel write.
    fn write_stripe<A: DiskArray<R>>(&mut self, array: &mut A, count: usize) -> Result<(), PdiskError> {
        let count = count.min(self.pending.len());
        debug_assert!(count >= 1 && count <= self.geom.d);
        if self.emitted_blocks == 0 {
            if let Some(sink) = array.trace_sink() {
                sink.emit(TraceEvent::RunStart {
                    start_disk: self.start_disk,
                });
            }
        }
        let d = self.geom.d as u64;
        let mut writes = Vec::with_capacity(count);
        for _ in 0..count {
            let Some(records) = self.pending.pop_front() else {
                break;
            };
            let i = self.emitted_blocks;
            self.pending_min_keys.pop_front();
            self.emitted_blocks += 1;
            let forecast = if i == 0 {
                // Initial block: keys of blocks 1..=D.
                let keys: Vec<u64> = (1..=d)
                    .map(|m| self.buffered_min_key(m).unwrap_or(NO_BLOCK))
                    .collect();
                Forecast::Initial(keys)
            } else {
                Forecast::Next(self.buffered_min_key(i + d).unwrap_or(NO_BLOCK))
            };
            let disk = self.disk_of(i);
            let offset = array.alloc_contiguous(disk, 1)?;
            let base = *self.base_offsets[disk.index()].get_or_insert(offset);
            debug_assert_eq!(
                base + i / d,
                offset,
                "allocations for one run must be contiguous per disk"
            );
            writes.push((
                pdisk::BlockAddr::new(disk, offset),
                Block::new(records, forecast),
            ));
        }
        if self.pipelined {
            // Write-behind: retire the oldest stripes down to the window
            // bound, then put this one in flight.  Submission (where the
            // operation is charged and traced) happens at the same record
            // position the serial writer's `write` would, so the I/O
            // sequence is unchanged — only completion is deferred.
            while self.tickets.len() >= pdisk::WRITE_BEHIND_LIMIT {
                let Some(oldest) = self.tickets.pop_front() else {
                    break;
                };
                array.complete_write(oldest)?;
            }
            self.tickets.push_back(array.submit_write(writes)?);
        } else {
            array.write(writes)?;
        }
        self.stripes_written += 1;
        Ok(())
    }

    /// Abandon all write-behind tickets without completing them; returns
    /// whether any were in flight.
    ///
    /// Error-path only (see `Merger::quiesce`): the submitted stripes
    /// may or may not have landed — in a real crash that is exactly a
    /// torn-write window.  Their traces show `Write` with no
    /// `WriteDurable`, so the modelcheck durability invariant rejects
    /// any replay that reads them, and resume rewrites the frames from
    /// the last durable checkpoint.
    pub(crate) fn abandon_ticket(&mut self) -> bool {
        let had = !self.tickets.is_empty();
        self.tickets.clear();
        had
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Parallel write operations issued so far.
    pub fn stripes_written(&self) -> u64 {
        self.stripes_written
    }

    /// Flush everything and return the run's layout.
    ///
    /// # Panics
    /// Panics if no records were pushed (empty runs are never written).
    pub fn finish<A: DiskArray<R>>(mut self, array: &mut A) -> Result<StripedRun, PdiskError> {
        assert!(self.records > 0, "refusing to write an empty run");
        self.finished = true;
        if !self.cur.is_empty() {
            let block = std::mem::take(&mut self.cur);
            self.enqueue_block(block);
        }
        while !self.pending.is_empty() {
            self.write_stripe(array, self.geom.d)?;
        }
        while let Some(ticket) = self.tickets.pop_front() {
            array.complete_write(ticket)?;
        }
        let len_blocks = self.emitted_blocks;
        if let Some(sink) = array.trace_sink() {
            sink.emit(TraceEvent::RunEnd {
                start_disk: self.start_disk,
                len_blocks,
            });
        }
        Ok(StripedRun {
            start_disk: self.start_disk,
            len_blocks,
            records: self.records,
            base_offsets: self
                .base_offsets
                .iter()
                .map(|o| o.unwrap_or(0))
                .collect(),
        })
    }
}

/// Read a whole run back in stripe-sized parallel reads (a verification /
/// utility path, also used by examples).  Returns the records in order.
pub fn read_run<R: Record, A: DiskArray<R>>(
    array: &mut A,
    run: &StripedRun,
) -> Result<Vec<R>, PdiskError> {
    let d = array.geometry().d as u64;
    let mut out = Vec::with_capacity(run.records as usize);
    let mut i = 0u64;
    while i < run.len_blocks {
        let hi = (i + d).min(run.len_blocks);
        let addrs: Vec<_> = (i..hi).map(|j| run.addr_of(j)).collect();
        for block in array.read(&addrs)? {
            out.extend(block.records);
        }
        i = hi;
    }
    Ok(out)
}

/// Identifier newtype re-export for writer users.
pub type OutputRunId = RunId;

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::{MemDiskArray, U64Record};

    fn geom(d: usize, b: usize) -> Geometry {
        Geometry::new(d, b, 1_000_000).unwrap()
    }

    fn write_run(
        array: &mut MemDiskArray<U64Record>,
        g: Geometry,
        start: u32,
        n: u64,
    ) -> StripedRun {
        let mut w = RunWriter::new(g, DiskId(start));
        for k in 0..n {
            w.push(array, U64Record(k * 3)).unwrap();
        }
        w.finish(array).unwrap()
    }

    #[test]
    fn roundtrip_various_shapes() {
        for &(d, b, n, start) in &[
            (1usize, 4usize, 17u64, 0u32),
            (3, 4, 1, 2),
            (3, 4, 12, 1),   // exactly 3 blocks
            (3, 4, 100, 0),  // many stripes
            (4, 2, 7, 3),    // partial final block
            (2, 5, 20, 1),
        ] {
            let g = geom(d, b);
            let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
            let run = write_run(&mut a, g, start, n);
            assert_eq!(run.records, n);
            assert_eq!(run.len_blocks, n.div_ceil(b as u64));
            let back = read_run(&mut a, &run).unwrap();
            let expected: Vec<U64Record> = (0..n).map(|k| U64Record(k * 3)).collect();
            assert_eq!(back, expected, "d={d} b={b} n={n} start={start}");
        }
    }

    #[test]
    fn every_write_is_a_full_stripe_except_the_tail() {
        let g = geom(4, 8);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let run = write_run(&mut a, g, 0, 8 * 4 * 5); // exactly 20 blocks = 5 stripes
        assert_eq!(run.len_blocks, 20);
        let stats = a.stats();
        assert_eq!(stats.write_ops, 5);
        assert_eq!(stats.blocks_written, 20);
        assert!((stats.write_parallelism() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_next_points_d_blocks_ahead() {
        let g = geom(3, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let run = write_run(&mut a, g, 1, 2 * 10); // 10 blocks
        // Block i's forecast must equal block (i+3)'s min key.
        for i in 0..10u64 {
            let block = a.peek(run.addr_of(i)).unwrap().unwrap();
            match (&block.forecast, i) {
                (Forecast::Initial(keys), 0) => {
                    assert_eq!(keys.len(), 3);
                    for (m, &k) in keys.iter().enumerate() {
                        let j = m as u64 + 1;
                        let expect = a.peek(run.addr_of(j)).unwrap().unwrap().min_key();
                        assert_eq!(k, expect, "initial key for block {j}");
                    }
                }
                (Forecast::Next(k), i) if i + 3 < 10 => {
                    let expect = a.peek(run.addr_of(i + 3)).unwrap().unwrap().min_key();
                    assert_eq!(*k, expect, "block {i}");
                }
                (Forecast::Next(k), _) => assert_eq!(*k, NO_BLOCK, "tail block {i}"),
                (f, i) => panic!("unexpected forecast {f:?} at block {i}"),
            }
        }
    }

    #[test]
    fn short_run_initial_table_padded() {
        let g = geom(4, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let run = write_run(&mut a, g, 2, 3); // 2 blocks only
        let b0 = a.peek(run.addr_of(0)).unwrap().unwrap();
        match &b0.forecast {
            Forecast::Initial(keys) => {
                assert_eq!(keys.len(), 4);
                let b1_min = a.peek(run.addr_of(1)).unwrap().unwrap().min_key();
                assert_eq!(keys[0], b1_min);
                assert!(keys[1..].iter().all(|&k| k == NO_BLOCK));
            }
            f => panic!("block 0 must carry Initial, got {f:?}"),
        }
    }

    #[test]
    fn blocks_land_on_cyclic_disks() {
        let g = geom(3, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let run = write_run(&mut a, g, 2, 12); // 6 blocks, start disk 2
        for i in 0..6u64 {
            assert_eq!(run.addr_of(i).disk.0, ((2 + i) % 3) as u32);
            assert!(a.peek(run.addr_of(i)).unwrap().is_some(), "block {i} written");
        }
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_rejected() {
        let g = geom(2, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let w: RunWriter<U64Record> = RunWriter::new(g, DiskId(0));
        let _ = w.finish(&mut a);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn unsorted_push_rejected_in_debug() {
        let g = geom(2, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let mut w = RunWriter::new(g, DiskId(0));
        w.push(&mut a, U64Record(5)).unwrap();
        w.push(&mut a, U64Record(4)).unwrap();
    }

    #[test]
    fn two_sequential_runs_do_not_overlap() {
        let g = geom(3, 2);
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(g);
        let r1 = write_run(&mut a, g, 0, 14);
        let r2 = write_run(&mut a, g, 1, 10);
        let mut slots = std::collections::HashSet::new();
        for run in [&r1, &r2] {
            for i in 0..run.len_blocks {
                assert!(slots.insert(run.addr_of(i)));
            }
        }
        // Both still read back intact.
        assert_eq!(read_run(&mut a, &r1).unwrap().len(), 14);
        assert_eq!(read_run(&mut a, &r2).unwrap().len(), 10);
    }
}
