//! Checkpoint manifests for multi-pass sorts.
//!
//! A multi-pass external sort is a natural unit of recovery: run formation
//! and every merge pass each leave the *entire* dataset on disk as a set
//! of sorted runs.  [`SortManifest`] records that set — plus everything
//! needed to replay the remaining passes exactly — so a sort killed
//! mid-pass can resume from the last completed pass instead of starting
//! over (see [`crate::SrmSorter::sort_checkpointed`]).
//!
//! The manifest is a small versioned text file, written atomically
//! (temp file + rename) and protected by an FNV-1a checksum line, so a
//! crash *while writing the manifest itself* leaves either the previous
//! valid manifest or a detectably torn one — never a silently wrong one:
//!
//! ```text
//! srm-sort-manifest v1
//! algo srm
//! geometry <D> <B> <M>
//! seed <u64>
//! placement random|staggered
//! records <u64>
//! runs-formed <u64>
//! pass <completed merge passes>
//! draws <placement draws consumed>
//! generation <u64>                 (optional: monotonic save counter, absent = 0)
//! parity <stripe_disks>            (optional: array ran under parity)
//! dead <disk_id> ...               (optional: disks dead at snapshot time)
//! runs <count>
//! run <start_disk> <len_blocks> <records> <base_offset_0> ... <base_offset_D-1>
//! ...
//! checksum <fnv1a64 of all preceding bytes, hex>
//! ```
//!
//! Each [`SortManifest::save`] journals: the previous valid manifest is
//! first rotated to `<path>.prev`, then the new one is written to
//! `<path>.tmp`, fsynced, and renamed over `path`, stamped with a
//! **generation number** one past the newest valid generation on disk.
//! Recovery ([`SortManifest::load_latest`]) picks the newest *valid*
//! manifest among `path` and `path.prev` — so a crash at any byte of a
//! manifest write (including a torn rename) falls back to the previous
//! checkpoint instead of refusing to resume.
//!
//! `draws` is the key to determinism: SRM's randomized placement draws one
//! start disk per run written.  Fast-forwarding a fresh placement RNG by
//! `draws` before resuming makes the resumed sort draw the *same* start
//! disks an uninterrupted sort would have — so the recovered output is
//! identical, not merely sorted.
//!
//! The optional `parity` / `dead` lines record the redundancy geometry the
//! snapshot was taken under ([`pdisk::RedundancyInfo`]).  A manifest written
//! under parity addresses blocks through the rotating-parity remap, and a
//! disk listed `dead` holds data that exists *only* as parity — so resuming
//! such a manifest on a plain array (or without re-marking the dead disks)
//! would read garbage.  [`SortManifest::validate_redundancy`] refuses those
//! mismatches.

use crate::error::{Result, SrmError};
use crate::sort::{Placement, SrmConfig};
use pdisk::{DiskId, Geometry, RedundancyInfo, StripedRun};
use std::io::Write;
use std::path::Path;

/// Manifest format version understood by this build.
pub const MANIFEST_VERSION: u32 = 1;

const HEADER: &str = "srm-sort-manifest v1";

/// Snapshot of a sort between passes: the surviving runs in merge-queue
/// order plus the state needed to replay the remaining passes.
#[derive(Debug, Clone, PartialEq)]
pub struct SortManifest {
    /// Disk-array geometry the sort ran under; a resume on a different
    /// geometry would misinterpret every address, so it is refused.
    pub geometry: Geometry,
    /// Seed of the sorter that wrote the manifest.
    pub seed: u64,
    /// Start-disk policy of the sorter that wrote the manifest.
    pub placement: Placement,
    /// Total records being sorted.
    pub records: u64,
    /// Runs produced by the formation pass (for the final report).
    pub runs_formed: u64,
    /// Completed merge passes (0 = formation finished, no merges yet).
    pub pass: u64,
    /// Placement draws consumed so far; the resuming sorter fast-forwards
    /// its RNG by this count.
    pub draws: u64,
    /// Monotonic save counter, stamped by [`SortManifest::save`]: each
    /// save writes one past the newest valid generation on disk, and
    /// recovery picks the valid candidate with the largest value.
    pub generation: u64,
    /// Redundancy geometry the snapshot was taken under: `None` for a plain
    /// array, `Some` when the array carried rotating parity (with the set
    /// of disks already dead at snapshot time).
    pub redundancy: Option<RedundancyInfo>,
    /// The surviving runs, in merge-queue order.
    pub runs: Vec<StripedRun>,
}

impl SortManifest {
    /// Snapshot a sort's state after a completed pass.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &SrmConfig,
        geometry: Geometry,
        records: u64,
        runs_formed: u64,
        pass: u64,
        draws: u64,
        redundancy: Option<RedundancyInfo>,
        runs: Vec<StripedRun>,
    ) -> Self {
        SortManifest {
            geometry,
            seed: config.seed,
            placement: config.placement,
            records,
            runs_formed,
            pass,
            draws,
            generation: 0,
            redundancy,
            runs,
        }
    }

    /// Refuse to resume under a sorter or array that doesn't match the one
    /// that wrote the manifest — a mismatch would produce wrong output,
    /// not just different I/O.
    pub fn validate(&self, config: &SrmConfig, geometry: Geometry, records: u64) -> Result<()> {
        if self.geometry != geometry {
            return Err(SrmError::Checkpoint(format!(
                "manifest geometry (D={} B={} M={}) does not match array (D={} B={} M={})",
                self.geometry.d, self.geometry.b, self.geometry.m, geometry.d, geometry.b, geometry.m
            )));
        }
        if self.seed != config.seed {
            return Err(SrmError::Checkpoint(format!(
                "manifest seed {} does not match sorter seed {}",
                self.seed, config.seed
            )));
        }
        if self.placement != config.placement {
            return Err(SrmError::Checkpoint(format!(
                "manifest placement {:?} does not match sorter placement {:?}",
                self.placement, config.placement
            )));
        }
        if self.records != records {
            return Err(SrmError::Checkpoint(format!(
                "manifest records {} does not match input records {records}",
                self.records
            )));
        }
        if self.runs.is_empty() {
            return Err(SrmError::Checkpoint("manifest holds no runs".into()));
        }
        Ok(())
    }

    /// Refuse to resume on an array whose redundancy state doesn't cover
    /// the manifest's.  A manifest written under parity addresses blocks
    /// through the rotating-parity remap, and blocks written while a disk
    /// was dead exist *only* as parity — so the resuming array must have
    /// the same stripe width and must already treat every manifest-dead
    /// disk as dead (extra deaths discovered since the snapshot are fine;
    /// they just mean more reconstruction).
    pub fn validate_redundancy(&self, current: Option<&RedundancyInfo>) -> Result<()> {
        match (&self.redundancy, current) {
            (None, None) => Ok(()),
            (Some(_), None) => Err(SrmError::Checkpoint(
                "manifest was written under parity redundancy but the array has none; \
                 blocks are laid out through the parity remap and degraded writes exist \
                 only as parity"
                    .into(),
            )),
            (None, Some(_)) => Err(SrmError::Checkpoint(
                "manifest was written on a plain array but the array has parity \
                 redundancy; the parity remap would misinterpret every address"
                    .into(),
            )),
            (Some(want), Some(have)) => {
                if want.stripe_disks != have.stripe_disks {
                    return Err(SrmError::Checkpoint(format!(
                        "manifest parity stripe width {} does not match array stripe width {}",
                        want.stripe_disks, have.stripe_disks
                    )));
                }
                if let Some(d) = want.dead.iter().find(|d| !have.dead.contains(d)) {
                    return Err(SrmError::Checkpoint(format!(
                        "manifest records disk {} dead but the array treats it as live; \
                         its degraded-mode writes exist only as parity and a direct read \
                         would return stale or missing data",
                        d.0
                    )));
                }
                Ok(())
            }
        }
    }

    /// Serialize to the manifest text format, checksum line included.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str(HEADER);
        s.push('\n');
        s.push_str("algo srm\n");
        s.push_str(&format!(
            "geometry {} {} {}\n",
            self.geometry.d, self.geometry.b, self.geometry.m
        ));
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!(
            "placement {}\n",
            match self.placement {
                Placement::Random => "random",
                Placement::Staggered => "staggered",
            }
        ));
        s.push_str(&format!("records {}\n", self.records));
        s.push_str(&format!("runs-formed {}\n", self.runs_formed));
        s.push_str(&format!("pass {}\n", self.pass));
        s.push_str(&format!("draws {}\n", self.draws));
        if self.generation > 0 {
            s.push_str(&format!("generation {}\n", self.generation));
        }
        if let Some(red) = &self.redundancy {
            s.push_str(&format!("parity {}\n", red.stripe_disks));
            if !red.dead.is_empty() {
                s.push_str("dead");
                for d in &red.dead {
                    s.push_str(&format!(" {}", d.0));
                }
                s.push('\n');
            }
        }
        s.push_str(&format!("runs {}\n", self.runs.len()));
        for run in &self.runs {
            s.push_str(&format!(
                "run {} {} {}",
                run.start_disk.0, run.len_blocks, run.records
            ));
            for &o in &run.base_offsets {
                s.push_str(&format!(" {o}"));
            }
            s.push('\n');
        }
        s.push_str(&format!("checksum {:016x}\n", fnv1a64(s.as_bytes())));
        s
    }

    /// Parse manifest text, verifying the trailing checksum.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |msg: &str| SrmError::Checkpoint(format!("malformed manifest: {msg}"));
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| bad("missing checksum line"))?;
        let stored = text[body_end..]
            .trim()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("unreadable checksum"))?;
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if stored != computed {
            return Err(SrmError::Checkpoint(format!(
                "manifest checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (torn or corrupted manifest)"
            )));
        }

        let mut lines = text[..body_end].lines().peekable();
        if lines.next() != Some(HEADER) {
            return Err(bad("unknown header or version"));
        }
        if take_field(&mut lines, "algo")? != "srm" {
            return Err(bad("not an srm manifest"));
        }
        let geo: Vec<usize> = parse_ints(&take_field(&mut lines, "geometry")?).map_err(|e| bad(&e))?;
        if geo.len() != 3 {
            return Err(bad("geometry needs three fields"));
        }
        let geometry = Geometry::new(geo[0], geo[1], geo[2])
            .map_err(|e| SrmError::Checkpoint(format!("manifest geometry invalid: {e}")))?;
        let seed: u64 = take_field(&mut lines, "seed")?.parse().map_err(|_| bad("seed"))?;
        let placement = match take_field(&mut lines, "placement")?.as_str() {
            "random" => Placement::Random,
            "staggered" => Placement::Staggered,
            other => return Err(bad(&format!("unknown placement `{other}`"))),
        };
        let records: u64 = take_field(&mut lines, "records")?
            .parse()
            .map_err(|_| bad("records"))?;
        let runs_formed: u64 = take_field(&mut lines, "runs-formed")?
            .parse()
            .map_err(|_| bad("runs-formed"))?;
        let pass: u64 = take_field(&mut lines, "pass")?.parse().map_err(|_| bad("pass"))?;
        let draws: u64 = take_field(&mut lines, "draws")?.parse().map_err(|_| bad("draws"))?;
        // Optional generation line; manifests from before journaled saves
        // carry none and read as generation 0.
        let mut generation = 0u64;
        if lines.peek().is_some_and(|l| l.starts_with("generation ")) {
            generation = take_field(&mut lines, "generation")?
                .parse()
                .map_err(|_| bad("generation"))?;
        }
        // Optional redundancy lines, present only for snapshots taken under
        // parity.  `dead` without `parity` is malformed.
        let mut redundancy = None;
        if lines.peek().is_some_and(|l| l.starts_with("parity ")) {
            let stripe_disks: usize = take_field(&mut lines, "parity")?
                .parse()
                .map_err(|_| bad("parity stripe width"))?;
            if stripe_disks != geometry.d {
                return Err(bad("parity stripe width does not match geometry"));
            }
            let mut dead = Vec::new();
            if lines.peek().is_some_and(|l| l.starts_with("dead ")) {
                let ids: Vec<u32> = parse_ints(&take_field(&mut lines, "dead")?).map_err(|e| bad(&e))?;
                if ids.iter().any(|&i| i as usize >= geometry.d) {
                    return Err(bad("dead disk id out of range for geometry"));
                }
                dead = ids.into_iter().map(DiskId).collect();
            }
            redundancy = Some(RedundancyInfo { stripe_disks, dead });
        }
        let count: usize = take_field(&mut lines, "runs")?
            .parse()
            .map_err(|_| bad("runs count"))?;
        // Cap the pre-allocation: `count` is attacker-ish input (a corrupt
        // or hostile manifest) and should not drive an unbounded reserve.
        let mut runs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let nums: Vec<u64> = parse_ints(&take_field(&mut lines, "run")?).map_err(|e| bad(&e))?;
            if nums.len() != 3 + geometry.d {
                return Err(bad("run line has wrong field count for geometry"));
            }
            runs.push(StripedRun {
                start_disk: DiskId(u32::try_from(nums[0]).map_err(|_| bad("start disk"))?),
                len_blocks: nums[1],
                records: nums[2],
                base_offsets: nums[3..].to_vec(),
            });
        }
        if lines.next().is_some() {
            return Err(bad("trailing data after runs"));
        }
        Ok(SortManifest {
            geometry,
            seed,
            placement,
            records,
            runs_formed,
            pass,
            draws,
            generation,
            redundancy,
            runs,
        })
    }

    /// Write journaled and atomic.  The previous valid manifest at
    /// `path` is first rotated to `<path>.prev`; the new manifest is
    /// then serialized to `<path>.tmp`, fsynced, and renamed over
    /// `path`, stamped with a generation one past the newest valid
    /// generation already on disk.  A crash at any point leaves at
    /// least one valid manifest for [`Self::load_latest`] to pick up.
    pub fn save(&mut self, path: &Path) -> Result<()> {
        self.save_clocked(path, None)
    }

    /// [`Self::save`] with an extra crash boundary, `manifest-sync`,
    /// ticked between the temp file's fsync and the publishing rename.
    /// A crash there models fsyncgate's worst case: the barrier ran
    /// (or failed) but the new generation was never published, so
    /// recovery must come up from the rotated `.prev` generation.  The
    /// rotation below happens *before* the temp write precisely so
    /// that fallback always exists.
    pub fn save_clocked(&mut self, path: &Path, clock: Option<&pdisk::CrashClock>) -> Result<()> {
        let ckpt = |e: std::io::Error| {
            SrmError::Checkpoint(format!("cannot write manifest {}: {e}", path.display()))
        };
        let prev = manifest_sibling(path, "prev");
        let newest = [path, prev.as_path()]
            .into_iter()
            .filter_map(|p| Self::load(p).ok())
            .map(|m| m.generation)
            .max();
        self.generation = newest.map_or(1, |g| g + 1);
        // Rotate only a *valid* current manifest: renaming a torn one
        // over `.prev` would clobber the good fallback copy.
        if path.exists() && Self::load(path).is_ok() {
            std::fs::rename(path, &prev).map_err(ckpt)?;
        }
        let tmp = manifest_sibling(path, "tmp");
        let mut f = std::fs::File::create(&tmp).map_err(ckpt)?;
        f.write_all(self.encode().as_bytes()).map_err(ckpt)?;
        f.sync_all().map_err(ckpt)?;
        drop(f);
        if let Some(c) = clock {
            c.tick("manifest-sync")?;
        }
        std::fs::rename(&tmp, path).map_err(ckpt)?;
        Ok(())
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            SrmError::Checkpoint(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        Self::parse(&text)
    }

    /// Recovery rule: the newest *valid* manifest among `path` and its
    /// `.prev` journal sibling.
    ///
    /// * No candidate file exists → `Ok(None)` (nothing to resume).
    /// * At least one candidate parses and passes its checksum → the one
    ///   with the largest generation.
    /// * Candidates exist but every one is torn or corrupt → an error;
    ///   resuming blind would re-sort from scratch and clobber state
    ///   the operator may want to inspect.
    pub fn load_latest(path: &Path) -> Result<Option<Self>> {
        let prev = manifest_sibling(path, "prev");
        let candidates = [path, prev.as_path()];
        let mut best: Option<Self> = None;
        let mut existed = 0u32;
        let mut last_err = None;
        for p in candidates {
            if !p.exists() {
                continue;
            }
            existed += 1;
            match Self::load(p) {
                Ok(m) if best.as_ref().is_none_or(|b| m.generation > b.generation) => {
                    best = Some(m);
                }
                Ok(_) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match (best, existed, last_err) {
            (Some(m), _, _) => Ok(Some(m)),
            (None, 0, _) => Ok(None),
            (None, _, Some(e)) => Err(SrmError::Checkpoint(format!(
                "every manifest candidate for {} is corrupt (last error: {e})",
                path.display()
            ))),
            (None, _, None) => Err(SrmError::Checkpoint(format!(
                "every manifest candidate for {} is unreadable",
                path.display()
            ))),
        }
    }

    /// Delete a completed sort's manifest, including its `.prev` journal
    /// sibling and any orphaned `.tmp`; missing files are fine (the sort
    /// may never have checkpointed).
    pub fn remove(path: &Path) -> Result<()> {
        for p in [
            path.to_path_buf(),
            manifest_sibling(path, "prev"),
            manifest_sibling(path, "tmp"),
        ] {
            match std::fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(SrmError::Checkpoint(format!(
                        "cannot remove manifest {}: {e}",
                        p.display()
                    )))
                }
            }
        }
        Ok(())
    }
}

/// `<path>.<suffix>` with the suffix *appended* (not replacing an
/// existing extension), so `sort.manifest` journals beside itself as
/// `sort.manifest.prev` / `sort.manifest.tmp`.
pub(crate) fn manifest_sibling(path: &Path, suffix: &str) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".");
    os.push(suffix);
    std::path::PathBuf::from(os)
}

/// Consume the next manifest line, which must be `<name> <value>`, and
/// return the value.  Shared by the SRM and (via re-use) DSM parsers.
fn take_field<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
    name: &str,
) -> Result<String> {
    let line = lines
        .next()
        .ok_or_else(|| SrmError::Checkpoint("malformed manifest: truncated".into()))?;
    line.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix(' '))
        .map(str::to_owned)
        .ok_or_else(|| {
            SrmError::Checkpoint(format!(
                "malformed manifest: expected `{name}` line, got `{line}`"
            ))
        })
}

fn parse_ints<T: std::str::FromStr>(s: &str) -> std::result::Result<Vec<T>, String> {
    s.split_whitespace()
        .map(|w| w.parse::<T>().map_err(|_| format!("bad integer `{w}`")))
        .collect()
}

/// FNV-1a 64-bit — the same framing integrity check the file backend uses
/// per block (`pdisk::file`), here applied to the whole manifest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortManifest {
        let geometry = Geometry::new(3, 4, 96).unwrap();
        SortManifest::new(
            &SrmConfig::default(),
            geometry,
            1000,
            21,
            2,
            25,
            None,
            vec![
                StripedRun {
                    start_disk: DiskId(1),
                    len_blocks: 130,
                    records: 520,
                    base_offsets: vec![10, 20, 30],
                },
                StripedRun {
                    start_disk: DiskId(0),
                    len_blocks: 120,
                    records: 480,
                    base_offsets: vec![55, 66, 77],
                },
            ],
        )
    }

    #[test]
    fn encode_parse_roundtrips() {
        let m = sample();
        let parsed = SortManifest::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample().encode();
        // Flip one digit in a run line.
        let broken = text.replace("run 1 130 520", "run 1 131 520");
        let err = SortManifest::parse(&broken).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Truncation loses the checksum line entirely.
        let truncated = &text[..text.len() / 2];
        assert!(SortManifest::parse(truncated).is_err());
    }

    #[test]
    fn save_load_roundtrips_and_remove_is_idempotent() {
        let dir = std::env::temp_dir().join(format!("srm-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sort.manifest");
        let mut m = sample();
        m.save(&path).unwrap();
        assert_eq!(m.generation, 1, "first save starts the generation chain");
        assert_eq!(SortManifest::load(&path).unwrap(), m);
        SortManifest::remove(&path).unwrap();
        SortManifest::remove(&path).unwrap(); // second remove: no error
        assert!(SortManifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_journal_the_previous_generation() {
        let dir = std::env::temp_dir().join(format!("srm-manifest-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sort.manifest");
        let mut m = sample();
        m.save(&path).unwrap(); // pass 2, generation 1
        m.pass = 3;
        m.save(&path).unwrap();
        assert_eq!(m.generation, 2);
        // Both generations live on disk: the newest at `path`, its
        // predecessor journaled beside it.
        let latest = SortManifest::load_latest(&path).unwrap().unwrap();
        assert_eq!(latest, m);
        let prev = SortManifest::load(&manifest_sibling(&path, "prev")).unwrap();
        assert_eq!(prev.generation, 1);
        assert_eq!(prev.pass, 2, "journal holds the pre-update snapshot");
        // Remove clears the whole journal.
        SortManifest::remove(&path).unwrap();
        assert!(SortManifest::load_latest(&path).unwrap().is_none());
        assert!(!manifest_sibling(&path, "prev").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_falls_back_to_the_previous_valid_generation() {
        let dir = std::env::temp_dir().join(format!("srm-manifest-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sort.manifest");
        let mut m = sample();
        m.save(&path).unwrap(); // pass 2, generation 1
        m.pass = 3;
        m.save(&path).unwrap();
        // Tear the newest manifest mid-byte: recovery must pick gen 1.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = SortManifest::load_latest(&path).unwrap().unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.pass, 2);
        // With *every* candidate corrupt, recovery refuses loudly.
        let prev = manifest_sibling(&path, "prev");
        let mut pbytes = std::fs::read(&prev).unwrap();
        let mid = pbytes.len() / 2;
        pbytes[mid] ^= 0x01;
        std::fs::write(&prev, &pbytes).unwrap();
        let err = SortManifest::load_latest(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        // And with no candidates at all, there is nothing to resume.
        SortManifest::remove(&path).unwrap();
        assert!(SortManifest::load_latest(&path).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_current_manifest_is_not_rotated_over_the_journal() {
        let dir = std::env::temp_dir().join(format!("srm-manifest-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sort.manifest");
        let mut m = sample();
        m.save(&path).unwrap(); // gen 1
        m.save(&path).unwrap(); // gen 2; gen 1 journaled to .prev
        std::fs::write(&path, b"torn garbage").unwrap();
        // The next save must not shove the garbage over the valid gen 1.
        m.save(&path).unwrap();
        assert_eq!(m.generation, 2, "torn gen 2 does not advance the chain");
        let prev = SortManifest::load(&manifest_sibling(&path, "prev")).unwrap();
        assert_eq!(prev.generation, 1, "journaled gen 1 survived the torn save");
        assert_eq!(
            SortManifest::load_latest(&path).unwrap().unwrap().generation,
            2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_refuses_mismatches() {
        let m = sample();
        let cfg = SrmConfig::default();
        let geom = m.geometry;
        m.validate(&cfg, geom, 1000).unwrap();
        // Wrong geometry.
        let other = Geometry::new(2, 4, 96).unwrap();
        assert!(m.validate(&cfg, other, 1000).is_err());
        // Wrong seed.
        let reseeded = SrmConfig { seed: 7, ..cfg };
        assert!(m.validate(&reseeded, geom, 1000).is_err());
        // Wrong placement.
        let staggered = SrmConfig {
            placement: Placement::Staggered,
            ..cfg
        };
        assert!(m.validate(&staggered, geom, 1000).is_err());
        // Wrong record count.
        assert!(m.validate(&cfg, geom, 999).is_err());
    }

    #[test]
    fn redundancy_lines_roundtrip() {
        // Degraded snapshot: parity width 3, disk 1 dead.
        let mut m = sample();
        m.redundancy = Some(RedundancyInfo {
            stripe_disks: 3,
            dead: vec![DiskId(1)],
        });
        let text = m.encode();
        assert!(text.contains("parity 3\n"), "{text}");
        assert!(text.contains("dead 1\n"), "{text}");
        assert_eq!(SortManifest::parse(&text).unwrap(), m);
        // Healthy parity snapshot: no `dead` line at all.
        m.redundancy = Some(RedundancyInfo {
            stripe_disks: 3,
            dead: vec![],
        });
        let text = m.encode();
        assert!(!text.contains("dead"), "{text}");
        assert_eq!(SortManifest::parse(&text).unwrap(), m);
        // Plain manifests stay byte-compatible with the v1 wire format.
        assert!(!sample().encode().contains("parity"));
    }

    #[test]
    fn redundancy_lines_are_validated_against_geometry() {
        let mut m = sample();
        m.redundancy = Some(RedundancyInfo {
            stripe_disks: 3,
            dead: vec![DiskId(1)],
        });
        // Stripe width must equal D.
        let wrong_width = m.encode().replace("parity 3", "parity 4");
        assert!(SortManifest::parse(&recheck(&wrong_width)).is_err());
        // Dead ids must be in range.
        let wrong_disk = m.encode().replace("dead 1", "dead 9");
        assert!(SortManifest::parse(&recheck(&wrong_disk)).is_err());
    }

    /// Re-stamp a hand-edited manifest body with a fresh valid checksum so
    /// the tests exercise the *semantic* validation, not the checksum.
    fn recheck(text: &str) -> String {
        let body_end = text.rfind("checksum ").unwrap();
        let body = &text[..body_end];
        format!("{body}checksum {:016x}\n", fnv1a64(body.as_bytes()))
    }

    #[test]
    fn validate_redundancy_refuses_mismatches() {
        let mut m = sample();
        // Plain manifest on a plain array: fine.
        m.validate_redundancy(None).unwrap();
        let parity3 = RedundancyInfo {
            stripe_disks: 3,
            dead: vec![],
        };
        // Plain manifest on a parity array: refused (remap mismatch).
        assert!(m.validate_redundancy(Some(&parity3)).is_err());
        m.redundancy = Some(RedundancyInfo {
            stripe_disks: 3,
            dead: vec![DiskId(2)],
        });
        // Parity manifest on a plain array: refused.
        assert!(m.validate_redundancy(None).is_err());
        // Array must already treat manifest-dead disks as dead.
        assert!(m.validate_redundancy(Some(&parity3)).is_err());
        let degraded = RedundancyInfo {
            stripe_disks: 3,
            dead: vec![DiskId(2)],
        };
        m.validate_redundancy(Some(&degraded)).unwrap();
        // Extra deaths discovered since the snapshot are tolerated.
        let worse = RedundancyInfo {
            stripe_disks: 3,
            dead: vec![DiskId(0), DiskId(2)],
        };
        m.validate_redundancy(Some(&worse)).unwrap();
        // Stripe width mismatch is refused outright.
        let narrower = RedundancyInfo {
            stripe_disks: 2,
            dead: vec![DiskId(2)],
        };
        assert!(m.validate_redundancy(Some(&narrower)).is_err());
    }
}

/// What a replacement node can do with a shard's sort state — the
/// **shard-resume entry point** used by `srm-dist` recovery.
///
/// A coordinator replacing a dead shard inspects the shard's manifest
/// *before* spawning the new sorter, so it can log the recovery path it
/// is about to take (fresh restage vs checkpoint resume vs
/// rebuild-then-resume) and refuse early if the checkpoint belongs to a
/// different configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResumePoint {
    /// No (valid) manifest: the sort starts from the staged input.
    Fresh,
    /// A valid checkpoint exists; the sort will fast-forward to here.
    Checkpointed {
        /// Completed merge passes (0 = formation done, no merges yet).
        pass: u64,
        /// Runs still to be merged from this point.
        runs_left: u64,
        /// Generation of the newest valid manifest on disk.
        generation: u64,
        /// Redundancy geometry at snapshot time: `Some` when the sort ran
        /// under parity (with the disks already dead then) — the signal
        /// that a `--parity` recovery may rebuild before resuming.
        redundancy: Option<RedundancyInfo>,
    },
}

/// Inspect `manifest` and report where a sort with this `config`,
/// `geometry`, and `records` count would resume.
///
/// Returns [`ResumePoint::Fresh`] when no valid manifest exists (never
/// started, or already completed and retired), and an error when a valid
/// manifest exists but belongs to a *different* sort — resuming it would
/// misread every block address, so a replacement node must not try.
pub fn resume_point(
    config: &SrmConfig,
    geometry: Geometry,
    records: u64,
    manifest: &Path,
) -> Result<ResumePoint> {
    match SortManifest::load_latest(manifest)? {
        None => Ok(ResumePoint::Fresh),
        Some(m) => {
            m.validate(config, geometry, records)?;
            Ok(ResumePoint::Checkpointed {
                pass: m.pass,
                runs_left: m.runs.len() as u64,
                generation: m.generation,
                redundancy: m.redundancy.clone(),
            })
        }
    }
}
