//! The forecasting data structure (FDS) of §4.
//!
//! `D` per-disk tables; table `i` holds, for each run `j` with unread
//! blocks on disk `i`, the block key of the *smallest block of run `j` on
//! disk `i`* — the earliest-participating block of that run on that disk
//! that is not currently in internal memory.  A parallel read fetches, from
//! each disk, the minimum entry of its table ("the smallest block on disk
//! `i`").
//!
//! Maintenance mirrors §5.3:
//!
//! * when a block of run `j` is read from disk `i`, its *implanted* key
//!   (the smallest key of the run's next block on the same disk, `k_{r,i+D}`)
//!   replaces the entry — or clears it when the run has no further blocks
//!   there;
//! * when blocks of run `j` are *flushed* back to disk `i`, the smallest
//!   flushed key becomes the entry (flushed blocks always precede the
//!   current entry in participation order, because they were read earlier
//!   from the same frontier).
//!
//! The tables keep a frontier for **every** disk even when one is dead:
//! forecasting predicts which *logical* block each disk contributes next,
//! and under a [`pdisk::ParityDiskArray`] a dead disk's predicted block is
//! simply served by parity reconstruction instead of a platter read.  Not
//! special-casing death here is what keeps the degraded-mode schedule — and
//! hence the output — identical to the failure-free one.

use crate::key::{BlockKey, RunId};
use pdisk::DiskId;
use std::collections::{BTreeSet, HashMap};

/// The forecasting data structure: one key table per disk.
#[derive(Debug, Clone, Default)]
pub struct ForecastTable {
    /// Per disk: ordered set of entries, one per run with unread blocks.
    ordered: Vec<BTreeSet<BlockKey>>,
    /// Per disk: run → its current entry, for O(1) replacement.
    current: Vec<HashMap<RunId, BlockKey>>,
}

impl ForecastTable {
    /// Empty table for `d` disks.
    pub fn new(d: usize) -> Self {
        ForecastTable {
            ordered: vec![BTreeSet::new(); d],
            current: vec![HashMap::new(); d],
        }
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.ordered.len()
    }

    /// Set (or clear, with `None`) the entry `H_i[j]` for run `j` on disk
    /// `i`, replacing any previous entry for that run.
    pub fn set(&mut self, disk: DiskId, run: RunId, entry: Option<BlockKey>) {
        let i = disk.index();
        if let Some(old) = self.current[i].remove(&run) {
            self.ordered[i].remove(&old);
        }
        if let Some(new) = entry {
            debug_assert_eq!(new.run, run, "entry run mismatch");
            self.current[i].insert(run, new);
            self.ordered[i].insert(new);
        }
    }

    /// Lower the entry for run `j` on disk `i` to `entry` if it is smaller
    /// than the current one (or absent).  Used by flushing, where several
    /// blocks of one run may return to one disk and only the smallest
    /// should win.
    pub fn lower_to(&mut self, disk: DiskId, run: RunId, entry: BlockKey) {
        let i = disk.index();
        match self.current[i].get(&run) {
            Some(&old) if old <= entry => {}
            _ => self.set(disk, run, Some(entry)),
        }
    }

    /// The entry for run `j` on disk `i`, if any.
    pub fn entry(&self, disk: DiskId, run: RunId) -> Option<BlockKey> {
        self.current[disk.index()].get(&run).copied()
    }

    /// The smallest block on disk `i` — the block a `ParRead` fetches from
    /// that disk.
    pub fn min(&self, disk: DiskId) -> Option<BlockKey> {
        self.ordered[disk.index()].first().copied()
    }

    /// The current `S_t`: the smallest block on every disk that has one.
    pub fn frontier(&self) -> impl Iterator<Item = (DiskId, BlockKey)> + '_ {
        self.ordered
            .iter()
            .enumerate()
            .filter_map(|(i, set)| set.first().map(|&k| (DiskId::from_index(i), k)))
    }

    /// Smallest key across the whole frontier (`min over S_t`), used for
    /// `OutRank_t`.
    pub fn frontier_min(&self) -> Option<BlockKey> {
        self.ordered.iter().filter_map(|s| s.first()).min().copied()
    }

    /// Up to `k` predicted *future* reads on disk `i`, in participation
    /// order, **excluding** the frontier entry (rank 1): ranks 2, 3, …
    /// of that disk's table.  The rank-1 entry is what the next `ParRead`
    /// fetches from the disk anyway; the deeper ranks are the blocks a
    /// read-ahead cache should warm.  Every returned key is a real block
    /// the merge must eventually read — forecast entries only ever move
    /// *earlier* (flushes lower them), never away — so prefetching them
    /// is never wasted work.
    pub fn upcoming(&self, disk: DiskId, k: usize) -> impl Iterator<Item = BlockKey> + '_ {
        self.ordered[disk.index()].iter().skip(1).take(k).copied()
    }

    /// True when no disk has any unread block.
    pub fn is_empty(&self) -> bool {
        self.ordered.iter().all(|s| s.is_empty())
    }

    /// Total number of `(disk, run)` entries (diagnostic).
    pub fn len(&self) -> usize {
        self.ordered.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(key: u64, run: RunId, idx: u64) -> BlockKey {
        BlockKey::new(key, run, idx)
    }

    #[test]
    fn set_replaces_previous_entry_for_same_run() {
        let mut fds = ForecastTable::new(2);
        fds.set(DiskId(0), 3, Some(bk(10, 3, 0)));
        fds.set(DiskId(0), 3, Some(bk(50, 3, 2)));
        assert_eq!(fds.entry(DiskId(0), 3), Some(bk(50, 3, 2)));
        assert_eq!(fds.min(DiskId(0)), Some(bk(50, 3, 2)));
        assert_eq!(fds.len(), 1);
    }

    #[test]
    fn min_is_per_disk() {
        let mut fds = ForecastTable::new(2);
        fds.set(DiskId(0), 0, Some(bk(10, 0, 0)));
        fds.set(DiskId(0), 1, Some(bk(5, 1, 0)));
        fds.set(DiskId(1), 2, Some(bk(1, 2, 0)));
        assert_eq!(fds.min(DiskId(0)), Some(bk(5, 1, 0)));
        assert_eq!(fds.min(DiskId(1)), Some(bk(1, 2, 0)));
        assert_eq!(fds.frontier_min(), Some(bk(1, 2, 0)));
    }

    #[test]
    fn clearing_last_entry_empties_disk() {
        let mut fds = ForecastTable::new(1);
        fds.set(DiskId(0), 0, Some(bk(7, 0, 4)));
        fds.set(DiskId(0), 0, None);
        assert!(fds.is_empty());
        assert_eq!(fds.min(DiskId(0)), None);
        assert_eq!(fds.entry(DiskId(0), 0), None);
    }

    #[test]
    fn lower_to_only_lowers() {
        let mut fds = ForecastTable::new(1);
        fds.set(DiskId(0), 5, Some(bk(30, 5, 6)));
        // A flush of an earlier block lowers the entry…
        fds.lower_to(DiskId(0), 5, bk(12, 5, 3));
        assert_eq!(fds.entry(DiskId(0), 5), Some(bk(12, 5, 3)));
        // …but a larger candidate does not replace it.
        fds.lower_to(DiskId(0), 5, bk(20, 5, 4));
        assert_eq!(fds.entry(DiskId(0), 5), Some(bk(12, 5, 3)));
        // And lowering with no existing entry inserts.
        fds.lower_to(DiskId(0), 9, bk(99, 9, 0));
        assert_eq!(fds.entry(DiskId(0), 9), Some(bk(99, 9, 0)));
    }

    #[test]
    fn frontier_lists_every_nonempty_disk_once() {
        let mut fds = ForecastTable::new(3);
        fds.set(DiskId(0), 0, Some(bk(4, 0, 0)));
        fds.set(DiskId(2), 1, Some(bk(2, 1, 0)));
        fds.set(DiskId(2), 2, Some(bk(9, 2, 0)));
        let f: Vec<_> = fds.frontier().collect();
        assert_eq!(f, vec![(DiskId(0), bk(4, 0, 0)), (DiskId(2), bk(2, 1, 0))]);
    }

    #[test]
    fn entries_for_different_runs_coexist_on_a_disk() {
        let mut fds = ForecastTable::new(1);
        for run in 0..10 {
            fds.set(DiskId(0), run, Some(bk(100 - run as u64, run, 0)));
        }
        assert_eq!(fds.len(), 10);
        assert_eq!(fds.min(DiskId(0)).unwrap().run, 9);
    }
}
