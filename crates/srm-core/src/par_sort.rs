//! Multi-threaded internal sorting for run formation.
//!
//! The paper's run-formation pass sorts one memory-load at a time; on a
//! modern multi-core host that internal sort is CPU-bound while the I/O
//! system idles.  This module provides a fork-join sort built on
//! `std::thread::scope`: split the load into per-thread chunks,
//! `sort_unstable` each in parallel, then merge the sorted chunks
//! pairwise with [`crate::merge_path`]'s diagonal partitioning, so the
//! merge phase is also spread across the workers instead of running on
//! one core (the single-threaded tournament tree it replaces was the
//! CPU bottleneck of the sort).
//!
//! Determinism: for a fixed `threads` the result is deterministic.  Like
//! `sort_unstable`, the relative order of *equal keys* is unspecified
//! (and may differ across `threads` values); all sorters in this
//! repository order by key only, so sorted output is unaffected.

use crate::merge_path::par_merge_sorted_chunks;
use pdisk::Record;

/// Sort `records` by key using up to `threads` worker threads.
///
/// `threads <= 1` (or small inputs) falls back to a plain
/// `sort_unstable_by_key`.
pub fn par_sort_by_key<R: Record>(records: &mut Vec<R>, threads: usize) {
    const MIN_PARALLEL: usize = 8 * 1024;
    if threads <= 1 || records.len() < MIN_PARALLEL {
        records.sort_unstable_by_key(|r| r.key());
        return;
    }
    let n = records.len();
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);

    // Phase 1: sort disjoint chunks in parallel.
    std::thread::scope(|scope| {
        for piece in records.chunks_mut(chunk) {
            scope.spawn(move || piece.sort_unstable_by_key(|r| r.key()));
        }
    });

    // Phase 2: pairwise Merge Path reduction of the sorted chunks, each
    // pair split across the same worker threads.  Output-identical to
    // the serial tournament-tree merge this replaces (lower chunk index
    // wins equal keys in both).
    par_merge_sorted_chunks(records, chunk, threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::U64Record;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, seed: u64) -> Vec<U64Record> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| U64Record(rng.random_range(0..1_000_000))).collect()
    }

    #[test]
    fn matches_std_sort_across_thread_counts() {
        for &n in &[0usize, 1, 100, 8 * 1024, 50_000, 50_001] {
            let base = random(n, 42);
            let mut expected = base.clone();
            expected.sort_unstable_by_key(|r| r.0);
            for threads in [1usize, 2, 3, 7, 16] {
                let mut got = base.clone();
                par_sort_by_key(&mut got, threads);
                assert_eq!(
                    got.iter().map(|r| r.0).collect::<Vec<_>>(),
                    expected.iter().map(|r| r.0).collect::<Vec<_>>(),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sorted_and_reverse_inputs() {
        let mut asc: Vec<U64Record> = (0..30_000).map(U64Record).collect();
        let expected = asc.clone();
        par_sort_by_key(&mut asc, 4);
        assert_eq!(asc, expected);
        let mut desc: Vec<U64Record> = (0..30_000).rev().map(U64Record).collect();
        par_sort_by_key(&mut desc, 4);
        assert_eq!(desc, expected);
    }

    #[test]
    fn heavy_duplicates() {
        let mut v: Vec<U64Record> = (0..40_000).map(|i| U64Record(i % 7)).collect();
        par_sort_by_key(&mut v, 5);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(v.len(), 40_000);
    }

    #[test]
    fn more_threads_than_records() {
        let mut v = random(10, 1);
        par_sort_by_key(&mut v, 64);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
