//! Background scrubber: verify every live block, heal what parity can.
//!
//! Latent corruption — bit rot that nothing has read since it happened —
//! is only caught when something walks the data.  `scrub_runs` is that
//! walk: it visits every block of every live run and asks the disk-array
//! stack to verify it via [`DiskArray::scrub_block`].  A plain array can
//! only report corruption; a parity-backed array
//! ([`pdisk::ParityDiskArray`]) reconstructs the damaged frame from its
//! stripe siblings and rewrites it in place, so scrubbing doubles as
//! self-healing.
//!
//! Scrubbing is read-mostly and safe to run between sorts: repairs go
//! through the backend's ordinary write path (below the parity update —
//! parity already reflects the intended content) and the scrub consumes
//! no fault-injection ordinals, so a seeded run behaves identically
//! whether or not a scrub happened in between.
//!
//! The CLI front-end is `srm scrub` (see `srm-cli`): it loads a sort's
//! checkpoint manifest and scrubs the runs the manifest keeps live.

use crate::error::Result;
use pdisk::{DiskArray, Record, ScrubOutcome, StripedRun};

/// Tally of one scrub pass over a set of runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks visited (the sum of `len_blocks` over the scrubbed runs).
    pub blocks_checked: u64,
    /// Blocks that read back and verified clean on the first try.
    pub clean: u64,
    /// Blocks that were corrupt and were rewritten from parity
    /// reconstruction; they verify clean now.
    pub repaired: u64,
    /// Blocks that are corrupt (or lost) beyond what the stack can
    /// reconstruct.
    pub unrepairable: u64,
    /// One line per unrepairable block: the address and the stack's
    /// reason.
    pub failures: Vec<String>,
}

impl ScrubReport {
    /// True when every block verified clean or was healed.
    pub fn is_healthy(&self) -> bool {
        self.unrepairable == 0
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.blocks_checked += other.blocks_checked;
        self.clean += other.clean;
        self.repaired += other.repaired;
        self.unrepairable += other.unrepairable;
        self.failures.extend(other.failures);
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scrubbed {} blocks: {} clean, {} repaired, {} unrepairable",
            self.blocks_checked, self.clean, self.repaired, self.unrepairable
        )
    }
}

/// Scrub every block of every run, healing where the stack can.
///
/// Walks each run in block order (cyclic striping spreads consecutive
/// blocks across the disks, so the walk visits all `D` disks evenly)
/// and asks the array to verify-and-repair each address.  Errors from
/// the stack itself (I/O failures unrelated to verification) abort the
/// scrub; verification failures never do — they are tallied so one bad
/// block cannot hide others behind it.
pub fn scrub_runs<R: Record, A: DiskArray<R>>(
    array: &mut A,
    runs: &[StripedRun],
) -> Result<ScrubReport> {
    let mut report = ScrubReport::default();
    for run in runs {
        for i in 0..run.len_blocks {
            let addr = run.addr_of(i);
            report.blocks_checked += 1;
            match array.scrub_block(addr)? {
                ScrubOutcome::Clean => report.clean += 1,
                ScrubOutcome::Repaired => report.repaired += 1,
                ScrubOutcome::Unrepairable(why) => {
                    report.unrepairable += 1;
                    report
                        .failures
                        .push(format!("disk {} offset {}: {why}", addr.disk.0, addr.offset));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::RunWriter;
    use pdisk::{Geometry, MemDiskArray, ParityDiskArray, U64Record};

    fn write_run(
        array: &mut ParityDiskArray<U64Record, MemDiskArray<U64Record>>,
        geom: Geometry,
        keys: std::ops::Range<u64>,
    ) -> StripedRun {
        let mut w = RunWriter::new(geom, pdisk::DiskId(0));
        for k in keys {
            w.push(array, U64Record(k)).unwrap();
        }
        w.finish(array).unwrap()
    }

    fn stack(d: usize, b: usize) -> (ParityDiskArray<U64Record, MemDiskArray<U64Record>>, Geometry) {
        let geom = Geometry::new(d, b, 8 * d * b).unwrap();
        let inner = MemDiskArray::new(geom);
        (ParityDiskArray::new(inner).unwrap(), geom)
    }

    #[test]
    fn a_clean_run_scrubs_clean() {
        let (mut a, geom) = stack(4, 4);
        let run = write_run(&mut a, geom, 0..64);
        let report = scrub_runs(&mut a, &[run]).unwrap();
        assert_eq!(report.blocks_checked, 16);
        assert_eq!(report.clean, 16);
        assert!(report.is_healthy());
        assert_eq!(report.repaired + report.unrepairable, 0);
    }

    #[test]
    fn scrub_heals_latent_corruption_and_counts_it() {
        let (mut a, geom) = stack(4, 4);
        let run = write_run(&mut a, geom, 0..64);
        // Corrupt two frames on different disks, below the parity layer.
        for i in [3u64, 10] {
            let la = run.addr_of(i);
            let pa = a.physical_addr(la);
            a.inner_mut().corrupt_block(pa).unwrap();
        }
        let report = scrub_runs(&mut a, std::slice::from_ref(&run)).unwrap();
        assert_eq!(report.repaired, 2, "{report}");
        assert_eq!(report.clean, 14);
        assert!(report.is_healthy());
        // Healed for real: a second scrub is fully clean.
        let again = scrub_runs(&mut a, &[run]).unwrap();
        assert_eq!(again.clean, 16, "{again}");
    }
}
