//! Block-granularity SRM merge simulator (§9.3's experiment).
//!
//! Replays the *exact* I/O schedule of [`crate::merge`] without
//! materializing records: the schedule's decisions depend on record keys
//! only through each block's smallest key (forecasting, flush ranks,
//! `OutRank`) and largest key (the instant a leading block's buffer
//! frees), so a run is fully described by those two keys per block.
//!
//! Average-case inputs at the paper's scale (`R = kD` runs of `L = 1000`
//! blocks of `B = 1000` records) are drawn exactly with the
//! order-statistics sampler of [`occupancy::order_stats`] in `O(#blocks)`.
//!
//! The integration test `tests/simulator_vs_engine.rs` checks bit-exact
//! read/flush counts against the record-level engine on shared inputs.

use crate::error::{Result, SrmError};
use crate::key::{unit_f64_to_key, BlockKey, RunId};
use crate::loser_tree::LoserTree;
use crate::scheduler::{ScheduleStats, Scheduler};
use occupancy::order_stats::BlockBounds;
use pdisk::DiskId;
use rand::Rng;
use std::collections::VecDeque;

/// One run as the simulator sees it: a start disk and both boundary keys
/// of every block.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Disk of block 0 (`d_r`).
    pub start_disk: u32,
    /// Smallest key per block, strictly increasing across blocks.
    pub min_keys: Vec<u64>,
    /// Largest key per block (`min_keys[i] <= max_keys[i] < min_keys[i+1]`).
    pub max_keys: Vec<u64>,
}

impl SimRun {
    fn blocks(&self) -> u64 {
        self.min_keys.len() as u64
    }

    fn disk_of(&self, idx: u64, d: usize) -> DiskId {
        DiskId::from_mod(u64::from(self.start_disk) + idx, d)
    }
}

/// A complete simulator input: `D` disks plus the runs to merge.
#[derive(Debug, Clone)]
pub struct SimInput {
    /// Number of disks.
    pub d: usize,
    /// The runs.
    pub runs: Vec<SimRun>,
}

/// How the simulator assigns start disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPlacement {
    /// Uniformly random per run (SRM proper).
    Random,
    /// The paper's §8 stagger: run `r` of `R` starts on disk `⌊rD/R⌋`.
    Staggered,
}

impl SimInput {
    /// Draw the paper's average-case input: `r_runs` runs, each of
    /// `blocks_per_run` blocks of `b` records, with i.i.d. uniform keys.
    pub fn average_case<RN: Rng + ?Sized>(
        r_runs: usize,
        blocks_per_run: u64,
        b: u64,
        d: usize,
        placement: SimPlacement,
        rng: &mut RN,
    ) -> Self {
        assert!(r_runs > 0 && blocks_per_run > 0 && b > 0 && d > 0);
        let runs = (0..r_runs)
            .map(|r| {
                let start_disk = match placement {
                    SimPlacement::Random => rng.random_range(0..d) as u32,
                    SimPlacement::Staggered => (r * d / r_runs) as u32,
                };
                let bounds = BlockBounds::sample(blocks_per_run * b, b, rng);
                SimRun {
                    start_disk,
                    min_keys: bounds.minima.iter().map(|&f| unit_f64_to_key(f)).collect(),
                    max_keys: bounds.maxima.iter().map(|&f| unit_f64_to_key(f)).collect(),
                }
            })
            .collect();
        SimInput { d, runs }
    }

    /// Total blocks across all runs.
    pub fn total_blocks(&self) -> u64 {
        self.runs.iter().map(SimRun::blocks).sum()
    }

    /// Average-case input with **tunable overlap**: run `j` draws its
    /// keys uniformly from an interval of width `W` starting at
    /// `j·(1−θ)·W`, so `θ = 1` recovers the fully interleaved model of
    /// [`SimInput::average_case`] and `θ = 0` gives pairwise-disjoint
    /// runs (the merge degenerates to concatenation).  Models sorted-ish
    /// or time-clustered real-world inputs.
    pub fn overlapping_case<RN: Rng + ?Sized>(
        r_runs: usize,
        blocks_per_run: u64,
        b: u64,
        d: usize,
        theta: f64,
        placement: SimPlacement,
        rng: &mut RN,
    ) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta in [0,1]");
        assert!(r_runs > 0 && blocks_per_run > 0 && b > 0 && d > 0);
        let width = 1.0 / ((r_runs as f64 - 1.0) * (1.0 - theta) + 1.0);
        let runs = (0..r_runs)
            .map(|r| {
                let start_disk = match placement {
                    SimPlacement::Random => rng.random_range(0..d) as u32,
                    SimPlacement::Staggered => (r * d / r_runs) as u32,
                };
                let lo = r as f64 * (1.0 - theta) * width;
                let bounds = BlockBounds::sample(blocks_per_run * b, b, rng);
                let map = |f: f64| unit_f64_to_key((lo + f * width).clamp(1e-15, 1.0 - 1e-15));
                SimRun {
                    start_disk,
                    min_keys: bounds.minima.iter().map(|&f| map(f)).collect(),
                    max_keys: bounds.maxima.iter().map(|&f| map(f)).collect(),
                }
            })
            .collect();
        SimInput { d, runs }
    }

    /// The §3 worst case: runs that consume in **lockstep** (all runs'
    /// block `i` participates before any run's block `i+1`), so that with
    /// any placement that puts every run on the *same* start disk, the `R`
    /// next-needed blocks always share one disk and reads serialize.
    ///
    /// Keys are laid out as `block i of run j` having min `(i·R + j)·2`
    /// and max `(i·R + j)·2 + 1` (scaled into the key space), which makes
    /// the participation order exactly round-robin across runs.
    ///
    /// `start_disks` supplies the placement under attack (e.g. all zeros
    /// for the fully deterministic layout, or random draws for SRM).
    pub fn lockstep_adversarial(blocks_per_run: u64, d: usize, start_disks: &[u32]) -> Self {
        assert!(!start_disks.is_empty() && blocks_per_run > 0 && d > 0);
        let r = start_disks.len() as u64;
        let runs = start_disks
            .iter()
            .enumerate()
            .map(|(j, &start_disk)| {
                assert!((start_disk as usize) < d);
                let min_keys = (0..blocks_per_run)
                    .map(|i| (i * r + j as u64) * 2 + 1)
                    .collect();
                let max_keys = (0..blocks_per_run)
                    .map(|i| (i * r + j as u64) * 2 + 2)
                    .collect();
                SimRun {
                    start_disk,
                    min_keys,
                    max_keys,
                }
            })
            .collect();
        SimInput { d, runs }
    }

    /// Upper bound on total reads from the paper's phase analysis
    /// (Lemmas 6 and 8): `Reads ≤ I_0 + Σ_i L'_i`, where `I_0` is the
    /// per-disk maximum of initial blocks and `L'_i` is, for the `i`-th
    /// group of `R` blocks in participation order (excluding initial
    /// blocks), the maximum number of those blocks sharing one disk.
    ///
    /// Computable from the input alone — no simulation — so tests can
    /// check the *implementation's* measured reads against the *theory's*
    /// bound.
    pub fn phase_read_upper_bound(&self) -> u64 {
        self.initial_occupancy() + self.phase_occupancies().iter().sum::<u64>()
    }

    /// `I_0`: the per-disk maximum over the runs' initial blocks — a
    /// classical occupancy maximum with `R` balls in `D` bins.
    pub fn initial_occupancy(&self) -> u64 {
        let mut init = vec![0u64; self.d];
        for run in &self.runs {
            init[run.disk_of(0, self.d).index()] += 1;
        }
        init.into_iter().max().unwrap_or(0)
    }

    /// The per-phase occupancy maxima `L'_i` of Definition 11: split the
    /// non-initial blocks into groups of `R` by participation order
    /// (ascending block minimum, §6), and for each group take the maximum
    /// number of blocks sharing one disk.
    ///
    /// These are exactly the dependent-occupancy maxima the paper's §7
    /// analyzes: each phase's blocks form chains (consecutive blocks of
    /// one run) dropped cyclically onto the disks, so `E[L'_i]` is the
    /// quantity Theorem 2 bounds and Table 1 approximates by `C(kD,D)`.
    pub fn phase_occupancies(&self) -> Vec<u64> {
        let d = self.d;
        let r = self.runs.len();
        let mut blocks: Vec<(u64, DiskId)> = Vec::new();
        for run in &self.runs {
            for idx in 1..run.blocks() {
                blocks.push((run.min_keys[idx as usize], run.disk_of(idx, d)));
            }
        }
        blocks.sort_unstable_by_key(|&(key, disk)| (key, disk));
        blocks
            .chunks(r)
            .map(|phase| {
                let mut per_disk = vec![0u64; d];
                for &(_, disk) in phase {
                    per_disk[disk.index()] += 1;
                }
                per_disk.into_iter().max().unwrap_or(0)
            })
            .collect()
    }
}

/// Outcome of one simulated merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Scheduling counters — identical semantics to the engine's.
    pub schedule: ScheduleStats,
    /// Total blocks across all input runs.
    pub total_blocks: u64,
    /// Read-overhead factor `v`: total reads over the per-pass minimum
    /// `total_blocks / D`.
    pub overhead_v: f64,
}

struct SimRunState {
    cur_idx: u64,
    awaiting: bool,
    exhausted: bool,
}

/// One schedule event, emitted by [`MergeSim::run_traced`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A step-1 read fetching the initial blocks of the listed runs.
    InitRead {
        /// Runs whose block 0 arrived in this operation.
        runs: Vec<RunId>,
    },
    /// A main-loop `ParRead_t`, possibly preceded by a `Flush_t`.
    ParRead {
        /// `(disk, run, block idx)` fetched, one entry per disk.
        targets: Vec<(u32, RunId, u64)>,
        /// `(run, block idx)` virtually flushed by rule 2c.
        flushed: Vec<(RunId, u64)>,
    },
    /// Run `run`'s leading block `idx` was fully consumed.
    Depleted {
        /// The run whose block depleted.
        run: RunId,
        /// Index of the depleted block.
        idx: u64,
    },
}

/// The simulator itself.  Stateless; see [`MergeSim::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeSim;

impl MergeSim {
    /// Simulate one SRM merge of `input` and return the I/O counts.
    pub fn run(input: &SimInput) -> Result<SimStats> {
        Self::run_inner(input, None)
    }

    /// Like [`MergeSim::run`], also returning the full schedule trace
    /// (every read with its targets and flush victims, every depletion) —
    /// the basis of the `schedule_trace` example and of fine-grained
    /// schedule tests.
    pub fn run_traced(input: &SimInput) -> Result<(SimStats, Vec<TraceEvent>)> {
        let mut trace = Vec::new();
        let stats = Self::run_inner(input, Some(&mut trace))?;
        Ok((stats, trace))
    }

    fn run_inner(input: &SimInput, mut trace: Option<&mut Vec<TraceEvent>>) -> Result<SimStats> {
        let d = input.d;
        let r = input.runs.len();
        if r == 0 {
            return Err(SrmError::Config("merge of zero runs".into()));
        }
        for (j, run) in input.runs.iter().enumerate() {
            if run.min_keys.is_empty() || run.min_keys.len() != run.max_keys.len() {
                return Err(SrmError::Config(format!("run {j} malformed")));
            }
            if run.start_disk as usize >= d {
                return Err(SrmError::Config(format!("run {j} start disk out of range")));
            }
        }
        let mut sched = Scheduler::new(r, d);
        let mut states: Vec<SimRunState> = (0..r)
            .map(|_| SimRunState {
                cur_idx: 0,
                awaiting: false,
                exhausted: false,
            })
            .collect();
        // Event tree: per run, the key of its next schedule-relevant event —
        // depletion of the leading block (max key) or, when awaiting I/O,
        // the blocked participation key (min key).
        let mut tree = LoserTree::new(vec![u64::MAX; r]);

        // §5.5 step 1: fetch block 0 of every run, one block per disk per
        // operation; seed the forecasting table with the keys of blocks
        // 1..=D (the initial block's implanted table).
        let mut per_disk: Vec<VecDeque<RunId>> = vec![VecDeque::new(); d];
        for (j, run) in input.runs.iter().enumerate() {
            per_disk[run.disk_of(0, d).index()].push_back(j as RunId);
        }
        loop {
            let mut batch = Vec::with_capacity(d);
            for q in per_disk.iter_mut() {
                if let Some(j) = q.pop_front() {
                    batch.push(j);
                }
            }
            if batch.is_empty() {
                break;
            }
            sched.charge_initial_read(batch.len());
            if let Some(sink) = trace.as_deref_mut() {
                sink.push(TraceEvent::InitRead { runs: batch.clone() });
            }
            for j in batch {
                let run = &input.runs[j as usize];
                for idx in 1..=(d as u64).min(run.blocks().saturating_sub(1)) {
                    let key = BlockKey::new(run.min_keys[idx as usize], j, idx);
                    sched.fds_mut().set(run.disk_of(idx, d), j, Some(key));
                }
                tree.update(j as usize, run.max_keys[0]);
            }
        }

        // Main loop — mirror of merge.rs::run_to_completion.
        loop {
            sched.drain();
            if sched.can_attempt_read() {
                Self::execute_read(input, &mut sched, &mut states, &mut tree, &mut trace)?;
                continue;
            }
            if tree.all_exhausted() {
                break;
            }
            let (j, key) = tree.peek();
            if states[j].awaiting {
                return Err(SrmError::Internal(format!(
                    "simulated merge stuck: run {j} awaits block {} (key {key})",
                    states[j].cur_idx
                )));
            }
            // Depletion of run j's leading block.
            if let Some(sink) = trace.as_deref_mut() {
                sink.push(TraceEvent::Depleted {
                    run: j as RunId,
                    idx: states[j].cur_idx,
                });
            }
            Self::advance_run(input, &mut sched, &mut states, &mut tree, j)?;
        }
        let schedule = sched.stats();
        let total_blocks = input.total_blocks();
        Ok(SimStats {
            schedule,
            total_blocks,
            overhead_v: schedule.total_reads() as f64 / (total_blocks as f64 / d as f64),
        })
    }

    fn execute_read(
        input: &SimInput,
        sched: &mut Scheduler,
        states: &mut [SimRunState],
        tree: &mut LoserTree,
        trace: &mut Option<&mut Vec<TraceEvent>>,
    ) -> Result<()> {
        let d = input.d;
        let plan = sched.plan_read(|k: &BlockKey| input.runs[k.run as usize].disk_of(k.idx, d));
        if let Some(sink) = trace.as_deref_mut() {
            sink.push(TraceEvent::ParRead {
                targets: plan
                    .targets
                    .iter()
                    .map(|(disk, k)| (disk.0, k.run, k.idx))
                    .collect(),
                flushed: plan.flushed.iter().map(|k| (k.run, k.idx)).collect(),
            });
        }
        for (disk, key) in plan.targets {
            let run = &input.runs[key.run as usize];
            let next_idx = key.idx + d as u64;
            let implant = (next_idx < run.blocks())
                .then(|| BlockKey::new(run.min_keys[next_idx as usize], key.run, next_idx));
            let st = &mut states[key.run as usize];
            let to_leading = st.awaiting && st.cur_idx == key.idx;
            sched.arrive(key, disk, implant, to_leading);
            if to_leading {
                st.awaiting = false;
                tree.update(key.run as usize, run.max_keys[key.idx as usize]);
            }
        }
        Ok(())
    }

    fn advance_run(
        input: &SimInput,
        sched: &mut Scheduler,
        states: &mut [SimRunState],
        tree: &mut LoserTree,
        j: usize,
    ) -> Result<()> {
        let run = &input.runs[j];
        let st = &mut states[j];
        st.cur_idx += 1;
        if st.cur_idx >= run.blocks() {
            st.exhausted = true;
            tree.update(j, u64::MAX);
            return Ok(());
        }
        let idx = st.cur_idx;
        let key = BlockKey::new(run.min_keys[idx as usize], j as RunId, idx);
        if sched.promote_to_leading(key) {
            tree.update(j, run.max_keys[idx as usize]);
        } else {
            // Still on disk: the merge is gated by this block's min key.
            let disk = run.disk_of(idx, input.d);
            let entry = sched.fds().entry(disk, j as RunId).ok_or_else(|| {
                SrmError::Internal(format!("run {j} awaits block {idx} with no FDS entry"))
            })?;
            if entry.idx != idx {
                return Err(SrmError::Internal(format!(
                    "FDS entry for run {j} is block {}, expected {idx}",
                    entry.idx
                )));
            }
            st.awaiting = true;
            tree.update(j, entry.key);
        }
        Ok(())
    }
}

/// Convenience: average the overhead factor `v(k, D)` over `trials`
/// simulated merges of `kD` runs of `blocks_per_run` blocks (Table 3's
/// experiment: the paper uses `blocks_per_run = 1000`).
pub fn estimate_overhead_v<RN: Rng + ?Sized>(
    k: usize,
    d: usize,
    blocks_per_run: u64,
    b: u64,
    placement: SimPlacement,
    trials: u64,
    rng: &mut RN,
) -> Result<occupancy::Estimate> {
    let mut acc = occupancy::RunningStats::new();
    for _ in 0..trials {
        let input = SimInput::average_case(k * d, blocks_per_run, b, d, placement, rng);
        acc.push(MergeSim::run(&input)?.overhead_v);
    }
    Ok(acc.estimate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn avg_case(r: usize, blocks: u64, d: usize, seed: u64) -> SimInput {
        let mut rng = SmallRng::seed_from_u64(seed);
        SimInput::average_case(r, blocks, 32, d, SimPlacement::Random, &mut rng)
    }

    #[test]
    fn completes_and_reads_every_block_at_least_once() {
        let input = avg_case(8, 50, 4, 1);
        let stats = MergeSim::run(&input).unwrap();
        let total = input.total_blocks();
        assert!(stats.schedule.blocks_read >= total);
        assert_eq!(
            stats.schedule.blocks_read - stats.schedule.blocks_flushed,
            total,
            "each flush forces exactly one re-read"
        );
    }

    #[test]
    fn overhead_at_least_one() {
        for seed in 0..5 {
            let input = avg_case(10, 40, 5, seed);
            let stats = MergeSim::run(&input).unwrap();
            assert!(
                stats.overhead_v >= 1.0 - 1e-9,
                "v = {} below the single-pass minimum",
                stats.overhead_v
            );
        }
    }

    #[test]
    fn single_run_single_disk() {
        let input = avg_case(1, 20, 1, 2);
        let stats = MergeSim::run(&input).unwrap();
        // One disk: every block is one read; v = 1 exactly.
        assert_eq!(stats.schedule.total_reads(), 20);
        assert!((stats.overhead_v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_seeds_reproduce_counts() {
        let a = MergeSim::run(&avg_case(12, 30, 3, 7)).unwrap();
        let b = MergeSim::run(&avg_case(12, 30, 3, 7)).unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    /// Table 3's headline: with k reasonably large the average-case
    /// overhead is essentially 1.
    #[test]
    fn large_k_overhead_near_one() {
        let mut rng = SmallRng::seed_from_u64(3);
        let est = estimate_overhead_v(10, 5, 100, 64, SimPlacement::Random, 3, &mut rng).unwrap();
        assert!(
            est.mean < 1.1,
            "v(10, 5) = {} should be close to 1 on average-case inputs",
            est.mean
        );
    }

    /// Small k against many disks shows real overhead (Table 3's corner:
    /// v(5, 50) ≈ 1.2).
    #[test]
    fn small_k_many_disks_overhead_visible() {
        let mut rng = SmallRng::seed_from_u64(4);
        let est = estimate_overhead_v(2, 16, 60, 32, SimPlacement::Random, 3, &mut rng).unwrap();
        assert!(
            est.mean > 1.02,
            "v(2, 16) = {} should exceed 1 noticeably",
            est.mean
        );
    }

    #[test]
    fn staggered_placement_runs_clean() {
        let mut rng = SmallRng::seed_from_u64(5);
        let input = SimInput::average_case(12, 40, 32, 4, SimPlacement::Staggered, &mut rng);
        // Stagger: run r on disk floor(r*4/12): 3 runs per disk.
        let counts = input.runs.iter().fold(vec![0; 4], |mut acc, r| {
            acc[r.start_disk as usize] += 1;
            acc
        });
        assert_eq!(counts, vec![3, 3, 3, 3]);
        let stats = MergeSim::run(&input).unwrap();
        assert!(stats.overhead_v >= 1.0 - 1e-9);
    }

    /// The core of the paper's analysis, checked against the living
    /// implementation: measured reads never exceed the phase/occupancy
    /// bound `I_0 + Σ L'_i` (Lemmas 6 + 8).
    #[test]
    fn reads_bounded_by_phase_occupancy() {
        for seed in 0..8 {
            let input = avg_case(10, 60, 5, seed);
            let stats = MergeSim::run(&input).unwrap();
            let bound = input.phase_read_upper_bound();
            assert!(
                stats.schedule.total_reads() <= bound,
                "seed {seed}: reads {} exceed Lemma 6 bound {bound}",
                stats.schedule.total_reads()
            );
        }
        // Also in the flush-heavy regime (k = 1).
        for seed in 0..4 {
            let input = avg_case(8, 150, 8, 100 + seed);
            let stats = MergeSim::run(&input).unwrap();
            let bound = input.phase_read_upper_bound();
            assert!(
                stats.schedule.total_reads() <= bound,
                "k=1 seed {seed}: reads {} exceed bound {bound}",
                stats.schedule.total_reads()
            );
        }
    }

    /// §3's motivating disaster: deterministic same-disk placement with a
    /// lockstep input concentrates every phase's `R` blocks on one disk.
    /// SRM's prefetching softens the paper's "factor 1/D of optimal"
    /// (which is about naive merging) to roughly `D/3` here — still
    /// growing linearly in `D` — while random placement on the *same
    /// adversarial input* stays near 1.
    #[test]
    fn lockstep_adversary_punishes_deterministic_placement() {
        let d = 8;
        let r = 8;
        let blocks = 100;
        // Deterministic: every run starts on disk 0.
        let bad = SimInput::lockstep_adversarial(blocks, d, &vec![0u32; r]);
        let bad_stats = MergeSim::run(&bad).unwrap();
        assert!(
            bad_stats.overhead_v > 2.0,
            "same-disk lockstep should hurt badly: v = {} (D = {d})",
            bad_stats.overhead_v
        );
        // And it keeps getting worse with D (measured ≈ 2.5, 5.2, 10.9 at
        // D = 8, 16, 32).
        let worse = MergeSim::run(&SimInput::lockstep_adversarial(blocks, 16, &[0u32; 16]))
            .unwrap();
        assert!(worse.overhead_v > 1.5 * bad_stats.overhead_v);
        // Randomized: same keys, random start disks.  At R = D (k = 1)
        // random placement pays genuine occupancy overhead (~1.5 at
        // D = 8), so compare its *average* against the adversary's value.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut sum = 0.0;
        let trials = 8;
        for _ in 0..trials {
            let starts: Vec<u32> = (0..r).map(|_| rng.random_range(0..d as u32)).collect();
            let good = SimInput::lockstep_adversarial(blocks, d, &starts);
            sum += MergeSim::run(&good).unwrap().overhead_v;
        }
        let mean = sum / trials as f64;
        assert!(
            mean < 0.75 * bad_stats.overhead_v,
            "randomization should beat the adversary on average: {mean} vs {}",
            bad_stats.overhead_v
        );
    }

    /// The paper's staggered variant also survives the lockstep input —
    /// the stagger spreads the R leading blocks across disks.
    #[test]
    fn lockstep_adversary_vs_stagger() {
        let d = 8;
        let r = 8;
        let starts: Vec<u32> = (0..r).map(|j| (j * d / r) as u32).collect();
        let input = SimInput::lockstep_adversarial(100, d, &starts);
        let stats = MergeSim::run(&input).unwrap();
        assert!(
            stats.overhead_v < 1.5,
            "stagger defeats lockstep: v = {}",
            stats.overhead_v
        );
    }

    /// Overlap sweep: θ = 1 matches the standard average case; θ = 0
    /// (disjoint runs) is the easy case with v ≈ 1; the small-k/large-D
    /// overhead shrinks monotonically-ish as overlap decreases.
    #[test]
    fn overlap_reduces_overhead() {
        let mut rng = SmallRng::seed_from_u64(31);
        let v_at = |theta: f64, rng: &mut SmallRng| -> f64 {
            let mut sum = 0.0;
            for _ in 0..3 {
                let input =
                    SimInput::overlapping_case(32, 60, 32, 16, theta, SimPlacement::Random, rng);
                sum += MergeSim::run(&input).unwrap().overhead_v;
            }
            sum / 3.0
        };
        let full = v_at(1.0, &mut rng);
        let none = v_at(0.0, &mut rng);
        assert!(full >= 1.0 && none >= 1.0);
        assert!(
            none <= full + 0.02,
            "disjoint runs should be no harder: v(0) = {none}, v(1) = {full}"
        );
        assert!(none < 1.1, "disjoint runs are near-free: v = {none}");
    }

    #[test]
    fn overlap_zero_is_concatenation() {
        let mut rng = SmallRng::seed_from_u64(32);
        let input = SimInput::overlapping_case(6, 40, 16, 3, 0.0, SimPlacement::Random, &mut rng);
        // Runs occupy disjoint intervals: run j's last key < run j+1's first.
        for w in input.runs.windows(2) {
            assert!(w[0].max_keys.last().unwrap() < w[1].min_keys.first().unwrap());
        }
        let stats = MergeSim::run(&input).unwrap();
        assert!(stats.overhead_v < 1.2, "v = {}", stats.overhead_v);
    }

    #[test]
    fn trace_is_consistent_with_stats() {
        let input = avg_case(6, 30, 3, 11);
        let (stats, trace) = MergeSim::run_traced(&input).unwrap();
        // Untraced run must be identical.
        assert_eq!(MergeSim::run(&input).unwrap(), stats);
        let init_reads = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::InitRead { .. }))
            .count() as u64;
        let par_reads = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::ParRead { .. }))
            .count() as u64;
        assert_eq!(init_reads, stats.schedule.init_reads);
        assert_eq!(par_reads, stats.schedule.par_reads);
        // Blocks fetched per trace = blocks_read.
        let fetched: u64 = trace
            .iter()
            .map(|e| match e {
                TraceEvent::InitRead { runs } => runs.len() as u64,
                TraceEvent::ParRead { targets, .. } => targets.len() as u64,
                TraceEvent::Depleted { .. } => 0,
            })
            .sum();
        assert_eq!(fetched, stats.schedule.blocks_read);
        // Every block of every run depletes exactly once.
        let depletions = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Depleted { .. }))
            .count() as u64;
        assert_eq!(depletions, input.total_blocks());
        // No ParRead targets two blocks on one disk.
        for e in &trace {
            if let TraceEvent::ParRead { targets, .. } = e {
                let mut disks: Vec<u32> = targets.iter().map(|t| t.0).collect();
                disks.sort_unstable();
                disks.dedup();
                assert_eq!(disks.len(), targets.len());
            }
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(MergeSim::run(&SimInput { d: 2, runs: vec![] }).is_err());
        let bad = SimInput {
            d: 2,
            runs: vec![SimRun {
                start_disk: 5,
                min_keys: vec![1],
                max_keys: vec![2],
            }],
        };
        assert!(MergeSim::run(&bad).is_err());
    }
}
