//! Error type for the SRM crate.

use pdisk::PdiskError;

/// Errors surfaced by SRM's merging and sorting.
#[derive(Debug)]
#[non_exhaustive]
pub enum SrmError {
    /// Underlying disk-model failure.
    Disk(PdiskError),
    /// A configuration cannot support the requested operation (e.g. more
    /// runs than the merge order, or memory too small for any merge).
    Config(String),
    /// A checkpoint manifest could not be read, written, or trusted
    /// (torn file, checksum mismatch, or written by an incompatible
    /// sorter/geometry).  See [`crate::checkpoint`].
    Checkpoint(String),
    /// An internal invariant failed — by Lemma 1 the schedule can never
    /// deadlock, so seeing this is a bug, never an input problem.
    Internal(String),
    /// The sort stopped at a pass boundary because its
    /// [`InterruptFlag`](pdisk::InterruptFlag) was triggered.  If a
    /// manifest path was given, the boundary's checkpoint was journaled
    /// *before* this was returned, so a rerun resumes byte-identically.
    Interrupted,
}

impl std::fmt::Display for SrmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrmError::Disk(e) => write!(f, "disk error: {e}"),
            SrmError::Config(msg) => write!(f, "configuration error: {msg}"),
            SrmError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SrmError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            SrmError::Interrupted => {
                write!(f, "sort interrupted at a pass boundary (checkpoint journaled)")
            }
        }
    }
}

impl std::error::Error for SrmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SrmError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdiskError> for SrmError {
    fn from(e: PdiskError) -> Self {
        SrmError::Disk(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SrmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SrmError::Config("too many runs".into())
            .to_string()
            .contains("too many runs"));
        assert!(SrmError::Internal("x".into()).to_string().contains("invariant"));
        let e: SrmError = PdiskError::NoSuchDisk(pdisk::DiskId(9)).into();
        assert!(e.to_string().contains("disk"));
    }
}
