//! Initial run formation (§2.1).
//!
//! Two strategies from the paper:
//!
//! * **Memory-load sorting** — read a memory-load of records, sort it
//!   internally, write it out as one run.  The paper sorts *half*
//!   memory-loads to overlap computation with I/O (giving `2N/M` runs of
//!   `M/2`); the fraction is configurable.
//! * **Replacement selection** (Knuth §5.4.1) — a selection tree streams
//!   records out while new ones stream in; records too small for the
//!   current run are tagged for the next, producing runs of expected
//!   length `2M` on random input (and exactly one run on sorted input).
//!
//! Each produced run is written in forecasting format via
//! [`crate::output::RunWriter`], cyclically striped from a start disk
//! chosen by the caller-provided placement callback — this is where SRM's
//! randomization (or the deterministic stagger of §8) enters.

use crate::error::{Result, SrmError};
use crate::output::RunWriter;
use pdisk::{BlockAddr, DiskArray, DiskId, Geometry, ReadTicket, Record, StripedRun};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Strategy for the run-formation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunFormation {
    /// Sort `fraction` of memory at a time (`0 < fraction <= 1`); the paper
    /// uses 1/2 to double-buffer.
    MemoryLoad {
        /// Fraction of `M` records sorted per run.
        fraction: f64,
    },
    /// Memory-load sorting with the internal sort fork-joined across
    /// `threads` host threads ([`crate::par_sort`]); identical run layout
    /// and I/O to [`RunFormation::MemoryLoad`], faster wall clock on
    /// multi-core hosts.
    ParallelMemoryLoad {
        /// Fraction of `M` records sorted per run.
        fraction: f64,
        /// Worker threads for the internal sort.
        threads: usize,
    },
    /// Replacement selection with a heap of `M` records.
    ReplacementSelection,
}

impl Default for RunFormation {
    fn default() -> Self {
        RunFormation::MemoryLoad { fraction: 0.5 }
    }
}

/// Form sorted runs from an unsorted input run (records in arbitrary
/// order, laid out striped).  `place` chooses each new run's start disk.
///
/// The input is consumed with full read parallelism: blocks are fetched in
/// stripes of `D`, exactly one block per disk per operation.
pub fn form_runs<R: Record, A: DiskArray<R>>(
    array: &mut A,
    input: &StripedRun,
    strategy: RunFormation,
    place: impl FnMut() -> DiskId,
) -> Result<Vec<StripedRun>> {
    form_runs_inner(array, input, strategy, false, place)
}

/// [`form_runs`] with the split-phase overlap §2.1 motivates: while one
/// memory load is sorted and written, the *next* load's stripe reads are
/// already in flight (up to one load of records ahead — the other half
/// of memory when `fraction = 1/2`), and run stripes are written behind
/// via [`RunWriter::new_pipelined`].  The operation sequence is planned
/// from the same arithmetic as the serial reader, so op sizes, counts,
/// and [`pdisk::IoStats`] are identical; only waiting moves.
/// Replacement selection keeps serial reads (each fetch decision depends
/// on the records just consumed) but still writes behind.
pub fn form_runs_pipelined<R: Record, A: DiskArray<R>>(
    array: &mut A,
    input: &StripedRun,
    strategy: RunFormation,
    place: impl FnMut() -> DiskId,
) -> Result<Vec<StripedRun>> {
    form_runs_inner(array, input, strategy, true, place)
}

fn form_runs_inner<R: Record, A: DiskArray<R>>(
    array: &mut A,
    input: &StripedRun,
    strategy: RunFormation,
    pipeline: bool,
    mut place: impl FnMut() -> DiskId,
) -> Result<Vec<StripedRun>> {
    let geom = array.geometry();
    match strategy {
        RunFormation::MemoryLoad { .. } | RunFormation::ParallelMemoryLoad { .. } => {
            let (fraction, threads) = match strategy {
                RunFormation::MemoryLoad { fraction } => (fraction, 1),
                RunFormation::ParallelMemoryLoad { fraction, threads } => {
                    (fraction, threads.max(1))
                }
                RunFormation::ReplacementSelection => unreachable!(), // lint:allow(panic) outer match arm pins the variant
            };
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(SrmError::Config(format!(
                    "memory-load fraction {fraction} outside (0, 1]"
                )));
            }
            let capacity = ((geom.m as f64 * fraction) as usize).max(geom.b);
            let mut serial_reader;
            let mut prefetch_reader;
            let mut out = Vec::new();
            if pipeline {
                prefetch_reader = PrefetchStripeReader::new(geom, input, capacity);
                serial_reader = None;
            } else {
                serial_reader = Some(StripeReader::new(input));
                prefetch_reader = PrefetchStripeReader::empty();
            }
            loop {
                let mut load: Vec<R> = Vec::with_capacity(capacity);
                while load.len() < capacity {
                    let stripe = match &mut serial_reader {
                        Some(r) => r.next_stripe(array, capacity - load.len())?,
                        None => prefetch_reader.next_stripe(array)?,
                    };
                    match stripe {
                        Some(records) => load.extend(records),
                        None => break,
                    }
                }
                if load.is_empty() {
                    break;
                }
                crate::par_sort::par_sort_by_key(&mut load, threads);
                let mut w = if pipeline {
                    RunWriter::new_pipelined(geom, place())
                } else {
                    RunWriter::new(geom, place())
                };
                for rec in load {
                    w.push(array, rec)?;
                }
                out.push(w.finish(array)?);
            }
            Ok(out)
        }
        RunFormation::ReplacementSelection => {
            replacement_selection(array, input, pipeline, place)
        }
    }
}

/// Reads an unsorted striped run one stripe at a time.
struct StripeReader<'a> {
    input: &'a StripedRun,
    next_block: u64,
}

impl<'a> StripeReader<'a> {
    fn new(input: &'a StripedRun) -> Self {
        StripeReader { input, next_block: 0 }
    }

    /// Fetch up to one stripe (`D` blocks), but never more blocks than
    /// needed to cover `want` records.  Returns `None` when exhausted.
    fn next_stripe<R: Record, A: DiskArray<R>>(
        &mut self,
        array: &mut A,
        want: usize,
    ) -> Result<Option<Vec<R>>> {
        if self.next_block >= self.input.len_blocks {
            return Ok(None);
        }
        let geom = array.geometry();
        let blocks_wanted = want.div_ceil(geom.b).max(1).min(geom.d);
        let hi = (self.next_block + blocks_wanted as u64).min(self.input.len_blocks);
        let addrs: Vec<_> = (self.next_block..hi).map(|i| self.input.addr_of(i)).collect();
        self.next_block = hi;
        let mut records = Vec::with_capacity(addrs.len() * geom.b);
        for block in array.read(&addrs)? {
            records.extend(block.records);
        }
        Ok(Some(records))
    }
}

/// One planned parallel input read: the exact addresses (and record
/// yield) the serial [`StripeReader`] would fetch in one operation.
struct StripePlan {
    addrs: Vec<BlockAddr>,
    records: usize,
}

/// Replay the serial reader's op arithmetic over the whole input:
/// within each memory load, `want = capacity − filled` decides the op
/// width exactly as [`StripeReader::next_stripe`] does, so the planned
/// sequence is the serial sequence, op for op and block for block.
fn plan_stripe_ops(geom: Geometry, input: &StripedRun, capacity: usize) -> VecDeque<StripePlan> {
    let b = geom.b;
    let block_records = |i: u64| -> usize {
        if i + 1 == input.len_blocks {
            (input.records - (input.len_blocks - 1) * b as u64) as usize
        } else {
            b
        }
    };
    let mut ops = VecDeque::new();
    let mut next_block = 0u64;
    while next_block < input.len_blocks {
        let mut filled = 0usize;
        while filled < capacity && next_block < input.len_blocks {
            let want = capacity - filled;
            let blocks_wanted = want.div_ceil(b).max(1).min(geom.d);
            let hi = (next_block + blocks_wanted as u64).min(input.len_blocks);
            let addrs: Vec<BlockAddr> = (next_block..hi).map(|i| input.addr_of(i)).collect();
            let records = (next_block..hi).map(block_records).sum();
            filled += records;
            next_block = hi;
            ops.push_back(StripePlan { addrs, records });
        }
    }
    ops
}

/// Split-phase input reader: issues the planned serial op sequence via
/// [`DiskArray::submit_read`], keeping up to one memory load of records
/// in flight — the paper's §2.1 double buffer: while load `k` is sorted
/// and written, load `k + 1` streams in.
struct PrefetchStripeReader<R: Record> {
    ops: VecDeque<StripePlan>,
    in_flight: VecDeque<(ReadTicket<R>, usize)>,
    in_flight_records: usize,
    /// Records allowed in flight (`capacity` = one memory load).
    budget: usize,
}

impl<R: Record> PrefetchStripeReader<R> {
    fn new(geom: Geometry, input: &StripedRun, capacity: usize) -> Self {
        PrefetchStripeReader {
            ops: plan_stripe_ops(geom, input, capacity),
            in_flight: VecDeque::new(),
            in_flight_records: 0,
            budget: capacity.max(1),
        }
    }

    /// A reader that yields nothing (the serial-path placeholder).
    fn empty() -> Self {
        PrefetchStripeReader {
            ops: VecDeque::new(),
            in_flight: VecDeque::new(),
            in_flight_records: 0,
            budget: 1,
        }
    }

    /// Submit planned ops until the in-flight budget is spent (always at
    /// least one, so the reader cannot stall on an oversized op).
    fn top_up<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<()> {
        while self
            .ops
            .front()
            .is_some_and(|op| {
                self.in_flight.is_empty() || self.in_flight_records + op.records <= self.budget
            })
        {
            let Some(op) = self.ops.pop_front() else { break };
            let ticket = array.submit_read(&op.addrs)?;
            self.in_flight_records += op.records;
            self.in_flight.push_back((ticket, op.records));
        }
        Ok(())
    }

    /// Retire the oldest in-flight op and immediately reuse its budget.
    /// Returns `None` when the input is exhausted.
    fn next_stripe<A: DiskArray<R>>(&mut self, array: &mut A) -> Result<Option<Vec<R>>> {
        self.top_up(array)?;
        let Some((ticket, n)) = self.in_flight.pop_front() else {
            return Ok(None);
        };
        let blocks = array.complete_read(ticket)?;
        self.in_flight_records -= n;
        self.top_up(array)?;
        let mut records = Vec::with_capacity(n);
        for block in blocks {
            records.extend(block.records);
        }
        debug_assert_eq!(records.len(), n, "planned record yield mismatch");
        Ok(Some(records))
    }
}

/// Replacement selection: heap entries are `(epoch, key, seq)` so that
/// records frozen for the next run sink below every current-run record.
fn replacement_selection<R: Record, A: DiskArray<R>>(
    array: &mut A,
    input: &StripedRun,
    pipeline: bool,
    mut place: impl FnMut() -> DiskId,
) -> Result<Vec<StripedRun>> {
    let geom = array.geometry();
    // Reserve ~4D blocks of the memory budget for I/O buffers; the rest
    // feeds the selection heap.
    let heap_capacity = geom
        .m
        .saturating_sub(4 * geom.d * geom.b)
        .max(geom.b)
        .max(1);
    let mut reader = StripeReader::new(input);
    let mut pending: std::collections::VecDeque<R> = std::collections::VecDeque::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut payloads: std::collections::HashMap<u64, R> = std::collections::HashMap::new();
    let mut seq = 0u64;

    let refill = |heap: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
                      payloads: &mut std::collections::HashMap<u64, R>,
                      pending: &mut std::collections::VecDeque<R>,
                      reader: &mut StripeReader,
                      array: &mut A,
                      epoch: u64,
                      seq: &mut u64|
     -> Result<()> {
        while heap.len() < heap_capacity {
            if pending.is_empty() {
                match reader.next_stripe(array, heap_capacity - heap.len())? {
                    Some(records) => pending.extend(records),
                    None => break,
                }
            }
            match pending.pop_front() {
                Some(rec) => {
                    heap.push(Reverse((epoch, rec.key(), *seq)));
                    payloads.insert(*seq, rec);
                    *seq += 1;
                }
                None => break,
            }
        }
        Ok(())
    };

    let mut out = Vec::new();
    let mut epoch = 0u64;
    refill(&mut heap, &mut payloads, &mut pending, &mut reader, array, epoch, &mut seq)?;
    while !heap.is_empty() {
        let mut writer = if pipeline {
            RunWriter::new_pipelined(geom, place())
        } else {
            RunWriter::new(geom, place())
        };
        loop {
            match heap.peek() {
                Some(&Reverse((e, _, _))) if e == epoch => {}
                _ => break, // heap empty or only next-epoch records left
            }
            let Reverse((_, key, id)) = heap
                .pop()
                .ok_or_else(|| SrmError::Internal("selection heap drained mid-run".into()))?;
            let rec = payloads
                .remove(&id)
                .ok_or_else(|| SrmError::Internal(format!("no payload for heap entry {id}")))?;
            debug_assert_eq!(rec.key(), key);
            writer.push(array, rec)?;
            // Admit one replacement record; freeze it for the next run if
            // it cannot extend the current one.
            if pending.is_empty() {
                if let Some(records) = reader.next_stripe(array, 1)? {
                    pending.extend(records);
                }
            }
            if let Some(new) = pending.pop_front() {
                let e = if new.key() >= key { epoch } else { epoch + 1 };
                heap.push(Reverse((e, new.key(), seq)));
                payloads.insert(seq, new);
                seq += 1;
            }
        }
        out.push(writer.finish(array)?);
        epoch += 1;
    }
    debug_assert!(payloads.is_empty());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::read_run;
    use pdisk::{Block, Forecast, Geometry, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Lay out unsorted records as a striped input file.
    pub(crate) fn write_input(
        array: &mut MemDiskArray<U64Record>,
        geom: Geometry,
        records: &[u64],
    ) -> StripedRun {
        let b = geom.b;
        let len_blocks = (records.len() as u64).div_ceil(b as u64);
        let a2 = array;
        let run = {
            use pdisk::DiskArray as _;
            a2.alloc_run(DiskId(0), len_blocks, records.len() as u64).unwrap()
        };
        for (i, chunk) in records.chunks(b).enumerate() {
            let mut recs: Vec<U64Record> = chunk.iter().map(|&k| U64Record(k)).collect();
            // Input blocks need no forecast format and need not be sorted;
            // Block::new debug-asserts sortedness, so construct directly.
            let block = Block {
                records: std::mem::take(&mut recs),
                forecast: Forecast::Next(pdisk::block::NO_BLOCK),
            };
            a2.write(vec![(run.addr_of(i as u64), block)]).unwrap();
        }
        run
    }

    fn verify_runs(
        array: &mut MemDiskArray<U64Record>,
        runs: &[StripedRun],
        original: &[u64],
    ) {
        let mut all: Vec<u64> = Vec::new();
        for run in runs {
            let records = read_run(array, run).unwrap();
            let keys: Vec<u64> = records.iter().map(|r| r.0).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
            assert_eq!(keys.len() as u64, run.records);
            all.extend(keys);
        }
        let mut expected = original.to_vec();
        expected.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, expected, "runs are not a partition of the input");
    }

    fn random_input(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.random_range(0..1_000_000)).collect()
    }

    #[test]
    fn memory_load_forms_expected_number_of_runs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let geom = Geometry::new(2, 4, 64).unwrap(); // M = 64 records
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 300);
        let input = write_input(&mut a, geom, &input_keys);
        let runs = form_runs(
            &mut a,
            &input,
            RunFormation::MemoryLoad { fraction: 0.5 },
            || DiskId(0),
        )
        .unwrap();
        // 300 records / 32-record loads -> 10 runs.
        assert_eq!(runs.len(), 300usize.div_ceil(32));
        verify_runs(&mut a, &runs, &input_keys);
    }

    #[test]
    fn memory_load_full_fraction() {
        let mut rng = SmallRng::seed_from_u64(2);
        let geom = Geometry::new(2, 4, 64).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 130);
        let input = write_input(&mut a, geom, &input_keys);
        let runs = form_runs(
            &mut a,
            &input,
            RunFormation::MemoryLoad { fraction: 1.0 },
            || DiskId(1),
        )
        .unwrap();
        assert_eq!(runs.len(), 130usize.div_ceil(64));
        verify_runs(&mut a, &runs, &input_keys);
    }

    #[test]
    fn bad_fraction_rejected() {
        let geom = Geometry::new(2, 4, 64).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_input(&mut a, geom, &[1, 2, 3]);
        for frac in [0.0, -1.0, 1.5] {
            assert!(matches!(
                form_runs(
                    &mut a,
                    &input,
                    RunFormation::MemoryLoad { fraction: frac },
                    || DiskId(0)
                ),
                Err(SrmError::Config(_))
            ));
        }
    }

    #[test]
    fn parallel_memory_load_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(9);
        let geom = Geometry::new(2, 4, 64).unwrap();
        let input_keys = random_input(&mut rng, 400);
        // Serial.
        let mut a = MemDiskArray::new(geom);
        let input = write_input(&mut a, geom, &input_keys);
        let serial = form_runs(
            &mut a,
            &input,
            RunFormation::MemoryLoad { fraction: 0.5 },
            || DiskId(0),
        )
        .unwrap();
        // Parallel with 4 threads.
        let mut b = MemDiskArray::new(geom);
        let input = write_input(&mut b, geom, &input_keys);
        let parallel = form_runs(
            &mut b,
            &input,
            RunFormation::ParallelMemoryLoad { fraction: 0.5, threads: 4 },
            || DiskId(0),
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let sk: Vec<u64> = read_run(&mut a, s).unwrap().iter().map(|r| r.0).collect();
            let pk: Vec<u64> = read_run(&mut b, p).unwrap().iter().map(|r| r.0).collect();
            assert_eq!(sk, pk, "run contents must match serial formation");
        }
        verify_runs(&mut b, &parallel, &input_keys);
    }

    #[test]
    fn pipelined_formation_matches_serial_exactly() {
        // Same runs, layouts, and IoStats across shapes that exercise
        // partial final blocks, partial final stripes, and both
        // memory-load strategies.
        for &(d, b, m, n, strategy) in &[
            (2usize, 4usize, 64usize, 300usize, RunFormation::MemoryLoad { fraction: 0.5 }),
            (4, 8, 256, 1_000, RunFormation::MemoryLoad { fraction: 0.5 }),
            (3, 4, 96, 233, RunFormation::MemoryLoad { fraction: 1.0 }),
            (4, 8, 256, 777, RunFormation::ParallelMemoryLoad { fraction: 0.5, threads: 3 }),
            (2, 4, 64, 150, RunFormation::ReplacementSelection),
        ] {
            let mut rng = SmallRng::seed_from_u64(0xF0);
            let geom = Geometry::new(d, b, m).unwrap();
            let input_keys = random_input(&mut rng, n);

            let mut a = MemDiskArray::new(geom);
            let input_a = write_input(&mut a, geom, &input_keys);
            a.reset_stats();
            let serial = form_runs(&mut a, &input_a, strategy, || DiskId(0)).unwrap();
            let serial_io = a.stats();

            let mut p = MemDiskArray::new(geom);
            let input_p = write_input(&mut p, geom, &input_keys);
            p.reset_stats();
            let piped = form_runs_pipelined(&mut p, &input_p, strategy, || DiskId(0)).unwrap();
            let piped_io = p.stats();

            let ctx = format!("d={d} b={b} m={m} n={n} strategy={strategy:?}");
            assert_eq!(serial_io, piped_io, "IoStats diverged: {ctx}");
            assert_eq!(serial.len(), piped.len(), "run count diverged: {ctx}");
            for (s, q) in serial.iter().zip(&piped) {
                assert_eq!(
                    (s.start_disk, s.len_blocks, s.records, &s.base_offsets),
                    (q.start_disk, q.len_blocks, q.records, &q.base_offsets),
                    "run layout diverged: {ctx}"
                );
                let sk = read_run(&mut a, s).unwrap();
                let qk = read_run(&mut p, q).unwrap();
                assert_eq!(sk, qk, "run contents diverged: {ctx}");
            }
            verify_runs(&mut p, &piped, &input_keys);
        }
    }

    #[test]
    fn replacement_selection_partitions_and_sorts() {
        let mut rng = SmallRng::seed_from_u64(3);
        let geom = Geometry::new(2, 4, 64).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 500);
        let input = write_input(&mut a, geom, &input_keys);
        let runs = form_runs(&mut a, &input, RunFormation::ReplacementSelection, || {
            DiskId(0)
        })
        .unwrap();
        verify_runs(&mut a, &runs, &input_keys);
    }

    #[test]
    fn replacement_selection_runs_longer_than_memory_loads() {
        // On random input RS runs average ~2x the heap size.
        let mut rng = SmallRng::seed_from_u64(4);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 2000);
        let input = write_input(&mut a, geom, &input_keys);
        let rs = form_runs(&mut a, &input, RunFormation::ReplacementSelection, || {
            DiskId(0)
        })
        .unwrap();
        let heap_cap = 96 - 4 * 2 * 4; // M - 4DB
        let avg = 2000.0 / rs.len() as f64;
        assert!(
            avg > heap_cap as f64 * 1.3,
            "average RS run {avg} records should beat heap capacity {heap_cap}"
        );
    }

    #[test]
    fn replacement_selection_sorted_input_gives_one_run() {
        let geom = Geometry::new(2, 4, 64).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys: Vec<u64> = (0..400).collect();
        let input = write_input(&mut a, geom, &input_keys);
        let runs = form_runs(&mut a, &input, RunFormation::ReplacementSelection, || {
            DiskId(0)
        })
        .unwrap();
        assert_eq!(runs.len(), 1);
        verify_runs(&mut a, &runs, &input_keys);
    }

    #[test]
    fn replacement_selection_reverse_sorted_input_worst_case() {
        let geom = Geometry::new(2, 4, 64).unwrap();
        let heap_cap = 64 - 4 * 2 * 4;
        let mut a = MemDiskArray::new(geom);
        let input_keys: Vec<u64> = (0..300).rev().collect();
        let input = write_input(&mut a, geom, &input_keys);
        let runs = form_runs(&mut a, &input, RunFormation::ReplacementSelection, || {
            DiskId(0)
        })
        .unwrap();
        // Reverse input: every record freezes immediately; runs ≈ heap size.
        assert_eq!(runs.len(), 300usize.div_ceil(heap_cap));
        verify_runs(&mut a, &runs, &input_keys);
    }

    #[test]
    fn placement_callback_controls_start_disks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let geom = Geometry::new(4, 4, 64).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 200);
        let input = write_input(&mut a, geom, &input_keys);
        let mut next = 0u32;
        let runs = form_runs(
            &mut a,
            &input,
            RunFormation::MemoryLoad { fraction: 0.5 },
            || {
                let d = DiskId(next % 4);
                next += 1;
                d
            },
        )
        .unwrap();
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.start_disk, DiskId(i as u32 % 4));
        }
    }

    #[test]
    fn input_reads_use_parallel_stripes() {
        let mut rng = SmallRng::seed_from_u64(6);
        let geom = Geometry::new(4, 4, 640).unwrap();
        let mut a = MemDiskArray::new(geom);
        let input_keys = random_input(&mut rng, 320); // 80 blocks
        let input = write_input(&mut a, geom, &input_keys);
        a.reset_stats();
        let _ = form_runs(
            &mut a,
            &input,
            RunFormation::MemoryLoad { fraction: 1.0 },
            || DiskId(0),
        )
        .unwrap();
        let stats = a.stats();
        // 80 blocks over 4 disks: at best 20 read ops; allow partial-load
        // boundary effects but demand near-full parallelism.
        assert!(
            stats.read_ops <= 25,
            "input pass used {} read ops for 80 blocks on 4 disks",
            stats.read_ops
        );
    }
}
