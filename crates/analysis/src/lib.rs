//! # analysis — closed-form I/O counts and the paper's tables
//!
//! Everything §9–§10 of the SRM paper computes on paper or tabulates:
//!
//! * [`formulas`] — eq. (40)/(41): `C_SRM`, `C_DSM`, total-I/O counts,
//!   pass counts, the table memory size `M = (2k+4)DB + kD²`;
//! * [`theorem1`] — the three asymptotic read bounds of Theorem 1;
//! * [`tables`] — generators that recompute Tables 1–4 from the living
//!   code (Monte-Carlo occupancy for Tables 1–2, the block-level merge
//!   simulator for Tables 3–4);
//! * [`paper`] — the numbers printed in the paper, embedded as reference
//!   constants so every regeneration can be diffed against the original;
//! * [`render`] — plain-text/markdown rendering used by the `bench`
//!   binaries and EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod formulas;
pub mod memory;
pub mod paper;
pub mod render;
pub mod tables;
pub mod theorem1;

pub use formulas::{
    c_dsm, c_srm, dsm_total_ios, srm_total_ios, srm_write_ops, table_memory,
};
pub use memory::MemoryBudget;
pub use render::Grid;
pub use tables::{table1, table2, table3, table4, Table3Params};
