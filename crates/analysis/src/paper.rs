//! The numbers printed in the paper, embedded for diffing.
//!
//! Every generated table is compared cell-by-cell against these reference
//! grids in tests and in EXPERIMENTS.md.  The paper prints 2–3 significant
//! digits, so comparisons use the tolerances of [`crate::tables`].

/// Row labels (`k`) of Tables 1 and 2.
pub const TABLE12_KS: [usize; 6] = [5, 10, 20, 50, 100, 1000];
/// Column labels (`D`) of Tables 1 and 2.
pub const TABLE12_DS: [usize; 5] = [5, 10, 50, 100, 1000];

/// Table 1: `v(k, D)` estimated via classical occupancy `C(kD, D)/k`.
pub const TABLE1: [[f64; 5]; 6] = [
    [1.6, 1.7, 2.2, 2.3, 2.7],
    [1.4, 1.5, 1.8, 1.9, 2.2],
    [1.3, 1.4, 1.5, 1.6, 1.8],
    [1.2, 1.2, 1.3, 1.4, 1.5],
    [1.11, 1.16, 1.22, 1.26, 1.3],
    [1.04, 1.05, 1.08, 1.08, 1.1],
];

/// Table 2: `C_SRM/C_DSM` with Table 1's `v`, `B = 1000`.
pub const TABLE2: [[f64; 5]; 6] = [
    [0.71, 0.62, 0.51, 0.48, 0.46],
    [0.72, 0.66, 0.54, 0.50, 0.48],
    [0.75, 0.68, 0.56, 0.53, 0.49],
    [0.77, 0.71, 0.59, 0.55, 0.50],
    [0.78, 0.72, 0.61, 0.57, 0.51],
    [0.83, 0.77, 0.67, 0.63, 0.56],
];

/// Row labels (`k`) of Tables 3 and 4.
pub const TABLE34_KS: [usize; 3] = [5, 10, 50];
/// Column labels (`D`) of Tables 3 and 4.
pub const TABLE34_DS: [usize; 3] = [5, 10, 50];

/// Table 3: `v(k, D)` from simulating the SRM merge on average-case input.
pub const TABLE3: [[f64; 3]; 3] = [
    [1.0, 1.0, 1.2],
    [1.00, 1.0, 1.1],
    [1.00, 1.00, 1.00],
];

/// Table 4: `C'_SRM/C_DSM` with Table 3's `v`.
pub const TABLE4: [[f64; 3]; 3] = [
    [0.56, 0.47, 0.37],
    [0.61, 0.52, 0.40],
    [0.71, 0.63, 0.51],
];

/// Figure 1's instance parameters: `N_b = 12` balls, `C = 5` chains,
/// `D = 4` bins; depicted maxima 4 (dependent) and 5 (classical).
pub const FIGURE1: (u64, usize, usize, u64, u64) = (12, 5, 4, 4, 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_consistent_shapes() {
        assert_eq!(TABLE1.len(), TABLE12_KS.len());
        assert_eq!(TABLE2.len(), TABLE12_KS.len());
        assert!(TABLE1.iter().all(|r| r.len() == TABLE12_DS.len()));
        assert_eq!(TABLE3.len(), TABLE34_KS.len());
        assert_eq!(TABLE4.len(), TABLE34_KS.len());
    }

    #[test]
    fn monotonicity_claims_of_the_paper_hold_in_its_own_numbers() {
        // v decreases down each column (larger k), increases along rows
        // (larger D).
        #[allow(clippy::needless_range_loop)] // col indexes two parallel tables
        for col in 0..5 {
            for row in 1..6 {
                assert!(TABLE1[row][col] <= TABLE1[row - 1][col]);
            }
        }
        for row in TABLE1.iter() {
            for col in 1..5 {
                assert!(row[col] >= row[col - 1]);
            }
        }
        // All ratios favour SRM.
        assert!(TABLE2.iter().flatten().all(|&x| x < 1.0));
        assert!(TABLE4.iter().flatten().all(|&x| x < 1.0));
        // Table 4 (simulation) beats Table 2 (worst-case bound) cell-wise.
        for (r4, r2) in TABLE4.iter().zip(TABLE2.iter()) {
            for (a, b) in r4.iter().zip(r2.iter()) {
                assert!(a < b);
            }
        }
    }
}
