//! Plain-text rendering of (k × D) grids.

/// A labelled grid of values: rows indexed by `k`, columns by `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Row labels.
    pub ks: Vec<usize>,
    /// Column labels.
    pub ds: Vec<usize>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<f64>>,
}

impl Grid {
    /// Build a grid by evaluating `f(k, d)` on the cross product.
    pub fn build(ks: &[usize], ds: &[usize], mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let cells = ks
            .iter()
            .map(|&k| ds.iter().map(|&d| f(k, d)).collect())
            .collect();
        Grid {
            ks: ks.to_vec(),
            ds: ds.to_vec(),
            cells,
        }
    }

    /// Cell lookup by labels.
    pub fn get(&self, k: usize, d: usize) -> Option<f64> {
        let row = self.ks.iter().position(|&x| x == k)?;
        let col = self.ds.iter().position(|&x| x == d)?;
        Some(self.cells[row][col])
    }

    /// Render as a markdown table with `digits` decimal places.
    pub fn to_markdown(&self, corner: &str, digits: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {corner} |"));
        for d in &self.ds {
            out.push_str(&format!(" D={d} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.ds {
            out.push_str("---|");
        }
        out.push('\n');
        for (k, row) in self.ks.iter().zip(&self.cells) {
            out.push_str(&format!("| k={k} |"));
            for v in row {
                out.push_str(&format!(" {v:.digits$} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Maximum absolute cell difference against a reference grid of the
    /// same shape.
    pub fn max_abs_diff(&self, reference: &[&[f64]]) -> f64 {
        assert_eq!(self.cells.len(), reference.len());
        self.cells
            .iter()
            .zip(reference)
            .flat_map(|(row, rref)| {
                assert_eq!(row.len(), rref.len());
                row.iter().zip(rref.iter()).map(|(a, b)| (a - b).abs())
            })
            .fold(0.0, f64::max)
    }

    /// Maximum relative cell difference against a reference grid.
    pub fn max_rel_diff(&self, reference: &[&[f64]]) -> f64 {
        self.cells
            .iter()
            .zip(reference)
            .flat_map(|(row, rref)| {
                row.iter()
                    .zip(rref.iter())
                    .map(|(a, b)| ((a - b) / b).abs())
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::build(&[1, 2], &[10, 20], |k, d| (k * d) as f64)
    }

    #[test]
    fn build_and_get() {
        let g = grid();
        assert_eq!(g.get(2, 10), Some(20.0));
        assert_eq!(g.get(1, 20), Some(20.0));
        assert_eq!(g.get(3, 10), None);
    }

    #[test]
    fn markdown_has_all_cells() {
        let md = grid().to_markdown("v", 1);
        assert!(md.contains("| k=1 | 10.0 | 20.0 |"));
        assert!(md.contains("| k=2 | 20.0 | 40.0 |"));
        assert!(md.contains("D=10"));
    }

    #[test]
    fn diffs_against_reference() {
        let g = grid();
        let exact: [&[f64]; 2] = [&[10.0, 20.0], &[20.0, 40.0]];
        assert_eq!(g.max_abs_diff(&exact), 0.0);
        let off: [&[f64]; 2] = [&[10.0, 22.0], &[20.0, 40.0]];
        assert_eq!(g.max_abs_diff(&off), 2.0);
        assert!((g.max_rel_diff(&off) - 2.0 / 22.0).abs() < 1e-12);
    }
}
