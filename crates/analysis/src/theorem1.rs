//! Theorem 1: SRM's expected read bounds, all three regimes.
//!
//! Each case bounds `Reads_SRM` for sorting `N` records with merge order
//! `R` on `D` disks (block size `B`, memory `M`); the `O(·)` tails are
//! dropped, so these are the *leading-term* bounds the paper compares
//! against.

/// Case 1 (`R = kD`, constant `k`): per the theorem,
///
/// ```text
/// Reads ≤ N/DB + (N/DB)·(ln(N/M)/ln kD)·(lnD/(k·lnlnD))·
///         (1 + lnlnlnD/lnlnD + (1+ln k)/lnlnD)
/// ```
///
/// Returns `NaN` when the iterated logs are undefined (`D ≤ e`).
pub fn reads_case1(n: u64, m: u64, d: usize, b: usize, k: usize) -> f64 {
    let base = n as f64 / (d * b) as f64;
    let occupancy = occupancy::theorem2_case1(k as f64, d) / k as f64;
    base + base * crate::formulas::merge_passes(n, m, (k * d) as f64) * occupancy
}

/// Case 2 (`R = rD·lnD`, constant `r`): optimal within the constant `c`
/// (which the theorem leaves implicit; it depends on `r`).  Supply the
/// constant explicitly.
pub fn reads_case2(n: u64, m: u64, d: usize, b: usize, r: f64, c: f64) -> f64 {
    let base = n as f64 / (d * b) as f64;
    let merge_order = r * d as f64 * (d as f64).ln();
    base + c * base * crate::formulas::merge_passes(n, m, merge_order)
}

/// Case 3 (`R = rD·lnD`, `r = Ω(1)`): asymptotically optimal —
///
/// ```text
/// Reads ≤ N/DB + (N/DB)·(ln(N/M)/ln(rD lnD))·(1 + √(2/r) + lnr/(√(2r)·lnD))
/// ```
pub fn reads_case3(n: u64, m: u64, d: usize, b: usize, r: f64) -> f64 {
    let base = n as f64 / (d * b) as f64;
    let lnd = (d as f64).ln();
    let merge_order = r * d as f64 * lnd;
    let per_pass_overhead = occupancy::theorem2_case2(r, d) / (r * lnd); // E[max]/(N_b/D)
    base + base * crate::formulas::merge_passes(n, m, merge_order) * per_pass_overhead
}

/// The read-overhead factor `v(k, D)` implied by Case 1's occupancy bound
/// (what Table 1 estimates by simulation instead).
pub fn v_case1(k: usize, d: usize) -> f64 {
    occupancy::theorem2_case1(k as f64, d) / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_dominates_the_trivial_lower_bound() {
        let (n, m, d, b, k) = (1u64 << 30, 1u64 << 22, 50usize, 1000usize, 10usize);
        let reads = reads_case1(n, m, d, b, k);
        let lower = n as f64 / (d * b) as f64;
        assert!(reads > lower);
        assert!(reads.is_finite());
    }

    #[test]
    fn case2_sits_between_trivial_and_scaled_case3() {
        let (n, m, d, b) = (1u64 << 28, 1u64 << 20, 32usize, 1000usize);
        let base = n as f64 / (d * b) as f64;
        let c2 = reads_case2(n, m, d, b, 2.0, 1.5);
        assert!(c2 > base);
        // With c = 1 it reduces to the perfectly-parallel pass count.
        let ideal = reads_case2(n, m, d, b, 2.0, 1.0);
        assert!(c2 > ideal);
    }

    #[test]
    fn case3_approaches_optimal_as_r_grows() {
        let (n, m, d, b) = (1u64 << 30, 1u64 << 22, 64usize, 1000usize);
        let base = n as f64 / (d * b) as f64;
        let tight = reads_case3(n, m, d, b, 64.0);
        // Per-pass overhead -> 1: reads -> base·(1 + passes).
        let passes = crate::formulas::merge_passes(n, m, 64.0 * 64.0 * (64f64).ln());
        assert!(tight < base * (1.0 + passes * 1.35), "tight = {tight}");
        let loose = reads_case3(n, m, d, b, 1.0);
        assert!(loose > tight);
    }

    #[test]
    fn v_case1_upper_bounds_table1_shape() {
        // The analytic v must dominate the simulated v of Table 1 and
        // shrink as k grows.
        assert!(v_case1(5, 1000) > v_case1(100, 1000));
        // Table 1 reports v(5, 1000) ≈ 2.7; the leading-term expansion
        // (with its O((lnlnln D)²/(lnln D)²) tail dropped) lands at ≈ 1.9 —
        // same regime, slightly under the simulated truth because the
        // dropped tail is positive at finite D.
        let v = v_case1(5, 1000);
        assert!(v > 1.5 && v < 8.0, "v_case1(5,1000) = {v}");
    }
}
