//! Regeneration of the paper's Tables 1–4.

use crate::formulas::{c_dsm, c_srm};
use crate::render::Grid;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_core::simulator::{estimate_overhead_v, SimPlacement};

/// Block size used throughout §9's tables.
pub const TABLE_B: usize = 1000;

/// Table 1: `v(k, D) = C(kD, D)/k` by classical-occupancy Monte Carlo.
///
/// `trials` ball-throwing experiments per cell; the paper does not state
/// its trial count, a few hundred reproduces its 2-digit values.
pub fn table1(ks: &[usize], ds: &[usize], trials: u64, seed: u64) -> Grid {
    let mut rng = SmallRng::seed_from_u64(seed);
    Grid::build(ks, ds, |k, d| {
        occupancy::overhead_v(k as u64, d, trials, &mut rng).mean
    })
}

/// Table 2: the ratio `C_SRM/C_DSM` with `v` taken from a Table 1 grid
/// (same row/column labels) and `B = 1000`.
pub fn table2(v: &Grid) -> Grid {
    Grid::build(&v.ks, &v.ds, |k, d| {
        let vkd = v.get(k, d).expect("v grid covers (k, d)"); // lint:allow(panic) Grid::build iterates v's own axes
        c_srm(vkd, k, d) / c_dsm(k, d, TABLE_B)
    })
}

/// Parameters of the Table 3 merge simulation.
#[derive(Debug, Clone, Copy)]
pub struct Table3Params {
    /// Blocks per run (`L`); the paper's `N' = 1000·kDB` means 1000.
    pub blocks_per_run: u64,
    /// Records per block (`B`).
    pub b: u64,
    /// Merges simulated per cell.
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
    /// Start-disk placement (SRM proper is `Random`; §8's experiment uses
    /// `Staggered`).
    pub placement: SimPlacement,
}

impl Default for Table3Params {
    fn default() -> Self {
        Table3Params {
            blocks_per_run: 1000,
            b: 1000,
            trials: 3,
            seed: 0x5EED_0003,
            placement: SimPlacement::Random,
        }
    }
}

/// Table 3: `v(k, D)` from simulating the SRM merge itself on
/// average-case inputs (merging `kD` runs of `blocks_per_run` blocks).
pub fn table3(ks: &[usize], ds: &[usize], params: Table3Params) -> Grid {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    Grid::build(ks, ds, |k, d| {
        estimate_overhead_v(
            k,
            d,
            params.blocks_per_run,
            params.b,
            params.placement,
            params.trials,
            &mut rng,
        )
        .expect("simulation cannot fail on well-formed inputs") // lint:allow(panic) inputs are table constants
        .mean
    })
}

/// Table 4: `C'_SRM/C_DSM` with `v` from a Table 3 grid.
pub fn table4(v: &Grid) -> Grid {
    table2(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn rows<const N: usize, const M: usize>(t: &[[f64; M]; N]) -> Vec<&[f64]> {
        t.iter().map(|r| r.as_slice()).collect()
    }

    /// Table 1 at reduced scale: the small-(k, D) corner of the paper's
    /// grid must reproduce within the paper's 2-digit rounding plus Monte
    /// Carlo noise.
    #[test]
    fn table1_small_corner_matches_paper() {
        let ks = [5usize, 10, 20, 50];
        let ds = [5usize, 10, 50];
        let g = table1(&ks, &ds, 400, 42);
        for (i, &k) in ks.iter().enumerate() {
            for (j, &d) in ds.iter().enumerate() {
                let got = g.cells[i][j];
                let want = paper::TABLE1[i][j];
                assert!(
                    (got - want).abs() < 0.1 + 0.05 * want,
                    "v({k},{d}) = {got:.3}, paper {want}"
                );
            }
        }
    }

    #[test]
    fn table2_small_corner_matches_paper() {
        let ks = [5usize, 10, 20, 50];
        let ds = [5usize, 10, 50];
        let v = table1(&ks, &ds, 400, 43);
        let g = table2(&v);
        for (i, &k) in ks.iter().enumerate() {
            for (j, &d) in ds.iter().enumerate() {
                let got = g.cells[i][j];
                let want = paper::TABLE2[i][j];
                assert!(
                    (got - want).abs() < 0.05,
                    "ratio({k},{d}) = {got:.3}, paper {want}"
                );
                assert!(got < 1.0, "SRM must beat DSM at ({k},{d})");
            }
        }
    }

    /// Table 3 at reduced run length (100 blocks/run instead of 1000, one
    /// trial) — values must sit in the paper's band: ≈1 everywhere, with
    /// visible overhead only at small k / large D.
    #[test]
    fn table3_reduced_scale_shape() {
        let params = Table3Params {
            blocks_per_run: 100,
            b: 100,
            trials: 1,
            seed: 7,
            placement: SimPlacement::Random,
        };
        let g = table3(&[5, 10], &[5, 10], params);
        for row in &g.cells {
            for &v in row {
                assert!((1.0 - 1e-9..1.15).contains(&v), "v = {v}");
            }
        }
    }

    #[test]
    fn table4_uses_same_ratio_formula() {
        let v = Grid::build(&[5, 10], &[5, 10], |_, _| 1.0);
        let t4 = table4(&v);
        let t2 = table2(&v);
        assert_eq!(t4, t2);
    }

    #[test]
    fn paper_reference_shapes_align_with_generators() {
        let _ = rows(&paper::TABLE1);
        assert_eq!(paper::TABLE12_KS.len(), paper::TABLE1.len());
    }
}
