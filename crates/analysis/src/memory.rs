//! Definition 3's internal-memory partition, itemized.
//!
//! SRM's merge uses `M/B = 2R + 4D + RD/B` blocks of internal memory:
//!
//! | set   | blocks  | role |
//! |-------|---------|------|
//! | `M_L` | `R`     | leading block of each run |
//! | `M_R` | `R + D` | full non-leading blocks (the flush pool `F_t`) |
//! | `M_D` | `D`     | landing buffers so reads start at the earliest possible time |
//! | `M_W` | `2D`    | output stripes awaiting forecast finalization |
//! | FDS   | `≈ RD/B`| the forecasting tables (`D` arrays of `R` keys) |

use pdisk::Geometry;

/// Itemized block budget for one SRM merge at order `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Merge order `R`.
    pub r: usize,
    /// Disk count `D`.
    pub d: usize,
    /// `M_L`: leading-block buffers (`R`).
    pub m_l: usize,
    /// `M_R`: the flush pool (`R + D`).
    pub m_r: usize,
    /// `M_D`: read landing buffers (`D`).
    pub m_d: usize,
    /// `M_W`: output double-stripe (`2D`).
    pub m_w: usize,
    /// Forecasting tables, in blocks (`⌈RD/B⌉`).
    pub fds_blocks: usize,
    /// Blocks available in memory (`M/B`).
    pub available_blocks: usize,
}

impl MemoryBudget {
    /// Compute the budget for a geometry, using its maximum merge order.
    pub fn for_geometry(geom: Geometry) -> Result<Self, pdisk::PdiskError> {
        let r = geom.srm_merge_order()?;
        Ok(Self::for_order(geom, r))
    }

    /// Compute the budget for an explicit merge order `r`.
    pub fn for_order(geom: Geometry, r: usize) -> Self {
        MemoryBudget {
            r,
            d: geom.d,
            m_l: r,
            m_r: r + geom.d,
            m_d: geom.d,
            m_w: 2 * geom.d,
            fds_blocks: (r * geom.d).div_ceil(geom.b),
            available_blocks: geom.memory_blocks(),
        }
    }

    /// Total blocks consumed.
    pub fn total(&self) -> usize {
        self.m_l + self.m_r + self.m_d + self.m_w + self.fds_blocks
    }

    /// Whether the budget fits the machine.
    pub fn fits(&self) -> bool {
        self.total() <= self.available_blocks
    }

    /// A human-readable breakdown.
    pub fn render(&self) -> String {
        format!(
            "R = {} on D = {}:\n  M_L (leading)      {:>6} blocks\n  M_R (flush pool)   {:>6} blocks\n  M_D (read landing) {:>6} blocks\n  M_W (write buffer) {:>6} blocks\n  FDS (forecasting)  {:>6} blocks\n  total {} of {} available",
            self.r,
            self.d,
            self.m_l,
            self.m_r,
            self.m_d,
            self.m_w,
            self.fds_blocks,
            self.total(),
            self.available_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_fits_for_table_geometries() {
        for &(k, d, b) in &[(5usize, 5usize, 1000usize), (10, 50, 1000), (100, 10, 1000)] {
            let geom = Geometry::for_table(k, d, b).unwrap();
            let budget = MemoryBudget::for_geometry(geom).unwrap();
            assert!(budget.fits(), "k={k} D={d}: {}", budget.render());
            // The derived order is within one of kD (flooring).
            assert!(budget.r >= k * d - 1 && budget.r <= k * d);
        }
    }

    #[test]
    fn budget_matches_formula() {
        let geom = Geometry::for_table(4, 10, 100).unwrap(); // exact division
        let budget = MemoryBudget::for_geometry(geom).unwrap();
        assert_eq!(budget.r, 40);
        // 2R + 4D + RD/B = 80 + 40 + 4 = 124 = M/B exactly.
        assert_eq!(budget.total(), 124);
        assert_eq!(budget.available_blocks, 124);
    }

    #[test]
    fn smaller_order_always_fits() {
        let geom = Geometry::for_table(4, 10, 100).unwrap();
        let budget = MemoryBudget::for_order(geom, 10);
        assert!(budget.fits());
        assert!(budget.total() < budget.available_blocks);
    }

    #[test]
    fn render_mentions_every_set() {
        let geom = Geometry::for_table(4, 10, 100).unwrap();
        let text = MemoryBudget::for_geometry(geom).unwrap().render();
        for set in ["M_L", "M_R", "M_D", "M_W", "FDS"] {
            assert!(text.contains(set), "missing {set}");
        }
    }
}
