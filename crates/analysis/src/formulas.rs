//! Closed-form I/O counts from §9.1 of the paper.
//!
//! With `R = kD` and memory `M = (2k+4)·D·B + k·D²` (records):
//!
//! * SRM: `(N/DB)·(2 + C_SRM·ln(N/M))`, `C_SRM = (1+v)/ln(kD)`  (eq. 40)
//! * DSM: `(N/DB)·(2 + C_DSM·ln(N/M))`, `C_DSM = 2/ln(k+1+kD/2B)` (eq. 41)
//!
//! where `v = v(k, D)` is SRM's read-overhead factor per merge pass
//! (estimated either by classical occupancy — Table 1 — or by simulating
//! the merge itself — Table 3).

/// The tables' memory size in records: `M = (2k+4)·D·B + k·D²` (§9.1).
pub fn table_memory(k: usize, d: usize, b: usize) -> u64 {
    ((2 * k + 4) * d * b + k * d * d) as u64
}

/// Eq. (40): `C_SRM = (1 + v) / ln(kD)`.
pub fn c_srm(v: f64, k: usize, d: usize) -> f64 {
    (1.0 + v) / ((k * d) as f64).ln()
}

/// Eq. (41): `C_DSM = 2 / ln(k + 1 + kD/2B)` — DSM's merge order under
/// the same memory budget.
pub fn c_dsm(k: usize, d: usize, b: usize) -> f64 {
    2.0 / dsm_merge_order(k, d, b).ln()
}

/// DSM's merge order with the table memory: `k + 1 + kD/2B`.
pub fn dsm_merge_order(k: usize, d: usize, b: usize) -> f64 {
    k as f64 + 1.0 + (k * d) as f64 / (2 * b) as f64
}

/// Number of SRM merge passes over the file (beyond run formation):
/// `ln(N/M)/ln R` (§2.1's simplification — no ceilings).
pub fn merge_passes(n: u64, m: u64, r: f64) -> f64 {
    ((n as f64 / m as f64).ln() / r.ln()).max(0.0)
}

/// SRM's total write operations: `(N/DB)·(1 + ln(N/M)/ln(kD))` — writes
/// are perfectly parallel in every pass (Theorem 1).
pub fn srm_write_ops(n: u64, m: u64, d: usize, b: usize, k: usize) -> f64 {
    let base = n as f64 / (d * b) as f64;
    base * (1.0 + merge_passes(n, m, (k * d) as f64))
}

/// Eq. (40) assembled: SRM's total I/O count for sorting `n` records.
pub fn srm_total_ios(n: u64, m: u64, d: usize, b: usize, k: usize, v: f64) -> f64 {
    let base = n as f64 / (d * b) as f64;
    base * (2.0 + c_srm(v, k, d) * (n as f64 / m as f64).ln())
}

/// Eq. (41) assembled: DSM's total I/O count for sorting `n` records.
pub fn dsm_total_ios(n: u64, m: u64, d: usize, b: usize, k: usize) -> f64 {
    let base = n as f64 / (d * b) as f64;
    base * (2.0 + c_dsm(k, d, b) * (n as f64 / m as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_memory_matches_geometry_helper() {
        for &(k, d, b) in &[(5usize, 5usize, 1000usize), (100, 50, 1000), (10, 10, 100)] {
            let g = pdisk::Geometry::for_table(k, d, b).unwrap();
            assert_eq!(table_memory(k, d, b), g.m as u64);
        }
    }

    #[test]
    fn c_srm_decreases_with_merge_order() {
        // Larger kD -> fewer passes -> smaller constant.
        assert!(c_srm(1.0, 5, 5) > c_srm(1.0, 50, 5));
        assert!(c_srm(1.0, 5, 5) > c_srm(1.0, 5, 50));
    }

    #[test]
    fn c_dsm_ignores_d_when_blocks_large() {
        // kD/2B vanishes for B >> kD: C_DSM ≈ 2/ln(k+1).
        let c = c_dsm(10, 10, 100_000);
        assert!((c - 2.0 / 11.0f64.ln()).abs() < 1e-3);
    }

    /// The paper's headline example: D = 50, k = 100, B = 1000 gives
    /// M = 10.45M records and a ratio ≈ 0.60 with Table 1's v ≈ 1.26.
    #[test]
    fn headline_ratio_reproduces() {
        let (k, d, b) = (100usize, 50usize, 1000usize);
        assert_eq!(table_memory(k, d, b), 10_450_000);
        let ratio = c_srm(1.26, k, d) / c_dsm(k, d, b);
        assert!(
            (ratio - 0.60).abs() < 0.02,
            "C_SRM/C_DSM = {ratio}, paper says 0.60-0.61"
        );
    }

    #[test]
    fn srm_beats_dsm_for_every_table_cell() {
        // With each cell's own v from the paper's Table 1, SRM's constant
        // is below DSM's across the whole (k, D) grid at B = 1000 — the
        // paper's Table 2 in inequality form.
        for (i, &k) in crate::paper::TABLE12_KS.iter().enumerate() {
            for (j, &d) in crate::paper::TABLE12_DS.iter().enumerate() {
                let v = crate::paper::TABLE1[i][j];
                assert!(c_srm(v, k, d) < c_dsm(k, d, 1000), "k={k} D={d}");
            }
        }
    }

    #[test]
    fn total_ios_scale_linearly_in_n_over_db() {
        let a = srm_total_ios(1 << 24, 1 << 20, 8, 1024, 16, 1.1);
        let b = srm_total_ios(1 << 25, 1 << 20, 8, 1024, 16, 1.1);
        // Doubling N slightly more than doubles I/Os (extra ln growth).
        assert!(b > 2.0 * a && b < 2.4 * a);
        let d = dsm_total_ios(1 << 24, 1 << 20, 8, 1024, 16);
        assert!(d > a, "DSM must cost more I/Os than SRM here");
    }

    #[test]
    fn merge_passes_zero_when_input_fits() {
        assert_eq!(merge_passes(100, 200, 10.0), 0.0);
        assert!(merge_passes(10_000, 100, 10.0) > 1.9);
    }

    #[test]
    fn write_ops_include_formation_pass() {
        let w = srm_write_ops(1_000_000, 10_000, 10, 100, 10);
        let base = 1_000_000.0 / 1000.0;
        assert!(w > base, "must exceed one pass");
        assert!(w < base * (1.0 + 2.0), "ln(100)/ln(100) = 1 merge pass");
    }
}
