//! Repo automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! The one task today is `lint`: the workspace's model-discipline
//! rules.  The analysis itself lives in the `srmlint` crate (a real
//! lexer + item model + cross-crate passes — see its docs); this
//! binary is the familiar entry point.
//!
//! Rules:
//!
//! 1. `no-panic` — panic-free crates' non-test code must not call
//!    `.unwrap()`/`.expect()`/`panic!`/`unreachable!`/`todo!`/
//!    `unimplemented!`; fallible paths return typed errors the
//!    checkpoint/retry layers can act on.
//! 2. `cast` — no `as` narrowing inside a `DiskId(...)` construction;
//!    use the range-proved `DiskId::from_index`/`DiskId::from_mod`.
//! 3. `non-exhaustive` — public `*Error` enums carry `#[non_exhaustive]`.
//! 4. `backend` — algorithm crates stay generic over `DiskArray` so no
//!    I/O bypasses `IoStats`.
//! 5. `unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//! 6. `lock-order`/`witness` — the inter-procedural may-hold graph is
//!    acyclic, leaf locks stay leaves, and every acquisition site is
//!    wrapped for the runtime lock witness.
//! 7. `protocol` — dispatch matches over `#[srmlint::protocol]` enums
//!    name every variant; no `_ =>` can swallow a message kind.
//! 8. `blocking` — no blocking calls reachable from
//!    `#[srmlint::worker_entry]` threads outside blessed seams.
//! 9. `interrupt` — every observer of `InterruptFlag` checkpoints
//!    before returning `Interrupted`.
//!
//! `cargo xtask lint --verify-witness <log>` additionally cross-checks
//! a runtime lock-order witness log (recorded by test runs with
//! `--features lock-witness` and `SRM_LOCK_WITNESS=<log>`) against the
//! static graph.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut witness: Option<PathBuf> = None;
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--verify-witness" => witness = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("unknown lint argument `{other}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            lint(witness.as_deref())
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--verify-witness LOG]");
            ExitCode::FAILURE
        }
    }
}

fn lint(witness: Option<&std::path::Path>) -> ExitCode {
    let root = workspace_root();
    let mut analysis = srmlint::analyze_workspace(&root);

    if let Some(log_path) = witness {
        match std::fs::read_to_string(log_path) {
            Ok(log) => {
                let report = srmlint::locks::verify_witness(
                    &analysis.graph,
                    log_path,
                    &log,
                    &mut analysis.findings,
                );
                println!(
                    "xtask lint: witness: {} label(s), {} order(s) observed against \
                     {} static node(s), {} edge(s)",
                    report.labels_observed,
                    report.orders_observed,
                    report.nodes_static,
                    report.edges_static,
                );
            }
            Err(e) => {
                eprintln!("cannot read witness log {}: {e}", log_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    srmlint::relativize(&mut analysis.findings, &root);
    for f in &analysis.findings {
        println!("{f}");
    }
    if analysis.findings.is_empty() {
        println!("xtask lint: {} files clean", analysis.files);
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} finding(s) in {} files",
            analysis.findings.len(),
            analysis.files
        );
        ExitCode::FAILURE
    }
}

/// `CARGO_MANIFEST_DIR` is `crates/xtask`, two levels below the root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}
