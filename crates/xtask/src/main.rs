//! Repo automation tasks, invoked as `cargo xtask <task>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! The one task today is `lint`: a dependency-free source lint that
//! mechanically enforces the workspace's model-discipline rules — the
//! conventions that keep the paper-facing I/O accounting trustworthy
//! but that `rustc`/`clippy` cannot express:
//!
//! 1. **`no-panic`** — library crates' non-test code must not call
//!    `.unwrap()` / `.expect(...)` or invoke `panic!` / `unreachable!` /
//!    `todo!` / `unimplemented!`.  Fallible paths return the crate's
//!    typed error instead, so a mid-sort fault surfaces as a value the
//!    checkpoint/retry layers can act on, never as a process abort.
//! 2. **`cast`** — `DiskId` must not be constructed through an `as`
//!    narrowing outside the two blessed constructors in
//!    `pdisk::addr` (`DiskId::from_index` / `DiskId::from_mod`), which
//!    carry the range proofs.  A truncated disk id silently aliases
//!    another disk and breaks the ≤ 1-block-per-disk model rule.
//! 3. **`non-exhaustive`** — every public error enum is
//!    `#[non_exhaustive]`, so adding a failure mode is not a breaking
//!    change and downstream matches stay honest about unknown errors.
//! 4. **`unsafe`** — every crate root carries `#![forbid(unsafe_code)]`.
//! 5. **`backend`** — the algorithm crates (`srm-core`, `dsm`) must
//!    stay generic over the `DiskArray` trait in non-test code: naming
//!    a concrete backend (`MemDiskArray`, `FileDiskArray`) is how code
//!    reaches stats-bypassing accessors like `peek`, which would let
//!    I/O escape the `IoStats` ledger the paper comparisons rest on.
//!
//! False positives are silenced in place with a trailing marker
//! comment: `// lint:allow(panic)`, `// lint:allow(cast)` or
//! `// lint:allow(backend)`, which doubles as the written
//! justification.  Test modules (`#[cfg(test)] mod …`), doc comments,
//! and ordinary comments are never linted.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be panic-free (rule `no-panic`).
/// Binaries (`srm-cli`, `xtask`) and the benchmark harness may abort on
/// their own errors; libraries must propagate typed ones.
const PANIC_FREE_CRATES: &[&str] = &[
    "pdisk",
    "srm-core",
    "dsm",
    "occupancy",
    "analysis",
    "modelcheck",
    "srm-server",
    "srm-dist",
];

/// Crates that must not name a concrete storage backend (rule `backend`).
const TRAIT_ONLY_CRATES: &[&str] = &["srm-core", "dsm"];

#[derive(Debug)]
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let crates_dir = root.join("crates");
    let mut findings = Vec::new();
    let mut files = 0usize;
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        lint_crate_root(crate_dir, &mut findings);
        let mut sources = Vec::new();
        collect_rs_files(&crate_dir.join("src"), &mut sources);
        sources.sort();
        for path in sources {
            let Ok(text) = std::fs::read_to_string(&path) else {
                findings.push(Finding {
                    path: path.clone(),
                    line: 0,
                    rule: "io",
                    message: "source file is unreadable".into(),
                });
                continue;
            };
            files += 1;
            lint_file(&path, &crate_name, &text, &mut findings);
        }
    }
    for f in &findings {
        // Paths print relative to the workspace root so the output is
        // stable across checkouts.
        let rel = f
            .path
            .strip_prefix(&root)
            .unwrap_or(&f.path)
            .to_path_buf();
        println!(
            "{}",
            Finding {
                path: rel,
                line: f.line,
                rule: f.rule,
                message: f.message.clone()
            }
        );
    }
    if findings.is_empty() {
        println!("xtask lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} finding(s) in {files} files", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two
/// levels below it.  Falls back to the current directory so the binary
/// also works when invoked directly from a checkout.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Rule `unsafe`: the crate root (lib.rs, else main.rs) must carry
/// `#![forbid(unsafe_code)]`.
fn lint_crate_root(crate_dir: &Path, findings: &mut Vec<Finding>) {
    let root = ["lib.rs", "main.rs"]
        .iter()
        .map(|f| crate_dir.join("src").join(f))
        .find(|p| p.is_file());
    let Some(root) = root else {
        findings.push(Finding {
            path: crate_dir.to_path_buf(),
            line: 0,
            rule: "unsafe",
            message: "crate has no src/lib.rs or src/main.rs".into(),
        });
        return;
    };
    let text = std::fs::read_to_string(&root).unwrap_or_default();
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            path: root,
            line: 1,
            rule: "unsafe",
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Per-line lint state: which lines are test-only code.
///
/// A `#[cfg(test)]` attribute marks the next item; when that item is a
/// block (`mod tests { … }`), everything to its matching closing brace
/// is test code.  Brace counting runs on comment-stripped text, so a
/// `{` in a doc example cannot desynchronize it.  (String literals
/// containing braces inside test modules could in principle — the repo
/// convention is to keep such strings out of module-level position.)
fn test_line_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut pending_cfg = false;
    let mut depth: i64 = 0;
    let mut in_test = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = strip_comment(raw);
        let trimmed = code.trim();
        if !in_test && (trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test")) {
            pending_cfg = true;
            mask[i] = true;
            continue;
        }
        if in_test {
            mask[i] = true;
        } else if pending_cfg {
            mask[i] = true;
            // Attributes and doc lines may sit between the cfg and the
            // item; the item line (first brace or `;`) resolves it.
            if trimmed.contains('{') {
                in_test = true;
                pending_cfg = false;
                depth = 0;
            } else if trimmed.ends_with(';') {
                // e.g. `#[cfg(test)] use …;` — single-item scope.
                pending_cfg = false;
            }
        }
        if in_test {
            depth += braces(&code);
            if depth <= 0 {
                in_test = false;
            }
        }
    }
    mask
}

/// Net brace depth change of one comment-stripped line, ignoring braces
/// inside string and char literals.
fn braces(code: &str) -> i64 {
    let mut depth = 0i64;
    let mut chars = code.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                let _ = chars.next();
            }
            '"' => in_str = !in_str,
            '\'' if !in_str => {
                // `'}'` or `'\u{7d}'`-style char literals; a lifetime
                // (`'a`) has no closing quote and is left alone.
                let mut look = chars.clone();
                let mut consumed = 0usize;
                if look.peek() == Some(&'\\') {
                    // Escapes are short; scan a few chars for the close.
                    for _ in 0..8 {
                        consumed += 1;
                        if look.next() == Some('\'') {
                            break;
                        }
                    }
                    if consumed < 8 {
                        for _ in 0..consumed {
                            let _ = chars.next();
                        }
                    }
                } else {
                    let mut l2 = chars.clone();
                    let _ = l2.next();
                    if l2.next() == Some('\'') {
                        let _ = chars.next();
                        let _ = chars.next();
                    }
                }
            }
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Drop a trailing `//` comment (keeping string literals intact) and
/// return the code part.  Lines that are entirely comments become
/// empty.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if c == '\\' && in_str {
            out.push(c);
            if let Some(n) = chars.next() {
                out.push(n);
            }
            continue;
        }
        if c == '"' {
            in_str = !in_str;
        }
        if c == '/' && !in_str && chars.peek() == Some(&'/') {
            break;
        }
        out.push(c);
    }
    out
}

fn lint_file(path: &Path, crate_name: &str, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let mask = test_line_mask(&lines);
    let panic_free = PANIC_FREE_CRATES.contains(&crate_name);
    let trait_only = TRAIT_ONLY_CRATES.contains(&crate_name);
    let mut enum_context: Vec<String> = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = strip_comment(raw);
        let trimmed = code.trim();

        // Rule `non-exhaustive` applies to test and non-test code alike
        // (a test-only public error enum is still public API of its
        // cfg).  The attribute stack above the enum is accumulated from
        // attribute lines.
        if trimmed.starts_with('#') {
            enum_context.push(trimmed.to_string());
        } else if !trimmed.is_empty() {
            if let Some(rest) = trimmed.strip_prefix("pub enum ") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.ends_with("Error")
                    && !enum_context.iter().any(|a| a.contains("non_exhaustive"))
                {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "non-exhaustive",
                        message: format!("public error enum `{name}` is not #[non_exhaustive]"),
                    });
                }
            }
            enum_context.clear();
        }

        if mask[i] || trimmed.is_empty() {
            continue;
        }

        if panic_free && !raw.contains("lint:allow(panic)") {
            for needle in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!(",
                "unimplemented!(",
            ] {
                if code.contains(needle) {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "no-panic",
                        message: format!(
                            "`{needle}` in library non-test code; return the crate's \
                             typed error (or justify with `// lint:allow(panic)`)"
                        ),
                    });
                }
            }
        }

        if !raw.contains("lint:allow(cast)") {
            if let Some(at) = code.find("DiskId(") {
                let args = &code[at + "DiskId(".len()..];
                let inner: String = take_balanced(args);
                if inner.contains(" as ") {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "cast",
                        message: "`as` narrowing inside DiskId construction; use \
                                  DiskId::from_index / DiskId::from_mod"
                            .into(),
                    });
                }
            }
        }

        if trait_only && !raw.contains("lint:allow(backend)") {
            for backend in ["MemDiskArray", "FileDiskArray"] {
                if code.contains(backend) {
                    findings.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "backend",
                        message: format!(
                            "algorithm crate names concrete backend `{backend}`; stay \
                             generic over DiskArray so no I/O bypasses IoStats"
                        ),
                    });
                }
            }
        }
    }
}

/// The argument text up to the parenthesis matching an already-consumed
/// `(` — i.e. the inside of a call whose opener the caller stripped.
fn take_balanced(args: &str) -> String {
    let mut depth = 1i32;
    let mut out = String::new();
    for c in args.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(crate_name: &str, text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_file(Path::new("x.rs"), crate_name, text, &mut out);
        out
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_and_test_code_is_not() {
        let src = "fn f() { g().unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { g().unwrap(); }\n\
                   }\n";
        let f = findings_for("pdisk", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic() {
        assert!(findings_for("pdisk", "fn f() { g().unwrap_or_else(|_| 3); }\n").is_empty());
        assert!(findings_for("pdisk", "fn f() { g().unwrap_or(3); }\n").is_empty());
    }

    #[test]
    fn allow_marker_silences_the_panic_rule() {
        let src = "fn f() { lock().expect(\"poisoned\"); } // lint:allow(panic) poisoning is fatal\n";
        assert!(findings_for("pdisk", src).is_empty());
    }

    #[test]
    fn binaries_may_panic() {
        assert!(findings_for("srm-cli", "fn main() { run().unwrap(); }\n").is_empty());
    }

    #[test]
    fn diskid_cast_is_flagged_outside_the_blessed_constructors() {
        let f = findings_for("srm-core", "let d = DiskId(i as u32);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cast");
        let ok = "let d = DiskId(i as u32); // lint:allow(cast) bounded by D\n";
        assert!(findings_for("srm-core", ok).is_empty());
        assert!(findings_for("srm-core", "let d = DiskId::from_index(i);\n").is_empty());
    }

    #[test]
    fn error_enum_without_non_exhaustive_is_flagged() {
        let bad = "#[derive(Debug)]\npub enum FooError {\n  A,\n}\n";
        let f = findings_for("analysis", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "non-exhaustive");
        let good = "#[derive(Debug)]\n#[non_exhaustive]\npub enum FooError {\n  A,\n}\n";
        assert!(findings_for("analysis", good).is_empty());
        // Non-error enums are unconstrained.
        assert!(findings_for("analysis", "pub enum Mode { A }\n").is_empty());
    }

    #[test]
    fn concrete_backends_are_rejected_in_algorithm_crates_only() {
        let src = "fn f(a: &mut MemDiskArray<U64Record>) {}\n";
        let f = findings_for("srm-core", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "backend");
        assert!(findings_for("pdisk", src).is_empty());
        // Doc comments mentioning a backend are fine.
        assert!(findings_for("dsm", "/// Use a MemDiskArray here.\nfn f() {}\n").is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_confuse_the_scanner() {
        let src = "// g().unwrap()\nfn f() { let s = \"// not a comment\"; }\n";
        assert!(findings_for("pdisk", src).is_empty());
        // A brace inside a string must not end the test region early.
        let src = "#[cfg(test)]\nmod tests {\n  const S: &str = \"}\";\n  fn t() { g().unwrap(); }\n}\n";
        assert!(findings_for("pdisk", src).is_empty());
    }
}
